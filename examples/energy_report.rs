//! Energy report: combine a *measured* AMC execution (key-frame rate from
//! the adaptive policy on synthetic video) with the *full-scale* hardware
//! cost model to estimate per-frame energy on the paper's VPU.
//!
//! ```sh
//! cargo run --release --example energy_report
//! ```

use eva2::amc::executor::{AmcConfig, AmcExecutor};
use eva2::cnn::zoo;
use eva2::hw::cost::HwModel;
use eva2::hw::nets;
use eva2::video::scene::{MotionRegime, Scene, SceneConfig};

fn main() {
    let model = HwModel::default();
    println!("per-frame cost on the Eyeriss + EIE + EVA2 VPU (65 nm model)\n");
    for (name, regime) in [
        ("calm video (smooth motion)", MotionRegime::Smooth),
        ("hectic video (chaotic motion)", MotionRegime::Chaotic),
    ] {
        // Measure the key-frame rate the adaptive policy actually chooses
        // on this kind of content, using the scaled-down FasterM analogue.
        let workload = zoo::tiny_fasterm(5);
        let mut amc = AmcExecutor::try_new(&workload.network, AmcConfig::default()).unwrap();
        for seed in 0..6 {
            let mut scene = Scene::new(
                SceneConfig::detection(48, 48).with_regime(regime),
                70 + seed,
            );
            for frame in scene.render_clip(20).frames {
                amc.process(&frame.image);
            }
            amc.reset();
        }
        let key_fraction = amc.stats().key_fraction() as f64;

        // Project onto the full-scale FasterM descriptor.
        let net = nets::fasterm();
        let orig = model.baseline_cost(&net);
        let avg = model.average_cost(&net, key_fraction);
        println!("{name}:");
        println!("  measured key-frame rate : {:.0}%", key_fraction * 100.0);
        println!(
            "  orig (no EVA2)          : {:7.1} ms  {:6.1} mJ per frame",
            orig.latency_ms, orig.energy_mj
        );
        println!(
            "  with EVA2 (avg)         : {:7.1} ms  {:6.1} mJ per frame",
            avg.latency_ms, avg.energy_mj
        );
        println!(
            "  savings                 : {:.0}% latency, {:.0}% energy\n",
            100.0 * (1.0 - avg.latency_ms / orig.latency_ms),
            100.0 * (1.0 - avg.energy_mj / orig.energy_mj)
        );
    }
    println!("the adaptive policy converts scene calmness directly into energy savings —");
    println!("\"spend resources in proportion to relevant events in the environment\" (§VI).");
}
