//! Serving-lifecycle hardening: admission control, backpressure, memory
//! budgets, eviction/rehydration, and graceful degradation under faults.
//!
//! ```sh
//! cargo run --release --example lifecycle
//! ```
//!
//! A serving process in front of real cameras must keep its promises when
//! the world misbehaves: too many streams, too many frames per tick, a
//! memory ceiling, connections that go idle, and video that arrives
//! dropped, corrupted, resized, or hard-cut. This example walks the
//! `Engine`'s lifecycle knobs through all of it — every submission comes
//! back as a typed `FrameOutcome` (served, shed, or rejected), never a
//! panic, and healthy streams never notice their neighbours' trouble.

use eva2::amc::error::AmcError;
use eva2::amc::executor::AmcConfig;
use eva2::amc::policy::PolicyConfig;
use eva2::amc::serve::{
    Engine, EngineLimits, EnginePhase, FailureAction, FailureInjector, FrameOutcome,
};
use eva2::cnn::zoo;
use eva2::video::faults::{FaultKind, FaultScript, FaultyScene};
use eva2::video::scene::{Scene, SceneConfig};
use std::sync::Arc;

fn main() {
    let workload = zoo::tiny_fasterm(42);
    let net = Arc::new(workload.network);
    let config = AmcConfig::builder()
        // A policy that trusts motion compensation completely (it only
        // re-keys on its gap safety net)...
        .policy(PolicyConfig::BlockError {
            threshold: f32::INFINITY,
            max_gap: 16,
        })
        // ...so the *engine's* graceful degradation is what protects the
        // stream: a predicted frame whose residual block-match error
        // exceeds this bound (this scene's normal motion sits at 3–5
        // error/px) is forced to a key frame instead of warping garbage
        // (§III-C).
        .max_residual_error(8.0)
        .build()
        .expect("valid config");
    let limits = EngineLimits::builder()
        .max_sessions(3)
        .max_frames_per_tick(2)
        .build()
        .expect("valid limits");
    let mut engine =
        Engine::with_limits(Arc::clone(&net), config, limits).expect("resolvable target");

    // 1. Admission control: the fourth camera is refused with a typed
    //    error — the engine never oversubscribes itself.
    let mut sessions: Vec<_> = (0..3)
        .map(|_| engine.open_session().expect("within capacity"))
        .collect();
    match engine.open_session() {
        Err(AmcError::EngineAtCapacity { limit }) => {
            println!("admission: 4th session refused (limit {limit})")
        }
        other => panic!("expected EngineAtCapacity, got {other:?}"),
    }

    // 2. Backpressure: three streams submit but the tick budget admits
    //    two; the third is shed with a typed error and *no state change*,
    //    so resubmitting it next tick is safe.
    let scenes: Vec<Scene> = (0..3)
        .map(|s| Scene::new(SceneConfig::detection(48, 48), 7 + s as u64))
        .collect();
    let frames: Vec<_> = scenes.iter().map(|sc| sc.render(0).image).collect();
    let results = engine.process_batch(sessions.iter_mut().zip(frames.iter()));
    let shed = results
        .iter()
        .filter(|r| matches!(r, FrameOutcome::Shed(_)))
        .count();
    println!(
        "backpressure: {} admitted, {shed} shed this tick",
        results.len() - shed
    );

    // 3. Memory accounting and soft eviction: each session's audited
    //    footprint backs the engine's budgets; evicting drops the key
    //    state and the next frame transparently re-keys (bit-identical to
    //    a fresh session from there on).
    let footprint = sessions[0].memory_footprint();
    println!(
        "memory: session 0 holds {footprint} bytes (engine total {})",
        engine.total_session_bytes()
    );
    sessions[0].evict_state();
    println!(
        "eviction: session 0 down to {} bytes; next frame re-keys",
        sessions[0].memory_footprint()
    );
    let r = engine
        .process(&mut sessions[0], &scenes[0].render(1).image)
        .expect("rehydrates");
    println!("rehydration: frame served as key = {}", r.is_key);

    // 4. Fault injection: a deterministic script drops, corrupts,
    //    resizes, and hard-cuts one stream. Every outcome is a correct
    //    frame or a typed error.
    let script = FaultScript::new(
        5,
        vec![
            (2, FaultKind::DropFrame),
            (3, FaultKind::Corrupt { fraction: 0.25 }),
            (5, FaultKind::Downscale),
            (7, FaultKind::SceneCut),
        ],
    );
    let mut faulty = FaultyScene::new(Scene::new(SceneConfig::detection(48, 48), 99), script);
    println!("\nfaulty stream (one frame per tick):");
    for t in 0..10 {
        let event = faulty.next_event();
        let label = match event.fault {
            Some(k) => format!("{k:?}"),
            None => "clean".to_string(),
        };
        let Some(frame) = event.frame else {
            println!("t={t:2}  {label:<28} -> dropped in transport, nothing to submit");
            continue;
        };
        match engine.process(&mut sessions[1], &frame.image) {
            FrameOutcome::Predicted { .. } => {
                println!("t={t:2}  {label:<28} -> served (predicted)")
            }
            FrameOutcome::Key { .. } => println!("t={t:2}  {label:<28} -> served (key)"),
            FrameOutcome::ForcedKey { residual, .. } => {
                println!("t={t:2}  {label:<28} -> served (forced key, residual {residual:.1}/px)")
            }
            FrameOutcome::Shed(e) | FrameOutcome::Rejected(e) => {
                println!("t={t:2}  {label:<28} -> typed error: {e}")
            }
        }
    }
    let stats = sessions[1].stats();
    println!(
        "\nstream 1: {} frames, {} keys ({} forced by the residual bound)",
        stats.frames, stats.key_frames, stats.forced_keys
    );

    // 5. Failure containment: a worker panic is caught at the frame
    //    boundary (this frame only), the owning session is quarantined,
    //    and eviction is the recovery path — neighbours never notice, and
    //    the engine's health snapshot keeps score.
    //
    // Injected chaos panics carry a `"chaos:"` payload by contract;
    // silence just those so the walkthrough output stays readable.
    // Containment catches them either way — the hook only controls
    // stderr noise.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let chaos = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("chaos:"));
        if !chaos {
            default_hook(info);
        }
    }));
    struct PanicOn {
        session: u64,
    }
    impl FailureInjector for PanicOn {
        fn action(&self, phase: EnginePhase, _tick: u64, session: u64) -> FailureAction {
            if phase == EnginePhase::Complete && session == self.session {
                FailureAction::Panic
            } else {
                FailureAction::None
            }
        }
    }
    println!("\nfailure containment (stream 2):");
    engine.set_failure_injector(Arc::new(PanicOn {
        session: sessions[2].id(),
    }));
    let clip: Vec<_> = (2..6).map(|t| scenes[2].render(t).image).collect();
    match engine.process(&mut sessions[2], &clip[0]) {
        FrameOutcome::Rejected(AmcError::WorkerPanicked { phase, .. }) => {
            println!("containment: panic in the {phase} phase caught; this frame only")
        }
        other => panic!("expected a contained panic, got {other:?}"),
    }
    // The panic may have left stream 2's state half-written, so the
    // session is quarantined: every submission refuses with a typed error
    // until the suspect state is dropped.
    match engine.process(&mut sessions[2], &clip[1]) {
        FrameOutcome::Rejected(AmcError::SessionPoisoned { session }) => {
            println!("quarantine: session {session} refuses until evicted")
        }
        other => panic!("expected SessionPoisoned, got {other:?}"),
    }
    // Meanwhile the neighbours serve on, bit-identical to a world where
    // stream 2 never existed.
    let healthy = engine.process(&mut sessions[0], &scenes[0].render(3).image);
    println!(
        "neighbour: stream 0 {} through stream 2's quarantine",
        if healthy.is_served() {
            "served"
        } else {
            "was disturbed"
        }
    );
    // Recovery is eviction: drop the suspect state and the next frame
    // rehydrates as a key frame, bit-identical to a fresh session.
    engine.clear_failure_injector();
    sessions[2].evict_state();
    let recovered = engine
        .process(&mut sessions[2], &clip[2])
        .expect("rehydrates");
    println!(
        "recovery: evicted, rehydrated as key = {}, quarantined = {}",
        recovered.is_key,
        sessions[2].is_quarantined()
    );
    let health = engine.health();
    println!(
        "health: {} ticks, {} frames served, {} panics caught, {} quarantines, p99 tick {}us",
        health.ticks,
        health.frames_served,
        health.panics_caught,
        health.quarantines,
        health.tick_p99_us
    );
}
