//! Adaptive key-frame allocation: watch the block-error policy spend key
//! frames only when the scene becomes unpredictable.
//!
//! ```sh
//! cargo run --release --example adaptive_keyframes
//! ```
//!
//! The clip stitches three regimes together — a frozen scene, smooth panning,
//! and a chaotic jittering object — and prints which frames the policy chose
//! to refresh on. Expect almost no key frames during the frozen segment,
//! sparse keys while panning, and frequent keys in the chaotic segment.

use eva2::amc::executor::{AmcConfig, AmcExecutor};
use eva2::amc::policy::PolicyConfig;
use eva2::cnn::zoo;
use eva2::tensor::GrayImage;
use eva2::video::scene::{MotionRegime, Scene, SceneConfig};

fn segment(regime: MotionRegime, seed: u64, frames: usize) -> Vec<GrayImage> {
    let mut cfg = SceneConfig::detection(48, 48).with_regime(regime);
    cfg.noise_std = 1.0;
    // Isolate the object-motion regimes: no camera pan or lighting drift
    // (both are legitimate key-frame triggers but would blur the demo).
    cfg.camera_pan = false;
    cfg.lighting_drift = 0.0;
    let mut scene = Scene::new(cfg, seed);
    scene
        .render_clip(frames)
        .frames
        .into_iter()
        .map(|f| f.image)
        .collect()
}

fn main() {
    let workload = zoo::tiny_fasterm(3);
    let config = AmcConfig {
        policy: PolicyConfig::BlockError {
            threshold: 2.0,
            max_gap: 64,
        },
        ..Default::default()
    };
    let mut amc = AmcExecutor::try_new(&workload.network, config).unwrap();

    let segments = [
        ("frozen", MotionRegime::Frozen, 42u64),
        ("smooth pan", MotionRegime::Smooth, 43),
        ("chaotic", MotionRegime::Chaotic, 44),
    ];
    println!("block-error adaptive policy (threshold 2.0 intensity/px):\n");
    for (name, regime, seed) in segments {
        let frames = segment(regime, seed, 12);
        let mut pattern = String::new();
        let mut keys = 0;
        for image in &frames {
            let r = amc.process(image);
            pattern.push(if r.is_key { 'K' } else { '.' });
            keys += r.is_key as usize;
        }
        println!("{name:>11}: {pattern}   ({keys}/12 key frames)");
    }
    let stats = amc.stats();
    println!(
        "\noverall: {:.0}% key frames, {} RFBME adds, {} warp interpolations",
        100.0 * stats.key_fraction(),
        stats.rfbme_ops,
        stats.warp_interpolations
    );
    println!("(scene cuts between segments also force key frames — exactly the behaviour");
    println!(" the paper's pixel-compensation-error feature is designed to catch)");
}
