//! Quickstart: run activation motion compensation over a synthetic clip.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small detection CNN, generates a synthetic video scene, and
//! processes it through the AMC executor, printing per-frame decisions and
//! the work saved relative to running the full CNN every frame.
//!
//! This is the single-stream path; see `examples/multi_stream.rs` for
//! serving many concurrent streams through one `Engine` with cross-stream
//! batched key frames.

use eva2::amc::executor::{AmcConfig, AmcExecutor};
use eva2::cnn::zoo;
use eva2::video::scene::{Scene, SceneConfig};

fn main() {
    // 1. A CNN with a spatial prefix and a fully-connected suffix.
    let workload = zoo::tiny_fasterm(42);
    println!("network: {:?}", workload.network);

    // 2. A synthetic live-video scene (moving sprite, camera pan, noise).
    let mut scene = Scene::new(SceneConfig::detection(48, 48), 7);
    let clip = scene.render_clip(20);

    // 3. AMC with the default configuration: late target layer, RFBME
    //    motion estimation, bilinear warping, adaptive block-error policy.
    //    The builder validates; construction errors are typed (`AmcError`).
    let config = AmcConfig::builder().build().expect("defaults are valid");
    let mut amc = AmcExecutor::try_new(&workload.network, config).expect("resolvable target");
    println!(
        "target layer = {} (receptive field {:?})",
        amc.target(),
        amc.rf_geometry()
    );
    println!();

    for (t, frame) in clip.frames.iter().enumerate() {
        let result = amc.process(&frame.image);
        let kind = if result.is_key { "KEY " } else { "pred" };
        let err = result
            .metrics
            .map(|m| format!("{:6.2}", m.block_error_per_pixel))
            .unwrap_or_else(|| "     -".into());
        println!(
            "frame {t:2}  {kind}  MACs executed {:>9}  block err/px {err}",
            result.macs_executed
        );
    }

    let stats = amc.stats();
    let full = workload.network.total_macs() * stats.frames as u64;
    println!();
    println!(
        "key frames: {}/{} ({:.0}%)",
        stats.key_frames,
        stats.frames,
        100.0 * stats.key_fraction()
    );
    println!(
        "MACs: {} vs {} for all-key execution ({:.1}% saved)",
        stats.macs,
        full,
        100.0 * (1.0 - stats.macs as f64 / full as f64)
    );
    if let Some(rle) = amc.key_activation() {
        println!(
            "sparse activation store: {:.0}% compression",
            100.0 * rle.compression()
        );
    }
}
