//! Object tracking on live video with AMC: train a small detector, then
//! follow a moving sprite through a clip, comparing the detections produced
//! by full per-frame CNN execution against AMC's cheap predicted frames.
//!
//! ```sh
//! cargo run --release --example object_tracking
//! ```

use eva2::amc::executor::{AmcConfig, AmcExecutor};
use eva2::cnn::metrics::Detection;
use eva2::cnn::train::{train_detector, DetSample, TrainConfig};
use eva2::cnn::zoo;
use eva2::video::scene::{MotionRegime, Scene, SceneConfig};

fn main() {
    // Train a small detector on a few hundred synthetic frames.
    println!("training detector (~30 s in release mode)...");
    let mut workload = zoo::tiny_fasterm(1);
    let samples: Vec<DetSample> = (0..300)
        .map(|seed| {
            let scene = Scene::new(SceneConfig::detection(48, 48), 1000 + seed);
            let frame = scene.render((seed % 3) as usize);
            let h = frame.image.height() as f32;
            let (cy, cx) = frame.truth.bbox.center();
            DetSample {
                input: frame.image.to_tensor(),
                label: frame.truth.class,
                bbox: [
                    cy / h,
                    cx / h,
                    frame.truth.bbox.h / h,
                    frame.truth.bbox.w / h,
                ],
            }
        })
        .collect();
    let cfg = TrainConfig {
        epochs: 10,
        lr: 0.002,
        ..TrainConfig::default()
    };
    train_detector(&mut workload.network, &samples, &cfg);

    // A fresh scene the detector has never seen, with medium motion.
    let mut scene = Scene::new(
        SceneConfig::detection(48, 48).with_regime(MotionRegime::Medium),
        999_983,
    );
    let clip = scene.render_clip(16);

    let mut amc = AmcExecutor::try_new(&workload.network, AmcConfig::default()).unwrap();
    println!("\n tracking: truth centre vs AMC detection centre (48x48 frame)\n");
    println!(" t   kind  truth (y,x)    amc (y,x)      err(px)  full-CNN err(px)");
    for (t, frame) in clip.frames.iter().enumerate() {
        let r = amc.process(&frame.image);
        let amc_det = Detection::from_output(&r.output);
        let full_det = Detection::from_output(&workload.network.forward(&frame.image.to_tensor()));
        let (ty, tx) = frame.truth.bbox.center();
        let to_px = |v: f32| v * 48.0;
        let err = |d: &Detection| {
            let dy = to_px(d.bbox.cy) - ty;
            let dx = to_px(d.bbox.cx) - tx;
            (dy * dy + dx * dx).sqrt()
        };
        println!(
            "{t:2}   {}  ({ty:4.1},{tx:4.1})   ({:4.1},{:4.1})    {:5.1}    {:5.1}",
            if r.is_key { "KEY " } else { "pred" },
            to_px(amc_det.bbox.cy),
            to_px(amc_det.bbox.cx),
            err(&amc_det),
            err(&full_det),
        );
    }
    let stats = amc.stats();
    println!(
        "\nAMC ran the full CNN on {}/{} frames; the rest were warped predictions.",
        stats.key_frames, stats.frames
    );
}
