//! Static analysis: verify a (network, configuration) pair before serving.
//!
//! ```sh
//! cargo run --release --example analyze
//! ```
//!
//! Runs the `eva2-analysis` pass pipeline — shape inference,
//! warp-legality, Q8.8 range analysis, sparsity flow — over a zoo network
//! and prints the report, then demonstrates the construction-time gate:
//! a Q8.8-overflowing network is refused by `Engine::new` with a stable
//! diagnostic code instead of saturating silently on the first frame.

use eva2::amc::error::AmcError;
use eva2::amc::executor::AmcConfig;
use eva2::amc::serve::Engine;
use eva2::amc::target::TargetSelection;
use eva2::cnn::layer::{Conv2d, FullyConnected, MaxPool2d, Relu};
use eva2::cnn::network::Network;
use eva2::cnn::zoo;
use eva2::tensor::Shape3;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    // 1. Analyze a healthy network: the report pins every layer's shape,
    //    the motion granularity at the target, and each layer's
    //    statically-derived activation interval.
    let workload = zoo::tiny_fasterm(42);
    let config = AmcConfig::builder().build().expect("defaults are valid");
    let report = config
        .analyze(&workload.network)
        .expect("target resolves for the zoo network");
    println!("{}", report.render());
    assert!(!report.has_errors());

    // 2. A deliberately broken network: conv weights of 100.0 push the
    //    target activation interval to roughly ±900 — far outside Q8.8's
    //    ±128 — so the fixed-point datapath is refused at construction.
    let mut r = ChaCha8Rng::seed_from_u64(7);
    let mut conv = Conv2d::new("conv1", 1, 2, 3, 1, 0, &mut r);
    for oc in 0..2 {
        for ky in 0..3 {
            for kx in 0..3 {
                conv.set_weight(oc, 0, ky, kx, 100.0);
            }
        }
    }
    let mut hot = Network::new("overflowing", Shape3::new(1, 16, 16));
    hot.push(Box::new(conv))
        .push(Box::new(Relu::new("relu1")))
        .push(Box::new(MaxPool2d::new("pool1", 2, 2)))
        .push(Box::new(FullyConnected::new("fc1", 2 * 7 * 7, 4, &mut r)));

    let fixed = AmcConfig::builder()
        .target(TargetSelection::Early)
        .fixed_point(true)
        .build()
        .expect("valid config");
    match Engine::new(Arc::new(hot), fixed) {
        Err(AmcError::AnalysisRejected { code, message, .. }) => {
            println!("refused as expected [{code}]: {message}");
        }
        Err(other) => panic!("unexpected error: {other}"),
        Ok(_) => panic!("the verifier should have refused this network"),
    }
    println!();
    println!(
        "escape hatch: AmcConfig::builder().allow_unverified() admits the \
         pair anyway (for experiments that accept saturation)."
    );
}
