//! Multi-stream serving: one `Engine`, many camera sessions, cross-stream
//! batched key frames.
//!
//! ```sh
//! cargo run --release --example multi_stream
//! ```
//!
//! Simulates a serving process fed by several independent synthetic video
//! streams. Each stream is a `StreamSession` with its own key-frame state,
//! policy, and statistics; every simulation tick submits one frame per
//! stream through `Engine::process_batch`, which classifies each frame
//! with its own session's RFBME + policy and then executes all key-frame
//! prefixes in one batched im2col + packed-GEMM pass. Outputs are
//! bit-identical to running each stream through its own serial
//! `AmcExecutor` — batching is invisible except in wall-clock time.

use eva2::amc::executor::AmcConfig;
use eva2::amc::serve::{Engine, EngineLimits, FrameOutcome};
use eva2::cnn::zoo;
use eva2::video::scene::{Scene, SceneConfig};
use std::sync::Arc;

const STREAMS: usize = 4;
const TICKS: usize = 24;

fn main() {
    // 1. One network serves every stream; the engine owns it (Arc) plus
    //    the shared im2col/packing scratch pools.
    let workload = zoo::tiny_fasterm(42);
    let net = Arc::new(workload.network);
    let config = AmcConfig::builder().build().expect("defaults are valid");
    // Fan each tick out over a small worker pool (per-stream RFBME and
    // completion run stream-per-worker, coinciding key prefixes
    // frame-per-thread) — outputs are bit-identical to worker_threads: 1.
    let limits = EngineLimits::builder()
        .worker_threads(2)
        .build()
        .expect("limits are valid");
    let mut engine =
        Engine::with_limits(Arc::clone(&net), config, limits).expect("resolvable target layer");
    println!(
        "engine: target layer {} (receptive field {:?}), {} worker threads",
        engine.target(),
        engine.rf_geometry(),
        engine.limits().worker_threads
    );

    // 2. One synthetic scene per stream, each with different content and
    //    motion. Streams *join* at different ticks (cameras come online
    //    independently), so their key-frame schedules decorrelate — some
    //    batches mix key and predicted frames, and several still batch
    //    multiple key prefixes.
    let mut scenes: Vec<Scene> = (0..STREAMS)
        .map(|s| Scene::new(SceneConfig::detection(48, 48), 7 + s as u64 * 13))
        .collect();
    let mut sessions: Vec<_> = (0..STREAMS)
        .map(|_| engine.open_session().expect("engine has capacity"))
        .collect();
    // Cameras come online in pairs: coinciding joins show multi-key
    // batches, staggered pairs show mixed batches.
    let join_tick = |s: usize| (s / 2) * 5;

    // 3. Serve: every tick, each live stream submits its next frame; the
    //    batch runs all coinciding key frames through one shared prefix
    //    pass.
    println!("\ntick  per-stream frame kinds (K = key, . = predicted, ' ' = not joined)");
    for t in 0..TICKS {
        let mut frames = Vec::new();
        let mut live = Vec::new();
        for (s, scene) in scenes.iter_mut().enumerate() {
            if t >= join_tick(s) {
                frames.push(scene.render_clip(1).frames.remove(0).image);
                live.push(s);
            }
        }
        let jobs = sessions
            .iter_mut()
            .enumerate()
            .filter(|(s, _)| live.contains(s))
            .map(|(_, session)| session)
            .zip(frames.iter());
        let results = engine.process_batch(jobs);
        let mut kinds = [' '; STREAMS];
        let mut batched_keys = 0;
        for (&s, outcome) in live.iter().zip(&results) {
            kinds[s] = match outcome {
                FrameOutcome::Predicted { .. } => '.',
                FrameOutcome::Key { .. } => 'K',
                FrameOutcome::ForcedKey { .. } => 'F',
                refused => panic!("unlimited engine admits every frame: {refused:?}"),
            };
            batched_keys += usize::from(outcome.is_key());
        }
        println!(
            "{t:4}  {}   ({batched_keys} key prefix{} batched)",
            kinds.iter().collect::<String>(),
            if batched_keys == 1 { "" } else { "es" }
        );
    }

    // 4. Per-stream accounting stays per-stream.
    println!("\nstream  frames  keys  key%   MACs (vs all-key)");
    for session in &sessions {
        let s = session.stats();
        let full = net.total_macs() * s.frames as u64;
        println!(
            "{:6}  {:6}  {:4}  {:3.0}%   {:.1}% saved",
            session.id(),
            s.frames,
            s.key_frames,
            100.0 * s.key_fraction(),
            100.0 * (1.0 - s.macs as f64 / full as f64)
        );
    }
}
