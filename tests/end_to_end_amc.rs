//! Whole-pipeline integration tests: synthetic scenes → AMC executor →
//! CNN outputs, exercising every crate together.

use eva2::amc::executor::{AmcConfig, AmcExecutor, WarpMode};
use eva2::amc::policy::PolicyConfig;
use eva2::cnn::delta::DeltaExecutor;
use eva2::cnn::zoo;
use eva2::video::scene::{MotionRegime, Scene, SceneConfig};

fn scene_frames(regime: MotionRegime, seed: u64, n: usize) -> Vec<eva2::tensor::GrayImage> {
    let mut cfg = SceneConfig::detection(48, 48).with_regime(regime);
    cfg.noise_std = 1.0;
    // Keep the lighting constant: these tests isolate the *motion* regimes.
    // (Lighting drift is a condition-1 violation that legitimately forces
    // key frames — it accumulates against the stored key frame.)
    cfg.lighting_drift = 0.0;
    // The detection template pans the camera regardless of regime; disable
    // it so the object-motion regimes are the only difference between runs.
    cfg.camera_pan = false;
    let mut scene = Scene::new(cfg, seed);
    scene
        .render_clip(n)
        .frames
        .into_iter()
        .map(|f| f.image)
        .collect()
}

#[test]
fn chaotic_scenes_use_more_key_frames_than_frozen() {
    let workload = zoo::tiny_fasterm(0);
    let run = |regime: MotionRegime| {
        let mut amc = AmcExecutor::try_new(&workload.network, AmcConfig::default()).unwrap();
        for seed in 0..4 {
            for img in scene_frames(regime, 100 + seed, 12) {
                amc.process(&img);
            }
            amc.reset();
        }
        amc.stats().key_fraction()
    };
    let frozen = run(MotionRegime::Frozen);
    let chaotic = run(MotionRegime::Chaotic);
    assert!(
        chaotic > frozen + 0.1,
        "adaptive policy: chaotic {chaotic} should spend more keys than frozen {frozen}"
    );
}

#[test]
fn amc_output_tracks_full_cnn_on_smooth_video() {
    let workload = zoo::tiny_fasterm(2);
    let frames = scene_frames(MotionRegime::Smooth, 55, 10);
    let mut amc = AmcExecutor::try_new(&workload.network, AmcConfig::default()).unwrap();
    let mut worst = 0.0f32;
    for img in &frames {
        let r = amc.process(img);
        let truth = workload.network.forward(&img.to_tensor());
        worst = worst.max(r.output.rms_distance(&truth));
    }
    // Predicted frames are approximate but must stay in the same regime as
    // the true outputs (detection head outputs are O(1)).
    assert!(worst < 0.6, "worst per-frame output divergence {worst}");
}

#[test]
fn amc_saves_most_macs_on_calm_video() {
    let workload = zoo::tiny_faster16(0);
    let frames = scene_frames(MotionRegime::Frozen, 9, 16);
    let mut amc = AmcExecutor::try_new(&workload.network, AmcConfig::default()).unwrap();
    for img in &frames {
        amc.process(img);
    }
    let stats = amc.stats();
    let full = workload.network.total_macs() * stats.frames as u64;
    let saved = 1.0 - stats.macs as f64 / full as f64;
    assert!(
        saved > 0.7,
        "saved only {:.2} of MACs on a frozen scene",
        saved
    );
}

#[test]
fn fixed_point_pipeline_stays_close_to_float() {
    let workload = zoo::tiny_fasterm(4);
    let frames = scene_frames(MotionRegime::Smooth, 21, 8);
    let float_cfg = AmcConfig {
        policy: PolicyConfig::StaticRate { period: 4 },
        ..Default::default()
    };
    let mut fixed_cfg = float_cfg;
    fixed_cfg.fixed_point = true;
    let mut a = AmcExecutor::try_new(&workload.network, float_cfg).unwrap();
    let mut b = AmcExecutor::try_new(&workload.network, fixed_cfg).unwrap();
    for img in &frames {
        let ra = a.process(img);
        let rb = b.process(img);
        assert_eq!(ra.is_key, rb.is_key);
        let d = ra.output.rms_distance(&rb.output);
        assert!(d < 0.05, "fixed/float divergence {d}");
    }
}

#[test]
fn memoization_and_warping_agree_on_static_scenes() {
    let workload = zoo::tiny_fasterm(6);
    let frames = scene_frames(MotionRegime::Frozen, 31, 6);
    let configs = [
        WarpMode::Memoize,
        WarpMode::MotionCompensate { bilinear: true },
    ];
    let mut outputs = Vec::new();
    for warp in configs {
        let cfg = AmcConfig {
            warp,
            policy: PolicyConfig::StaticRate { period: 100 },
            ..Default::default()
        };
        let mut amc = AmcExecutor::try_new(&workload.network, cfg).unwrap();
        let mut last = None;
        for img in &frames {
            last = Some(amc.process(img).output);
        }
        outputs.push(last.expect("processed"));
    }
    let d = outputs[0].rms_distance(&outputs[1]);
    assert!(d < 0.05, "memoize vs warp on a static scene: {d}");
}

#[test]
fn delta_network_baseline_stores_more_and_loads_more() {
    // §II's argument quantified: per predicted frame, the delta approach
    // touches every layer's weights and keeps every activation resident,
    // while AMC stores one compressed activation and skips the prefix.
    let workload = zoo::tiny_fasterm(1);
    let frames = scene_frames(MotionRegime::Smooth, 77, 3);
    let mut delta = DeltaExecutor::new(1e-4);
    let mut delta_weights = 0usize;
    let mut delta_storage = 0usize;
    for img in &frames {
        let (_, stats) = delta.process(&workload.network, &img.to_tensor());
        delta_weights = stats.weights_loaded;
        delta_storage = stats.stored_activation_values;
    }
    let mut amc = AmcExecutor::try_new(&workload.network, AmcConfig::default()).unwrap();
    for img in &frames {
        amc.process(img);
    }
    let target_shape = workload.network.shape_after(amc.target());
    assert!(delta_storage > target_shape.len() * 2);
    assert_eq!(delta_weights, workload.network.param_count());
}

#[test]
fn executor_works_across_all_three_workloads() {
    for (zoo_net, size) in [
        (zoo::tiny_alexnet(0), 32usize),
        (zoo::tiny_fasterm(0), 48),
        (zoo::tiny_faster16(0), 48),
    ] {
        let mut cfg = AmcConfig::default();
        if zoo_net.task == zoo::Task::Classification {
            cfg.warp = WarpMode::Memoize;
        }
        let mut amc = AmcExecutor::try_new(&zoo_net.network, cfg).unwrap();
        let mut scene = Scene::new(
            if size == 32 {
                SceneConfig::classification(32, 32)
            } else {
                SceneConfig::detection(48, 48)
            },
            13,
        );
        for frame in scene.render_clip(6).frames {
            let r = amc.process(&frame.image);
            assert!(r.output.iter().all(|v| v.is_finite()));
        }
        assert_eq!(amc.stats().frames, 6);
    }
}
