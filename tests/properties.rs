//! Cross-crate property-based tests on AMC invariants.

use eva2::amc::sparse::RleActivation;
use eva2::amc::warp::{warp_activation, warp_activation_fixed};
use eva2::motion::field::{MotionVector, VectorField};
use eva2::motion::rfbme::{RfGeometry, Rfbme, SearchParams};
use eva2::tensor::interp::Interpolation;
use eva2::tensor::{fixed, GrayImage, Shape3, Tensor3};
use proptest::prelude::*;

fn arb_activation() -> impl Strategy<Value = Tensor3> {
    (1usize..4, 3usize..8, 3usize..8).prop_flat_map(|(c, h, w)| {
        let shape = Shape3::new(c, h, w);
        proptest::collection::vec(
            prop_oneof![3 => Just(0.0f32), 2 => -20.0f32..20.0],
            shape.len(),
        )
        .prop_map(move |v| Tensor3::from_vec(shape, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RLE encode/decode is lossless on the Q8.8 grid for any sparsity
    /// pattern.
    #[test]
    fn rle_roundtrip(t in arb_activation()) {
        let quantized = t.map(eva2::tensor::fixed::quantize);
        let rle = RleActivation::encode(&quantized, 0.0);
        prop_assert_eq!(rle.decode(), quantized);
    }

    /// RLE never grows storage beyond one entry per element.
    #[test]
    fn rle_is_bounded(t in arb_activation()) {
        let rle = RleActivation::encode(&t, 0.0);
        prop_assert!(rle.encoded_bytes() <= 2 * rle.dense_bytes() + 8);
    }

    /// A zero vector field leaves the activation unchanged (bilinear and
    /// nearest).
    #[test]
    fn zero_field_warp_is_identity(t in arb_activation()) {
        let s = t.shape();
        let field = VectorField::zeros(s.height, s.width, 4);
        let (bi, _) = warp_activation(&t, &field, 4, Interpolation::Bilinear);
        prop_assert_eq!(&bi, &t);
        let (nn, _) = warp_activation(&t, &field, 4, Interpolation::NearestNeighbor);
        prop_assert_eq!(&nn, &t);
    }

    /// The fixed-point warp datapath tracks the float reference within a
    /// small multiple of the Q8.8 quantization step.
    #[test]
    fn fixed_warp_tracks_float(
        t in arb_activation(),
        dy in -6.0f32..6.0,
        dx in -6.0f32..6.0,
    ) {
        let s = t.shape();
        let field = VectorField::uniform(s.height, s.width, 4, MotionVector::new(dy, dx));
        let (float_out, _) = warp_activation(&t, &field, 4, Interpolation::Bilinear);
        let (fixed_out, _) = warp_activation_fixed(&t, &field, 4);
        // Weight quantization error scales with the *inputs'* magnitude
        // (each of the four Q8.8 weights may be off by half an LSB), not
        // with the interpolated output.
        let max_abs = t.max().abs().max(t.min().abs());
        let tol = 8.0 / fixed::SCALE as f32 * (1.0 + max_abs);
        for (a, b) in float_out.iter().zip(fixed_out.iter()) {
            prop_assert!((a - b).abs() <= tol, "{} vs {} (tol {})", a, b, tol);
        }
    }

    /// Warping never invents values outside the key activation's range
    /// (bilinear interpolation is a convex combination; out-of-bounds reads
    /// contribute zeros).
    #[test]
    fn warp_is_bounded(
        t in arb_activation(),
        dy in -8.0f32..8.0,
        dx in -8.0f32..8.0,
    ) {
        let s = t.shape();
        let field = VectorField::uniform(s.height, s.width, 4, MotionVector::new(dy, dx));
        let (out, _) = warp_activation(&t, &field, 4, Interpolation::Bilinear);
        let lo = t.min().min(0.0) - 1e-4;
        let hi = t.max().max(0.0) + 1e-4;
        for &v in out.as_slice() {
            prop_assert!(v >= lo && v <= hi, "warped {} outside [{}, {}]", v, lo, hi);
        }
    }

    /// RFBME exactly recovers any global integer translation inside its
    /// search radius on a textured frame (away from the border fill).
    #[test]
    fn rfbme_recovers_global_translation(dy in -3isize..=3, dx in -3isize..=3) {
        let key = GrayImage::from_fn(40, 40, |y, x| {
            (128.0
                + 50.0 * ((y as f32 * 0.37).sin() + (x as f32 * 0.29).cos())
                + 20.0 * (((y * 3 + x * 7) % 13) as f32 / 13.0)) as u8
        });
        let new = key.translate(dy, dx, 0);
        let rfbme = Rfbme::new(
            RfGeometry { size: 8, stride: 4, padding: 0 },
            SearchParams { radius: 4, step: 1 },
        );
        let r = rfbme.estimate(&key, &new);
        let g = r.field.grid_h();
        let center = r.field.get(g / 2, g / 2);
        prop_assert_eq!(center, MotionVector::new(-dy as f32, -dx as f32));
    }

    /// The receptive-field arithmetic agrees with the hardware descriptor's
    /// independent implementation for random conv/pool stacks.
    #[test]
    fn receptive_field_impls_agree(
        k1 in 1usize..6, s1 in 1usize..3, p1 in 0usize..3,
        k2 in 1usize..4, s2 in 1usize..3,
    ) {
        use eva2::cnn::layer::{Conv2d, Layer, MaxPool2d};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new("c", 1, 1, k1, s1, p1, &mut rng)),
            Box::new(MaxPool2d::new("p", k2, s2)),
        ];
        let rf = eva2::cnn::receptive::ReceptiveField::of_prefix(&layers);
        let desc = eva2::hw::NetDescriptor::new("x", (1, 64, 64))
            .conv("c", 1, 1, k1, s1, p1)
            .pool("p", k2, s2);
        let (size, stride, padding) = desc.receptive_field(1);
        prop_assert_eq!(rf.size, size);
        prop_assert_eq!(rf.stride, stride);
        prop_assert_eq!(rf.padding, padding);
    }

    /// The hardware cost model is monotone in the key-frame fraction.
    #[test]
    fn average_cost_monotone_in_key_fraction(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let model = eva2::hw::HwModel::default();
        let net = eva2::hw::nets::fasterm();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let c_lo = model.average_cost(&net, lo);
        let c_hi = model.average_cost(&net, hi);
        prop_assert!(c_lo.energy_mj <= c_hi.energy_mj + 1e-9);
        prop_assert!(c_lo.latency_ms <= c_hi.latency_ms + 1e-9);
    }

    /// Golden equivalence of the sparse suffix feed through the Q8.8 warp
    /// datapath, end to end: quantize → RLE → warp (bit-accurate fixed
    /// point) → suffix. Feeding the suffix from the warped activation's
    /// non-zero entries must match the dense reference within 1e-4.
    #[test]
    fn fixed_point_warp_sparse_suffix_matches_dense(
        t in arb_activation(),
        dy in -4.0f32..4.0,
        dx in -4.0f32..4.0,
        seed in 0u64..100,
    ) {
        use eva2::cnn::layer::{FullyConnected, Relu};
        use eva2::cnn::network::Network;
        use eva2::tensor::gemm::GemmScratch;
        use eva2::tensor::SparseActivation;
        use rand::SeedableRng;

        let s = t.shape();
        // The stored key activation, exactly as the hardware holds it.
        let rle = RleActivation::encode(&t, 0.0);
        let decoded = rle.decode();
        prop_assert_eq!(rle.to_sparse().to_dense(), decoded.clone());

        // Warp through the bit-accurate Q8.8 datapath.
        let field = VectorField::uniform(s.height, s.width, 4, MotionVector::new(dy, dx));
        let (warped, _) = warp_activation_fixed(&decoded, &field, 4);

        // Suffix [fc] beyond target layer 0 (the relu standing in for the
        // prefix's last layer), fed dense vs sparse.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut net = Network::new("suffix", s);
        net.push(Box::new(Relu::new("target")));
        net.push(Box::new(FullyConnected::new("fc", s.len(), 6, &mut rng)));
        let dense_out = net.forward_suffix(&warped, 0);
        let mut scratch = GemmScratch::new();
        let sparse_out = net.forward_suffix_sparse(
            &SparseActivation::from_dense(&warped, 0.0),
            0,
            &mut scratch,
        );
        for (a, b) in sparse_out.iter().zip(dense_out.iter()) {
            prop_assert!((a - b).abs() <= 1e-4, "{} vs {}", a, b);
        }
    }
}
