//! End-to-end tests of the paper's §II-B claims: convolutions commute with
//! translation, and the three "sufficient conditions for precision" behave
//! as Fig 4 illustrates — through the *real* layer implementations and the
//! real warp engine, not toy matrices.

use eva2::amc::warp::warp_activation;
use eva2::cnn::layer::{Conv2d, Layer, MaxPool2d};
use eva2::motion::field::{MotionVector, VectorField};
use eva2::tensor::interp::Interpolation;
use eva2::tensor::{Shape3, Tensor3};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(77)
}

/// A blob image whose interior content can translate without touching the
/// frame border.
fn blob(h: usize, w: usize) -> Tensor3 {
    Tensor3::from_fn(Shape3::new(1, h, w), |_, y, x| {
        let dy = y as f32 - h as f32 * 0.4;
        let dx = x as f32 - w as f32 * 0.4;
        let r2 = dy * dy + dx * dx;
        if r2 < (h as f32 * 0.2).powi(2) {
            1.0 + (y * 7 + x * 3) as f32 * 0.01
        } else {
            0.0
        }
    })
}

/// Fig 3: f(δ(x)) = δ'(f(x)) for a stride-1 convolution and integer
/// translation.
#[test]
fn convolution_commutes_with_integer_translation() {
    let conv = Conv2d::new("c", 1, 4, 3, 1, 1, &mut rng());
    let x = blob(16, 16);
    let moved = x.translate(2, 3);
    let f_then_translate = conv.forward(&x).translate(2, 3);
    let translate_then_f = conv.forward(&moved);
    // Interior equality (border rows touched by padding may differ).
    let s = f_then_translate.shape();
    for c in 0..s.channels {
        for y in 3..s.height - 1 {
            for x in 4..s.width - 1 {
                let a = f_then_translate.get(c, y, x);
                let b = translate_then_f.get(c, y, x);
                assert!((a - b).abs() < 1e-4, "({c},{y},{x}): {a} vs {b}");
            }
        }
    }
}

/// Fig 4b: a stride-s pooling layer translates by d/s when the input
/// translates by a multiple of s.
#[test]
fn pooling_commutes_with_stride_aligned_translation() {
    let pool = MaxPool2d::new("p", 2, 2);
    let x = blob(16, 16);
    let moved = x.translate(0, 4); // aligned to the pooling stride
    let a = pool.forward(&x).translate(0, 2);
    let b = pool.forward(&moved);
    for y in 1..7 {
        for xx in 3..7 {
            assert_eq!(a.get(0, y, xx), b.get(0, y, xx), "({y},{xx})");
        }
    }
}

/// Fig 4e: the same pooling layer does NOT commute with a sub-stride
/// translation — condition 3 is violated and warping becomes approximate.
#[test]
fn pooling_breaks_on_unaligned_translation() {
    let pool = MaxPool2d::new("p", 2, 2);
    let x = blob(16, 16);
    let moved = x.translate(0, 1); // half the pooling stride
    let unmoved_pool = pool.forward(&x);
    let moved_pool = pool.forward(&moved);
    // There is no integer activation translation that reproduces moved_pool.
    let mut any_exact = false;
    for shift in -1..=1isize {
        if unmoved_pool.translate(0, shift) == moved_pool {
            any_exact = true;
        }
    }
    assert!(
        !any_exact,
        "sub-stride translation should not be exactly representable"
    );
}

/// The full AMC claim: for stride-aligned global motion through a
/// conv+pool prefix, warping the stored activation matches recomputation.
#[test]
fn amc_warp_matches_recomputation_for_aligned_motion() {
    let mut r = rng();
    let conv = Conv2d::new("c", 1, 3, 3, 1, 1, &mut r);
    let pool = MaxPool2d::new("p", 2, 2);
    let prefix = |t: &Tensor3| pool.forward(&conv.forward(t));
    let x = blob(20, 20);
    let moved = x.translate(0, 4); // two pooling strides
    let key_act = prefix(&x);
    let truth = prefix(&moved);
    // Gather vector: content moved +4 px right, so pred[p] = key[p - 4px].
    let s = key_act.shape();
    let field = VectorField::uniform(s.height, s.width, 2, MotionVector::new(0.0, -4.0));
    let (warped, _) = warp_activation(&key_act, &field, 2, Interpolation::Bilinear);
    for c in 0..s.channels {
        for y in 1..s.height - 1 {
            for xx in 3..s.width - 1 {
                let a = warped.get(c, y, xx);
                let b = truth.get(c, y, xx);
                assert!((a - b).abs() < 1e-4, "({c},{y},{xx}): {a} vs {b}");
            }
        }
    }
}

/// Condition 1 (Fig 4c): "new pixels" from de-occlusion make warping
/// approximate — the warped activation differs from recomputation near the
/// new content, and the RFBME block error flags it.
#[test]
fn new_pixels_break_exactness_and_raise_block_error() {
    use eva2::motion::rfbme::{RfGeometry, Rfbme, SearchParams};
    use eva2::tensor::GrayImage;
    let key = GrayImage::from_fn(32, 32, |y, x| {
        (100.0 + 60.0 * ((y as f32 * 0.4).sin() * (x as f32 * 0.3).cos())) as u8
    });
    let mut new = key.clone();
    for y in 10..22 {
        for x in 10..22 {
            new.set(y, x, 255); // revealed object
        }
    }
    let rfbme = Rfbme::new(
        RfGeometry {
            size: 8,
            stride: 4,
            padding: 0,
        },
        SearchParams { radius: 4, step: 1 },
    );
    let clean = rfbme.estimate(&key, &key).total_error;
    let occluded = rfbme.estimate(&key, &new).total_error;
    assert_eq!(clean, 0);
    assert!(
        occluded > 10_000,
        "block error {occluded} should flag new pixels"
    );
}
