//! JSON text rendering and parsing for the local serde facade.
//!
//! Implements the `serde_json` API subset this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`]. Numbers round-trip
//! exactly (Rust's shortest-roundtrip float formatting); strings are escaped
//! per RFC 8259.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip representation.
                let s = format!("{f:?}");
                out.push_str(&s);
            } else {
                out.push_str("null"); // serde_json also writes null for NaN/inf
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            write_bracketed(out, items.iter(), '[', ']', indent, level, |v, o, l| {
                write_value(v, o, indent, l)
            })
        }
        Value::Map(entries) => write_bracketed(
            out,
            entries.iter(),
            '{',
            '}',
            indent,
            level,
            |(k, v), o, l| {
                write_escaped(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(v, o, indent, l);
            },
        ),
    }
}

fn write_bracketed<I, T>(
    out: &mut String,
    items: I,
    open: char,
    close: char,
    indent: Option<usize>,
    level: usize,
    mut write_item: impl FnMut(T, &mut String, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(item, out, level + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar.
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v: Vec<Vec<f32>> = vec![vec![1.5, -2.25, 0.1], vec![], vec![3.0]];
        let s = to_string(&v).unwrap();
        let back: Vec<Vec<f32>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_contains_newlines() {
        let v = vec![1u32, 2, 3];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape() {
        let s = to_string("a\"b\\c\nd").unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn parses_numbers() {
        let v: f64 = from_str("-1.25e2").unwrap();
        assert_eq!(v, -125.0);
        let n: i64 = from_str("-42").unwrap();
        assert_eq!(n, -42);
    }
}
