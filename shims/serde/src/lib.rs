//! A minimal, self-contained stand-in for the `serde` facade.
//!
//! The build environment for this repository has no crates.io access, so the
//! workspace vendors the small serialization surface it actually uses:
//!
//! * [`Serialize`] / [`Deserialize`] traits over an owned JSON-like
//!   [`Value`] tree (no `Serializer`/`Deserializer` visitors);
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   shim, producing serde-compatible external tagging for enums;
//! * impls for the primitives, `String`, `Option`, `Vec`, arrays, and small
//!   tuples.
//!
//! `serde_json` (also shimmed) renders [`Value`] to JSON text and parses it
//! back. The encoding is interchangeable with real serde_json output for the
//! types this workspace derives.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// An owned, JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object (insertion-ordered).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of a `Map` value.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element `i` of a `Seq` value.
    pub fn index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Seq(items) => items.get(i),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str` value — used for unit enum
    /// variants under external tagging.
    pub fn variant_name(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The `(tag, inner)` pair of a single-entry map — a data-carrying enum
    /// variant under external tagging.
    pub fn variant_pair(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Map(entries) if entries.len() == 1 => {
                Some((entries[0].0.as_str(), &entries[0].1))
            }
            _ => None,
        }
    }

    fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            Value::Float(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i64),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(v) => u64::try_from(v).ok(),
            Value::UInt(v) => Some(v),
            Value::Float(v) if v.fract() == 0.0 && (0.0..1.9e19).contains(&v) => Some(v as u64),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-macro helper: deserializes field `name` of a map value.
pub fn from_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    let f = v
        .field(name)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))?;
    T::from_value(f)
}

/// Derive-macro helper: deserializes element `i` of a sequence value.
pub fn from_index<T: Deserialize>(v: &Value, i: usize) -> Result<T, DeError> {
    let e = v
        .index(i)
        .ok_or_else(|| DeError::custom(format!("missing tuple element {i}")))?;
    T::from_value(e)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| DeError::custom("expected integer"))?;
                <$t>::try_from(raw).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| DeError::custom("expected unsigned integer"))?;
                <$t>::try_from(raw).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::custom("expected number"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected number"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::custom("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(($(from_index::<$t>(v, $i)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u8::from_value(&42u8.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<Vec<f32>> = vec![vec![1.0, 2.0], vec![]];
        assert_eq!(Vec::<Vec<f32>>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(f64::from_value(&Value::Int(-2)).unwrap(), -2.0);
        assert_eq!(usize::from_value(&Value::Int(7)).unwrap(), 7);
        assert!(u8::from_value(&Value::Int(-1)).is_err());
    }
}
