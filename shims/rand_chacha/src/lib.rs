//! A self-contained ChaCha8 random number generator.
//!
//! Implements the real ChaCha block function (D. J. Bernstein) with 8 rounds
//! over the `rand` shim's [`RngCore`]/[`SeedableRng`] traits. Output word
//! order follows the ChaCha stream (little-endian words of successive
//! 64-byte blocks), which is deterministic across platforms — the property
//! every seeded test in this workspace relies on.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher based generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words 0..8, i.e. state words 4..12.
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Stream/nonce words (state words 14..16).
    nonce: [u32; 2],
    /// Current output block.
    block: [u32; 16],
    /// Next word to emit from `block`; 16 means exhausted.
    index: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            nonce: [0, 0],
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha8_known_answer_zero_key() {
        // ChaCha8 keystream, all-zero key/nonce, block 0 — first words of
        // the widely published test vector
        // 3e00ef2f895f40d67f5bb8e81f09a5a1 2c840ec3ce9a7f3b181be188ef711a1e.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), u32::from_le_bytes([0x3e, 0x00, 0xef, 0x2f]));
        assert_eq!(rng.next_u32(), u32::from_le_bytes([0x89, 0x5f, 0x40, 0xd6]));
        assert_eq!(rng.next_u32(), u32::from_le_bytes([0x7f, 0x5b, 0xb8, 0xe8]));
        assert_eq!(rng.next_u32(), u32::from_le_bytes([0x1f, 0x09, 0xa5, 0xa1]));
    }

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn blocks_advance() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
