//! A minimal property-testing harness with the `proptest` macro surface.
//!
//! Offline stand-in for the real `proptest` crate covering what this
//! workspace uses: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`prop_flat_map`, numeric range strategies, tuples,
//! [`collection::vec`], [`prop_oneof!`], [`Just`], `any::<T>()`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic ChaCha8
//! stream seeded per test name. **No shrinking** is performed on failure —
//! the failing values are printed instead.

use rand::SeedableRng;
pub use rand_chacha::ChaCha8Rng as TestRng;

/// Strategy combinators and base implementations.
pub mod strategy {
    use super::TestRng;
    use rand::Rng;

    /// A generator of test values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn pick(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then a second strategy from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Boxes the strategy behind a trait object.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed strategy trait object.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn pick(&self, rng: &mut TestRng) -> T {
            (**self).pick(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn pick(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.pick(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn pick(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.pick(rng)).pick(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn pick(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn pick(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.pick(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    /// A weighted union of boxed strategies (backs [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Union<T> {
        /// Creates a union; weights must sum to a positive value.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof: zero total weight");
            Self { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn pick(&self, rng: &mut TestRng) -> T {
            let mut roll = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if roll < *w {
                    return s.pick(rng);
                }
                roll -= w;
            }
            unreachable!("weights covered above")
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Lengths acceptable to [`vec`].
    pub trait SizeRange {
        /// Chooses a concrete length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy yielding vectors of values from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates `Vec`s whose length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.pick(rng)).collect()
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        rng.next_u32() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns a strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Derives a deterministic seed from a test's module path and name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Creates the RNG for one test run.
pub fn rng_for(name: &str) -> TestRng {
    TestRng::seed_from_u64(seed_for(name))
}

/// Everything a test module typically imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{any, Arbitrary, ProptestConfig};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property (no shrinking; plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Defines property tests.
///
/// Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(x in 0usize..10, v in collection::vec(-1.0f32..1.0, 8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::pick(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0usize..10, (a, b) in (0u8..4, 1u8..5)) {
            prop_assert!(x < 10);
            prop_assert!(a < 4 && (1..5).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn maps_and_vecs(v in collection::vec(-1.0f32..1.0, 0..9), k in (1usize..4).prop_map(|n| n * 2)) {
            prop_assert!(v.len() < 9);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
            prop_assert!(k % 2 == 0 && k >= 2);
        }

        #[test]
        fn oneof_mixes(v in prop_oneof![3 => Just(0.0f32), 2 => 5.0f32..6.0]) {
            prop_assert!(v == 0.0 || (5.0..6.0).contains(&v));
        }

        #[test]
        fn flat_map_chains(v in (1usize..5).prop_flat_map(|n| collection::vec(0usize..10, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
