//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the local serde
//! facade.
//!
//! The build environment has no access to crates.io, so this proc-macro crate
//! re-implements just enough of serde_derive for the types this workspace
//! derives on: structs with named fields, tuple structs, unit structs, and
//! enums with unit / tuple / struct variants. Generics are intentionally
//! unsupported (no workspace type needs them).
//!
//! The encoding matches serde's external tagging so JSON written by this shim
//! is interchangeable with real serde_json output for the same types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Def {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the facade's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_def(input);
    gen_serialize(&def)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the facade's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_def(input);
    gen_deserialize(&def)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_def(input: TokenStream) -> Def {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected `struct` or `enum`, found {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected type name, found {t}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types ({name})");
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Def::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Def::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => Def::UnitStruct { name },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Def::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            t => panic!("expected enum body, found {t:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                    *i += 1;
                }
                *i += 1; // bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream at top-level commas, treating `<...>` as nested.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    for t in stream {
        match &t {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' && !prev_dash {
                    angle_depth -= 1;
                } else if c == ',' && angle_depth == 0 {
                    parts.push(std::mem::take(&mut current));
                    prev_dash = false;
                    continue;
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        current.push(t);
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let mut i = 0usize;
            skip_attrs_and_vis(&part, &mut i);
            match &part[i] {
                TokenTree::Ident(id) => id.to_string(),
                t => panic!("expected field name, found {t}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream)
        .into_iter()
        .filter(|part| !part.is_empty())
        .count()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let mut i = 0usize;
            skip_attrs_and_vis(&part, &mut i);
            let name = match &part[i] {
                TokenTree::Ident(id) => id.to_string(),
                t => panic!("expected variant name, found {t}"),
            };
            i += 1;
            let kind = match part.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(count_tuple_fields(g.stream()))
                }
                _ => VariantKind::Unit,
            };
            Variant { name, kind }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(def: &Def) -> String {
    match def {
        Def::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Map(::std::vec![{}])\n\
                   }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Def::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Serialize::to_value(&self.0)\n\
               }}\n\
             }}"
        ),
        Def::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Seq(::std::vec![{}])\n\
                   }}\n\
                 }}",
                items.join(", ")
            )
        }
        Def::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Def::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{\n{}\n}}\n\
                   }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(def: &Def) -> String {
    match def {
        Def::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(v, \"{f}\")?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name} {{ {} }})\n\
                   }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Def::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
               }}\n\
             }}"
        ),
        Def::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::from_index(v, {i})?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}({}))\n\
                   }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Def::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn from_value(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({name})\n\
               }}\n\
             }}"
        ),
        Def::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => return ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::from_index(inner, {i})?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => return ::std::result::Result::Ok(\
                                 {name}::{vn}({})),",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::from_field(inner, \"{f}\")?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => return ::std::result::Result::Ok(\
                                 {name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     if let ::std::option::Option::Some(tag) = v.variant_name() {{\n\
                       match tag {{\n{}\n _ => {{}}\n }}\n\
                     }}\n\
                     if let ::std::option::Option::Some((tag, inner)) = v.variant_pair() {{\n\
                       match tag {{\n{}\n _ => {{}}\n }}\n\
                     }}\n\
                     ::std::result::Result::Err(::serde::DeError::custom(\
                       ::std::concat!(\"invalid value for enum \", ::std::stringify!({name}))))\n\
                   }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    }
}
