//! A minimal stand-in for the `rand` crate (0.8-era API subset).
//!
//! Provides [`RngCore`], [`Rng::gen_range`]/[`Rng::gen_bool`],
//! [`SeedableRng`] (with the standard SplitMix64 `seed_from_u64` expansion),
//! and [`seq::SliceRandom::shuffle`] — the full surface this workspace uses.
//! Concrete generators live in the sibling `rand_chacha` shim.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        next_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn next_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    // 24 high-entropy bits → [0, 1).
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 bits → [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a uniform sampler over an interval.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges that can be sampled uniformly.
///
/// A single blanket impl per range type (as in `rand` 0.8) keeps type
/// inference working for unsuffixed float literals like `gen_range(0.4..0.7)`
/// in an `f32` context.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_uniform(rng, start, end, true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _incl: bool) -> Self {
        lo + (hi - lo) * next_f32(rng)
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _incl: bool) -> Self {
        lo + (hi - lo) * next_f64(rng)
    }
}

/// Generators seedable from fixed entropy.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 (the
    /// same expansion `rand` 0.8 uses, so seeded streams stay stable if the
    /// real crate is ever substituted back in).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Vigna), as used by rand_core::SeedableRng.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Extension trait adding random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // Simple xorshift so ranges see varied bits.
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(0x1234_5678_9abc_def0);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&i));
            let b: u8 = rng.gen_range(190..=255);
            assert!(b >= 190);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(42);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
