//! A small wall-clock benchmarking harness with the `criterion` API surface.
//!
//! Offline stand-in for the real `criterion` crate. Supports the subset this
//! workspace's `benches/` use: benchmark groups, `sample_size`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology: each benchmark is calibrated so one *sample* runs enough
//! iterations to take roughly [`TARGET_SAMPLE_NANOS`]; `sample_size` samples
//! are then timed and the **median** per-iteration time is reported (median
//! is robust to scheduler noise). Results print to stdout as
//! `<group>/<id> ... median <t>` lines, and are written as JSON to the path
//! in the `EVA2_CRITERION_JSON` environment variable when set — which is how
//! the committed `BENCH_*.json` trajectories are produced.
//!
//! A positional command-line filter (as passed by `cargo bench -- <filter>`)
//! restricts execution to benchmarks whose `group/id` contains the filter
//! substring. Setting the `EVA2_BENCH_QUICK` environment variable shrinks
//! the sampling plan (3 samples of ~0.5 ms) so CI bench smoke finishes in
//! seconds.

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Target wall-clock duration of one measurement sample.
const TARGET_SAMPLE_NANOS: u64 = 5_000_000; // 5 ms

/// Hard cap on iterations per sample (guards against ~ns routines).
const MAX_ITERS_PER_SAMPLE: u64 = 1 << 20;

/// Re-export of `std::hint::black_box` (criterion compatibility).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Group name (empty for ungrouped benchmarks).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of samples measured.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

impl BenchRecord {
    fn json(&self) -> String {
        format!(
            "{{\"group\":\"{}\",\"id\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
            self.group, self.id, self.median_ns, self.mean_ns, self.samples, self.iters_per_sample
        )
    }
}

/// The benchmark driver.
pub struct Criterion {
    records: Vec<BenchRecord>,
    filter: Option<String>,
    default_sample_size: usize,
    target_sample_nanos: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` (and sometimes other flags) to harness=false
        // bench binaries; the first non-flag argument is the user's filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        // Quick mode (CI bench smoke): shrink the sampling plan so a whole
        // bench binary finishes in seconds. Numbers get noisier; smoke runs
        // only check that the harness still executes.
        let quick = std::env::var_os("EVA2_BENCH_QUICK").is_some();
        Self {
            records: Vec::new(),
            filter,
            default_sample_size: if quick { 3 } else { 20 },
            target_sample_nanos: if quick { 500_000 } else { TARGET_SAMPLE_NANOS },
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let n = self.default_sample_size;
        self.run(String::new(), id.label(), n, f);
        self
    }

    fn run<F>(&mut self, group: String, id: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = if group.is_empty() {
            id.clone()
        } else {
            format!("{group}/{id}")
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Calibration: find iters/sample targeting the sample duration.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let once = bencher.elapsed.as_nanos().max(1) as u64;
        let iters = (self.target_sample_nanos / once).clamp(1, MAX_ITERS_PER_SAMPLE);
        // Warmup.
        bencher.iters = iters;
        f(&mut bencher);
        // Measurement.
        let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            bencher.iters = iters;
            f(&mut bencher);
            per_iter.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let record = BenchRecord {
            group,
            id,
            median_ns: median,
            mean_ns: mean,
            samples: sample_size,
            iters_per_sample: iters,
        };
        println!(
            "bench {:<52} median {:>12}  mean {:>12}  ({} samples x {} iters)",
            full,
            fmt_ns(record.median_ns),
            fmt_ns(record.mean_ns),
            record.samples,
            record.iters_per_sample
        );
        self.records.push(record);
    }

    /// All records measured so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Prints the closing summary and writes the JSON dump when
    /// `EVA2_CRITERION_JSON` is set.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("EVA2_CRITERION_JSON") {
            let mut body = String::from("[\n");
            for (i, r) in self.records.iter().enumerate() {
                let _ = write!(body, "  {}", r.json());
                body.push_str(if i + 1 < self.records.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            body.push_str("]\n");
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("criterion shim: could not write {path}: {e}");
            } else {
                println!(
                    "criterion shim: wrote {} records to {path}",
                    self.records.len()
                );
            }
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of measurement samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run(self.name.clone(), id.label(), n, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion
            .run(self.name.clone(), id.label(), n, |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            function: Some(function.to_string()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| b.iter(|| n * n));
        group.finish();
    }

    #[test]
    fn records_are_collected() {
        let mut c = Criterion {
            records: Vec::new(),
            filter: None,
            default_sample_size: 5,
            target_sample_nanos: 100_000,
        };
        tiny_bench(&mut c);
        assert_eq!(c.records().len(), 2);
        assert!(c.records()[0].median_ns > 0.0);
        assert_eq!(c.records()[1].id, "sq/4");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            records: Vec::new(),
            filter: Some("nomatch".into()),
            default_sample_size: 5,
            target_sample_nanos: 100_000,
        };
        tiny_bench(&mut c);
        assert!(c.records().is_empty());
    }
}
