//! # EVA² — Exploiting Temporal Redundancy in Live Computer Vision
//!
//! A from-scratch Rust reproduction of Buckler et al., ISCA 2018
//! (arXiv:1803.06312): **activation motion compensation (AMC)** and the
//! **EVA²** hardware unit, together with every substrate the paper's
//! evaluation depends on.
//!
//! This meta-crate re-exports the workspace:
//!
//! * [`tensor`] — tensors, 8-bit frames, Q8.8 fixed point, interpolation.
//! * [`video`] — synthetic annotated live video (the YTBB stand-in).
//! * [`cnn`] — a trainable CNN library with prefix/suffix execution and
//!   receptive-field arithmetic.
//! * [`motion`] — RFBME and the motion-estimation baselines.
//! * [`analysis`] — the build-time model/pipeline verifier: shape
//!   inference, warp-legality, Q8.8 range analysis, and sparsity-flow
//!   passes over a network IR (`analysis::analyze`), with stable
//!   diagnostic codes. `Engine`/`AmcExecutor` construction consults it.
//! * [`amc`] — the AMC executor: warp engine, sparse activation store,
//!   key-frame policies, and the multi-stream serving engine
//!   (`amc::serve::Engine` / `StreamSession`, with cross-stream batched
//!   key frames) — crate `eva2-core`.
//! * [`hw`] — the Eyeriss + EIE + EVA² energy/latency/area model.
//!
//! ## Quick start
//!
//! ```
//! use eva2::amc::executor::{AmcConfig, AmcExecutor};
//! use eva2::cnn::zoo;
//! use eva2::video::scene::{Scene, SceneConfig};
//!
//! let workload = zoo::tiny_fasterm(1);
//! let mut scene = Scene::new(SceneConfig::detection(48, 48), 7);
//! let clip = scene.render_clip(5);
//! let mut amc = AmcExecutor::try_new(&workload.network, AmcConfig::default()).unwrap();
//! for frame in &clip.frames {
//!     let result = amc.process(&frame.image);
//!     // result.output is the CNN suffix output for this frame.
//!     assert_eq!(result.output.shape().channels, zoo::DETECTION_OUTPUTS);
//! }
//! assert!(amc.stats().key_frames >= 1);
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for the paper-vs-measured record
//! of every table and figure.

#![forbid(unsafe_code)]

pub use eva2_analysis as analysis;
pub use eva2_cnn as cnn;
pub use eva2_core as amc;
pub use eva2_hw as hw;
pub use eva2_motion as motion;
pub use eva2_tensor as tensor;
pub use eva2_video as video;
