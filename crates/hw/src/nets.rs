//! Full-scale descriptors for the paper's three workloads.
//!
//! * [`alexnet`] — AlexNet as in Krizhevsky et al. [35], with the original
//!   grouped conv2/4/5 (so conv MACs come out at the canonical ≈666 M).
//! * [`faster16`] — Faster R-CNN with the VGG-16 feature extractor at the
//!   paper's detection resolution of 1000×562 (§IV-A uses exactly this
//!   configuration for its 1.7 × 10¹¹-MAC prefix example).
//! * [`fasterm`] — Faster R-CNN with the CNN-M "medium" extractor of
//!   Chatfield et al. [38].

use crate::descriptor::NetDescriptor;

/// Detection input height used by the paper's Faster R-CNN variants.
pub const DETECTION_H: usize = 562;
/// Detection input width.
pub const DETECTION_W: usize = 1000;

/// AlexNet (classification, 3×227×227).
pub fn alexnet() -> NetDescriptor {
    NetDescriptor::new("AlexNet", (3, 227, 227))
        .conv("conv1", 3, 96, 11, 4, 0)
        .pool("pool1", 3, 2)
        .conv_grouped("conv2", 96, 256, 5, 1, 2, 2)
        .pool("pool2", 3, 2)
        .conv("conv3", 256, 384, 3, 1, 1)
        .conv_grouped("conv4", 384, 384, 3, 1, 1, 2)
        .conv_grouped("conv5", 384, 256, 3, 1, 1, 2)
        .pool("pool5", 3, 2)
        .fc("fc6", 4096)
        .fc("fc7", 4096)
        .fc("fc8", 1000)
}

/// VGG-16's thirteen convolutional layers on an arbitrary input size.
fn vgg16_convs(net: NetDescriptor) -> NetDescriptor {
    net.conv("conv1_1", 3, 64, 3, 1, 1)
        .conv("conv1_2", 64, 64, 3, 1, 1)
        .pool("pool1", 2, 2)
        .conv("conv2_1", 64, 128, 3, 1, 1)
        .conv("conv2_2", 128, 128, 3, 1, 1)
        .pool("pool2", 2, 2)
        .conv("conv3_1", 128, 256, 3, 1, 1)
        .conv("conv3_2", 256, 256, 3, 1, 1)
        .conv("conv3_3", 256, 256, 3, 1, 1)
        .pool("pool3", 2, 2)
        .conv("conv4_1", 256, 512, 3, 1, 1)
        .conv("conv4_2", 512, 512, 3, 1, 1)
        .conv("conv4_3", 512, 512, 3, 1, 1)
        .pool("pool4", 2, 2)
        .conv("conv5_1", 512, 512, 3, 1, 1)
        .conv("conv5_2", 512, 512, 3, 1, 1)
        .conv("conv5_3", 512, 512, 3, 1, 1)
}

/// Faster16: VGG-16 features + RPN + detection head at 1000×562.
///
/// "Faster R-CNN adds 3 convolutional layers and 4 fully-connected layers"
/// (§IV-B): the RPN's 3×3 conv with its two 1×1 sibling convs, then
/// fc6/fc7/cls/bbox on the RoI-pooled features. RoI pooling is modelled as a
/// pooling layer to 7×7 granularity (it contributes no MACs either way).
pub fn faster16() -> NetDescriptor {
    let net = vgg16_convs(NetDescriptor::new(
        "Faster16",
        (3, DETECTION_H, DETECTION_W),
    ));
    net
        // Region proposal network.
        .conv("rpn_conv", 512, 512, 3, 1, 1)
        .conv("rpn_cls", 512, 18, 1, 1, 0)
        .conv("rpn_bbox", 512, 36, 1, 1, 0)
        // RoI pooling to 7x7 (no MACs), then the detection head. The head
        // runs per proposal; we model the paper's per-frame cost with one
        // effective pass (EIE's costs are orders of magnitude below conv).
        .pool("roi_pool", 5, 5)
        .fc("fc6", 4096)
        .fc("fc7", 4096)
        .fc("cls_score", 21)
        .fc("bbox_pred", 84)
}

/// FasterM: CNN-M features + RPN + detection head at 1000×562.
pub fn fasterm() -> NetDescriptor {
    NetDescriptor::new("FasterM", (3, DETECTION_H, DETECTION_W))
        .conv("conv1", 3, 96, 7, 2, 0)
        .pool("pool1", 3, 2)
        .conv("conv2", 96, 256, 5, 2, 1)
        .pool("pool2", 3, 2)
        .conv("conv3", 256, 512, 3, 1, 1)
        .conv("conv4", 512, 512, 3, 1, 1)
        .conv("conv5", 512, 512, 3, 1, 1)
        .conv("rpn_conv", 512, 256, 3, 1, 1)
        .conv("rpn_cls", 256, 18, 1, 1, 0)
        .conv("rpn_bbox", 256, 36, 1, 1, 0)
        .pool("roi_pool", 5, 5)
        .fc("fc6", 4096)
        .fc("fc7", 1024)
        .fc("cls_score", 21)
        .fc("bbox_pred", 84)
}

/// The three workloads by paper name.
pub fn by_name(name: &str) -> Option<NetDescriptor> {
    match name {
        "AlexNet" => Some(alexnet()),
        "Faster16" => Some(faster16()),
        "FasterM" => Some(fasterm()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_conv_macs_canonical() {
        let n = alexnet();
        let macs = n.conv_macs();
        // Canonical grouped AlexNet: ≈666M conv MACs (tolerate the usual
        // ±10% from output-size conventions).
        assert!(
            (macs as f64 - 666e6).abs() / 666e6 < 0.12,
            "AlexNet conv MACs = {macs}"
        );
    }

    #[test]
    fn alexnet_fc_macs_canonical() {
        let n = alexnet();
        // 9216*4096 + 4096*4096 + 4096*1000 ≈ 58.6M.
        let macs = n.fc_macs();
        assert!(
            (macs as f64 - 58.6e6).abs() / 58.6e6 < 0.05,
            "AlexNet FC MACs = {macs}"
        );
    }

    #[test]
    fn faster16_prefix_matches_paper_section4a() {
        // "For a Faster16 prefix ending at layer conv5_3 on 1000×562 images
        // … the total is 1.7 × 10^11 MACs."
        let n = faster16();
        let target = n.layer_index("conv5_3").expect("conv5_3");
        let prefix = n.prefix_macs(target);
        assert!(
            (prefix as f64 - 1.7e11).abs() / 1.7e11 < 0.10,
            "Faster16 prefix MACs = {prefix:.3e}"
        );
    }

    #[test]
    fn faster16_rf_at_conv5_3() {
        let n = faster16();
        let target = n.layer_index("conv5_3").unwrap();
        let (size, stride, _) = n.receptive_field(target);
        // VGG-16 conv5_3: canonical receptive field 196, stride 16.
        assert_eq!(stride, 16);
        assert_eq!(size, 196);
    }

    #[test]
    fn workload_ordering() {
        // Total cost ordering matches the paper: Faster16 ≫ FasterM ≫ AlexNet.
        let a = alexnet().total_macs();
        let m = fasterm().total_macs();
        let v = faster16().total_macs();
        assert!(v > 5 * m, "faster16 {v} vs fasterm {m}");
        assert!(m > 5 * a, "fasterm {m} vs alexnet {a}");
    }

    #[test]
    fn detection_nets_share_input() {
        assert_eq!(faster16().input, (3, DETECTION_H, DETECTION_W));
        assert_eq!(fasterm().input, (3, DETECTION_H, DETECTION_W));
    }

    #[test]
    fn last_spatial_layers() {
        let f = faster16();
        // Last spatial layer is roi_pool; the conv5_3 target sits earlier.
        let last = f.last_spatial_layer().unwrap();
        assert!(f.layer_index("conv5_3").unwrap() < last);
        let a = alexnet();
        assert_eq!(a.last_spatial_layer(), a.layer_index("pool5"));
    }

    #[test]
    fn by_name_roundtrip() {
        for name in ["AlexNet", "Faster16", "FasterM"] {
            assert_eq!(by_name(name).unwrap().name, name);
        }
        assert!(by_name("ResNet").is_none());
    }

    #[test]
    fn fasterm_prefix_is_much_smaller_than_faster16() {
        let f16 = faster16();
        let fm = fasterm();
        let t16 = f16.layer_index("conv5_3").unwrap();
        let tm = fm.layer_index("conv5").unwrap();
        let r = f16.prefix_macs(t16) as f64 / fm.prefix_macs(tm) as f64;
        // The paper's energy ratio between the two detection nets is ~9x.
        assert!(r > 4.0, "ratio {r}");
    }
}
