//! Shape-level network descriptors.
//!
//! The cost model never executes these networks — it only needs layer
//! geometry to count MACs (the paper's §IV-A formulas) and to locate the AMC
//! prefix/suffix split. Keeping full-scale shapes here and executable
//! scaled-down analogues in `eva2-cnn` separates the two faithfully: energy
//! numbers come from real AlexNet/VGG shapes, accuracy numbers from networks
//! we can actually train.

use serde::{Deserialize, Serialize};

/// The kind and geometry of one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Convolution. `groups` models grouped convolution (AlexNet's split
    /// layers); MACs divide by the group count.
    Conv {
        /// Input channels.
        in_channels: usize,
        /// Output channels (filters).
        out_channels: usize,
        /// Square kernel side.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding per side.
        padding: usize,
        /// Filter groups (1 = dense).
        groups: usize,
    },
    /// Max pooling.
    Pool {
        /// Window side.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Element-wise activation (free in the MAC model).
    Relu,
    /// Fully-connected layer over the flattened input.
    Fc {
        /// Output features.
        out_features: usize,
    },
}

/// One named layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerDesc {
    /// Layer name (paper convention, e.g. `conv5_3`).
    pub name: String,
    /// Geometry.
    pub kind: LayerKind,
}

/// A `(channels, height, width)` shape.
pub type Shape = (usize, usize, usize);

/// A full network as a list of layer shapes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetDescriptor {
    /// Network name (paper convention).
    pub name: String,
    /// Input shape `(c, h, w)`.
    pub input: Shape,
    /// Layers in execution order.
    pub layers: Vec<LayerDesc>,
}

fn conv_out(n: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    let padded = n + 2 * padding;
    if padded < kernel {
        0
    } else {
        (padded - kernel) / stride + 1
    }
}

impl NetDescriptor {
    /// Builder: starts an empty descriptor.
    pub fn new(name: impl Into<String>, input: Shape) -> Self {
        Self {
            name: name.into(),
            input,
            layers: Vec::new(),
        }
    }

    /// Appends a dense convolution followed by an implicit ReLU-free count
    /// (ReLUs are free; add them explicitly only when the layer list should
    /// mirror the paper's tables).
    pub fn conv(
        mut self,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        self.layers.push(LayerDesc {
            name: name.into(),
            kind: LayerKind::Conv {
                in_channels,
                out_channels,
                kernel,
                stride,
                padding,
                groups: 1,
            },
        });
        self
    }

    /// Appends a grouped convolution (AlexNet's two-GPU split).
    #[allow(clippy::too_many_arguments)]
    pub fn conv_grouped(
        mut self,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        groups: usize,
    ) -> Self {
        self.layers.push(LayerDesc {
            name: name.into(),
            kind: LayerKind::Conv {
                in_channels,
                out_channels,
                kernel,
                stride,
                padding,
                groups,
            },
        });
        self
    }

    /// Appends a pooling layer.
    pub fn pool(mut self, name: &str, kernel: usize, stride: usize) -> Self {
        self.layers.push(LayerDesc {
            name: name.into(),
            kind: LayerKind::Pool { kernel, stride },
        });
        self
    }

    /// Appends a fully-connected layer.
    pub fn fc(mut self, name: &str, out_features: usize) -> Self {
        self.layers.push(LayerDesc {
            name: name.into(),
            kind: LayerKind::Fc { out_features },
        });
        self
    }

    /// Returns a copy evaluating the same layers at a different input size.
    ///
    /// Used by the cost model: FODLAM sums *published* per-layer results,
    /// which exist at the publication resolutions (227² AlexNet, 224²
    /// VGG-16), while receptive-field geometry and the §IV-A analysis use
    /// the true detection resolution.
    pub fn with_input(&self, input: Shape) -> Self {
        Self {
            name: self.name.clone(),
            input,
            layers: self.layers.clone(),
        }
    }

    /// Shape of the activation *after* layer `i`.
    pub fn shape_after(&self, i: usize) -> Shape {
        let mut s = self.input;
        for layer in &self.layers[..=i] {
            s = Self::apply(s, &layer.kind);
        }
        s
    }

    /// Shape entering layer `i`.
    pub fn shape_before(&self, i: usize) -> Shape {
        if i == 0 {
            self.input
        } else {
            self.shape_after(i - 1)
        }
    }

    fn apply(s: Shape, kind: &LayerKind) -> Shape {
        let (c, h, w) = s;
        match *kind {
            LayerKind::Conv {
                out_channels,
                kernel,
                stride,
                padding,
                ..
            } => (
                out_channels,
                conv_out(h, kernel, stride, padding),
                conv_out(w, kernel, stride, padding),
            ),
            LayerKind::Pool { kernel, stride } => (
                c,
                conv_out(h, kernel, stride, 0),
                conv_out(w, kernel, stride, 0),
            ),
            LayerKind::Relu => s,
            LayerKind::Fc { out_features } => (out_features, 1, 1),
        }
    }

    /// MACs of layer `i` — "outputs × MACs per output" (§IV-A).
    pub fn layer_macs(&self, i: usize) -> u64 {
        let before = self.shape_before(i);
        let after = self.shape_after(i);
        match self.layers[i].kind {
            LayerKind::Conv {
                in_channels,
                kernel,
                groups,
                ..
            } => {
                let outputs = (after.0 * after.1 * after.2) as u64;
                let per_output = (in_channels * kernel * kernel) as u64 / groups.max(1) as u64;
                outputs * per_output
            }
            LayerKind::Fc { .. } => {
                let inputs = (before.0 * before.1 * before.2) as u64;
                inputs * after.0 as u64
            }
            LayerKind::Pool { .. } | LayerKind::Relu => 0,
        }
    }

    /// Total MACs of a full forward pass.
    pub fn total_macs(&self) -> u64 {
        (0..self.layers.len()).map(|i| self.layer_macs(i)).sum()
    }

    /// MACs of layers `0..=target` (the AMC prefix).
    pub fn prefix_macs(&self, target: usize) -> u64 {
        (0..=target).map(|i| self.layer_macs(i)).sum()
    }

    /// MACs executed on the convolutional accelerator (Eyeriss).
    pub fn conv_macs(&self) -> u64 {
        (0..self.layers.len())
            .filter(|&i| matches!(self.layers[i].kind, LayerKind::Conv { .. }))
            .map(|i| self.layer_macs(i))
            .sum()
    }

    /// MACs executed on the fully-connected accelerator (EIE).
    pub fn fc_macs(&self) -> u64 {
        (0..self.layers.len())
            .filter(|&i| matches!(self.layers[i].kind, LayerKind::Fc { .. }))
            .map(|i| self.layer_macs(i))
            .sum()
    }

    /// Conv MACs restricted to the prefix / suffix split at `target`.
    pub fn conv_macs_split(&self, target: usize) -> (u64, u64) {
        let mut prefix = 0;
        let mut suffix = 0;
        for i in 0..self.layers.len() {
            if matches!(self.layers[i].kind, LayerKind::Conv { .. }) {
                if i <= target {
                    prefix += self.layer_macs(i);
                } else {
                    suffix += self.layer_macs(i);
                }
            }
        }
        (prefix, suffix)
    }

    /// Index of the last spatial layer (the paper's default target).
    pub fn last_spatial_layer(&self) -> Option<usize> {
        let mut last = None;
        for (i, l) in self.layers.iter().enumerate() {
            match l.kind {
                LayerKind::Fc { .. } => break,
                _ => last = Some(i),
            }
        }
        last
    }

    /// Index of the layer with the given name.
    pub fn layer_index(&self, name: &str) -> Option<usize> {
        self.layers.iter().position(|l| l.name == name)
    }

    /// Receptive-field `(size, stride, padding)` of the activation after
    /// layer `target`, as seen from the input.
    pub fn receptive_field(&self, target: usize) -> (usize, usize, usize) {
        let mut rf = (1usize, 1usize, 0usize);
        for l in &self.layers[..=target] {
            let (k, s, p) = match l.kind {
                LayerKind::Conv {
                    kernel,
                    stride,
                    padding,
                    ..
                } => (kernel, stride, padding),
                LayerKind::Pool { kernel, stride } => (kernel, stride, 0),
                LayerKind::Relu => (1, 1, 0),
                LayerKind::Fc { .. } => panic!("receptive field through FC layer"),
            };
            rf = (rf.0 + (k - 1) * rf.1, rf.1 * s, rf.2 + p * rf.1);
        }
        rf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> NetDescriptor {
        NetDescriptor::new("toy", (1, 32, 32))
            .conv("c1", 1, 8, 3, 1, 1)
            .pool("p1", 2, 2)
            .conv("c2", 8, 16, 3, 1, 1)
            .fc("fc1", 10)
    }

    #[test]
    fn shapes_propagate() {
        let n = toy();
        assert_eq!(n.shape_after(0), (8, 32, 32));
        assert_eq!(n.shape_after(1), (8, 16, 16));
        assert_eq!(n.shape_after(2), (16, 16, 16));
        assert_eq!(n.shape_after(3), (10, 1, 1));
    }

    #[test]
    fn macs_formula() {
        let n = toy();
        assert_eq!(n.layer_macs(0), 32 * 32 * 8 * 9);
        assert_eq!(n.layer_macs(1), 0);
        assert_eq!(n.layer_macs(2), 16 * 16 * 16 * 8 * 9);
        assert_eq!(n.layer_macs(3), 16 * 16 * 16 * 10);
        assert_eq!(
            n.total_macs(),
            n.layer_macs(0) + n.layer_macs(2) + n.layer_macs(3)
        );
    }

    #[test]
    fn grouped_conv_divides_macs() {
        let dense = NetDescriptor::new("d", (96, 27, 27)).conv("c", 96, 256, 5, 1, 2);
        let grouped = NetDescriptor::new("g", (96, 27, 27)).conv_grouped("c", 96, 256, 5, 1, 2, 2);
        assert_eq!(dense.layer_macs(0), 2 * grouped.layer_macs(0));
    }

    #[test]
    fn conv_fc_split() {
        let n = toy();
        assert_eq!(n.conv_macs() + n.fc_macs(), n.total_macs());
        assert_eq!(n.fc_macs(), 16 * 16 * 16 * 10);
    }

    #[test]
    fn prefix_and_split() {
        let n = toy();
        assert_eq!(n.prefix_macs(1), n.layer_macs(0));
        let (pre, suf) = n.conv_macs_split(1);
        assert_eq!(pre, n.layer_macs(0));
        assert_eq!(suf, n.layer_macs(2));
    }

    #[test]
    fn last_spatial_stops_before_fc() {
        let n = toy();
        assert_eq!(n.last_spatial_layer(), Some(2));
        assert_eq!(n.layer_index("c2"), Some(2));
        assert_eq!(n.layer_index("nope"), None);
    }

    #[test]
    fn receptive_field_fold() {
        let n = toy();
        // c1 (3,1,1) → rf (3,1,1); p1 (2,2) → (4,2,1); c2 → (8,2,3).
        assert_eq!(n.receptive_field(2), (8, 2, 3));
    }
}
