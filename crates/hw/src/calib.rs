//! Calibration constants for the cost model.
//!
//! The paper gathers "published per-layer results from each paper" — Eyeriss
//! from the JSSC'17 journal version [33] and EIE from ISCA'16 [6] — and
//! scales other layers by MAC count (§IV-B). The same anchors are encoded
//! here once; **every** experiment derives from these constants, never from
//! per-experiment tuning.
//!
//! Eyeriss publishes whole-network runs of AlexNet and VGG-16; the derived
//! energy-per-MAC and throughput differ between the two (VGG's small 3×3
//! layers reuse less), so the model keeps one efficiency class per published
//! network and assigns each workload the class of its nearest relative.

use serde::{Deserialize, Serialize};

/// Milliseconds and millijoules for one full network pass on the published
/// accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PublishedRun {
    /// Total network latency, ms.
    pub latency_ms: f64,
    /// Total network energy, mJ.
    pub energy_mj: f64,
    /// MACs of the published workload.
    pub macs: f64,
}

impl PublishedRun {
    /// Derived throughput in MACs per millisecond.
    pub fn macs_per_ms(&self) -> f64 {
        self.macs / self.latency_ms
    }

    /// Derived energy per MAC in millijoules.
    pub fn mj_per_mac(&self) -> f64 {
        self.energy_mj / self.macs
    }
}

/// Eyeriss (65 nm) running AlexNet's five conv layers — JSSC'17: 115.3 ms
/// per frame at 278 mW.
pub const EYERISS_ALEXNET: PublishedRun = PublishedRun {
    latency_ms: 115.3,
    energy_mj: 32.0,
    macs: 666e6,
};

/// Eyeriss (65 nm) running VGG-16's thirteen conv layers — JSSC'17: 4309.5
/// ms per frame at 236 mW.
pub const EYERISS_VGG16: PublishedRun = PublishedRun {
    latency_ms: 4309.5,
    energy_mj: 1017.0,
    macs: 15.35e9,
};

/// EIE (45 nm, scaled to 65 nm) running AlexNet's FC layers. EIE keeps the
/// compressed model on chip and skips zero activations, so its per-frame
/// cost is tiny: ≈ 0.32 ms / ≈ 0.04 mJ across fc6–fc8 at 45 nm. Scaling
/// latency and energy up linearly by the 45→65 nm factor gives the anchor
/// (the same normalisation the paper applies, §IV-B).
pub const EIE_ALEXNET_FC: PublishedRun = PublishedRun {
    latency_ms: 0.46,
    energy_mj: 0.06,
    macs: 58.6e6,
};

/// Technology scaling factor from EIE's 45 nm process to 65 nm (linear, as
/// the paper applies to area/latency/power).
pub const TECH_SCALE_45_TO_65: f64 = 65.0 / 45.0;

/// EVA² clock period (ns): "meets timing with a clock cycle of 7 ns, which
/// was matched to the memory cycle time" (§IV-B).
pub const EVA2_CLOCK_NS: f64 = 7.0;

/// Parallel absolute-difference lanes in the diff tile producer's adder
/// tree (one s×s tile row per cycle at the largest strides).
pub const EVA2_ADD_LANES: f64 = 16.0;

/// Energy per RFBME add including its share of pixel-buffer eDRAM traffic,
/// in mJ (≈ 2 pJ: a 16-bit add is ≈ 0.05 pJ at 65 nm; the eDRAM read
/// dominates).
pub const EVA2_MJ_PER_OP: f64 = 2.0e-9;

/// Energy per warp-engine interpolation (4 sparse loads + 8 multiplies +
/// adds), in mJ (≈ 20 pJ).
pub const EVA2_MJ_PER_INTERP: f64 = 20.0e-9;

/// Warp-engine throughput: one interpolation per 7 ns cycle through the
/// 4-lane datapath (1 ms = 10⁶ ns).
pub const EVA2_INTERPS_PER_MS: f64 = 1.0e6 / EVA2_CLOCK_NS;

/// Efficiency class: which published Eyeriss run a workload inherits its
/// conv-layer efficiency from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConvClass {
    /// Large-kernel, few-layer networks (AlexNet, CNN-M).
    AlexNetLike,
    /// Deep stacks of 3×3 kernels (VGG-16).
    VggLike,
}

impl ConvClass {
    /// The published anchor for this class.
    pub fn anchor(self) -> PublishedRun {
        match self {
            ConvClass::AlexNetLike => EYERISS_ALEXNET,
            ConvClass::VggLike => EYERISS_VGG16,
        }
    }

    /// Class for one of the paper's workloads by name.
    pub fn for_workload(name: &str) -> ConvClass {
        match name {
            "Faster16" => ConvClass::VggLike,
            // AlexNet and CNN-M share the large-kernel shallow topology.
            _ => ConvClass::AlexNetLike,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates_are_sane() {
        // Eyeriss AlexNet: ~5.8 GMAC/s, ~48 pJ/MAC.
        let a = EYERISS_ALEXNET;
        assert!((a.macs_per_ms() - 5.78e6).abs() / 5.78e6 < 0.05);
        assert!((a.mj_per_mac() - 4.8e-8).abs() / 4.8e-8 < 0.05);
        // VGG is slower per MAC on Eyeriss (published behaviour).
        let v = EYERISS_VGG16;
        assert!(v.macs_per_ms() < a.macs_per_ms());
        assert!(v.mj_per_mac() > a.mj_per_mac());
    }

    #[test]
    fn eie_is_orders_of_magnitude_cheaper() {
        // §IV-C: "the energy and latency for the fully-connected layers are
        // orders of magnitude smaller than for convolutional layers."
        let fc = EIE_ALEXNET_FC;
        assert!(fc.latency_ms < EYERISS_ALEXNET.latency_ms / 100.0);
        assert!(fc.energy_mj < EYERISS_ALEXNET.energy_mj / 100.0);
    }

    #[test]
    fn classes_map_workloads() {
        assert_eq!(ConvClass::for_workload("AlexNet"), ConvClass::AlexNetLike);
        assert_eq!(ConvClass::for_workload("FasterM"), ConvClass::AlexNetLike);
        assert_eq!(ConvClass::for_workload("Faster16"), ConvClass::VggLike);
    }

    #[test]
    fn tech_scaling_factor() {
        assert!((TECH_SCALE_45_TO_65 - 1.444).abs() < 0.001);
    }
}
