//! Per-frame latency and energy (Fig 13, Table I).
//!
//! Cost of one frame on the VPU of Fig 5:
//!
//! * **Key frame** — Eyeriss runs every conv layer, EIE every FC layer, and
//!   EVA² stores the target activation (its motion-estimation work still
//!   runs, deciding *that* this is a key frame).
//! * **Predicted frame** — EVA² runs RFBME + warping; Eyeriss runs only the
//!   conv layers after the target; EIE runs the FC layers.

use crate::calib::{
    ConvClass, EIE_ALEXNET_FC, EVA2_ADD_LANES, EVA2_CLOCK_NS, EVA2_INTERPS_PER_MS,
    EVA2_MJ_PER_INTERP, EVA2_MJ_PER_OP,
};
use crate::descriptor::NetDescriptor;
use crate::firstorder::{rfbme_ops, RfbmeParams};
use serde::{Deserialize, Serialize};

/// Latency/energy for one frame, with a per-unit breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FrameCost {
    /// Total frame latency, ms.
    pub latency_ms: f64,
    /// Total frame energy, mJ.
    pub energy_mj: f64,
    /// Eyeriss (conv) share of the energy, mJ.
    pub eyeriss_mj: f64,
    /// EIE (FC) share, mJ.
    pub eie_mj: f64,
    /// EVA² (motion estimation + compensation) share, mJ.
    pub eva2_mj: f64,
    /// Eyeriss share of latency, ms.
    pub eyeriss_ms: f64,
    /// EIE share of latency, ms.
    pub eie_ms: f64,
    /// EVA² share of latency, ms.
    pub eva2_ms: f64,
}

impl FrameCost {
    fn add(&self, other: &FrameCost) -> FrameCost {
        FrameCost {
            latency_ms: self.latency_ms + other.latency_ms,
            energy_mj: self.energy_mj + other.energy_mj,
            eyeriss_mj: self.eyeriss_mj + other.eyeriss_mj,
            eie_mj: self.eie_mj + other.eie_mj,
            eva2_mj: self.eva2_mj + other.eva2_mj,
            eyeriss_ms: self.eyeriss_ms + other.eyeriss_ms,
            eie_ms: self.eie_ms + other.eie_ms,
            eva2_ms: self.eva2_ms + other.eva2_ms,
        }
    }

    fn scale(&self, f: f64) -> FrameCost {
        FrameCost {
            latency_ms: self.latency_ms * f,
            energy_mj: self.energy_mj * f,
            eyeriss_mj: self.eyeriss_mj * f,
            eie_mj: self.eie_mj * f,
            eva2_mj: self.eva2_mj * f,
            eyeriss_ms: self.eyeriss_ms * f,
            eie_ms: self.eie_ms * f,
            eva2_ms: self.eva2_ms * f,
        }
    }

    /// Weighted mixture: `key_fraction` of key-frame cost plus the rest of
    /// predicted-frame cost — the paper's "avg" bars in Fig 13.
    pub fn mix(key: &FrameCost, predicted: &FrameCost, key_fraction: f64) -> FrameCost {
        key.scale(key_fraction)
            .add(&predicted.scale(1.0 - key_fraction))
    }
}

/// AMC execution parameters the cost model needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmcCostConfig {
    /// Prefix target layer index in the descriptor (defaults to the
    /// workload's canonical target when `None`).
    pub target: Option<usize>,
    /// RFBME search radius in pixels.
    pub search_radius: usize,
    /// RFBME search stride in pixels.
    pub search_stride: usize,
}

impl Default for AmcCostConfig {
    fn default() -> Self {
        Self {
            target: None,
            search_radius: 24,
            search_stride: 8,
        }
    }
}

/// The first-order hardware model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HwModel {
    /// AMC parameters.
    pub amc: AmcCostConfig,
}

impl HwModel {
    /// Canonical AMC target layer for a workload descriptor: the last conv
    /// layer of the feature extractor (conv5_3 for Faster16, conv5 for
    /// FasterM, pool5 for AlexNet — the last spatial layer before the
    /// head).
    pub fn canonical_target(net: &NetDescriptor) -> usize {
        for name in ["conv5_3", "conv5", "pool5"] {
            if let Some(i) = net.layer_index(name) {
                return i;
            }
        }
        net.last_spatial_layer().unwrap_or(0)
    }

    fn target(&self, net: &NetDescriptor) -> usize {
        self.amc
            .target
            .unwrap_or_else(|| Self::canonical_target(net))
    }

    /// The resolution at which FODLAM's published per-layer anchors exist.
    ///
    /// The paper's Table I `orig` numbers line up with the published
    /// Eyeriss runs at the *publication* resolutions (AlexNet 227², VGG-16
    /// 224²), while §IV-A counts MACs at the detection resolution — two
    /// separate analyses in the paper. The cost model follows FODLAM and
    /// costs conv layers at the anchor resolution; RFBME geometry and the
    /// first-order model keep the true 1000×562 shapes.
    fn costing_net(net: &NetDescriptor) -> NetDescriptor {
        if net.input.1 > 300 || net.input.2 > 300 {
            net.with_input((net.input.0, 224, 224))
        } else {
            net.clone()
        }
    }

    fn conv_cost(&self, name: &str, macs: u64) -> (f64, f64) {
        let anchor = ConvClass::for_workload(name).anchor();
        let ms = macs as f64 / anchor.macs_per_ms();
        let mj = macs as f64 * anchor.mj_per_mac();
        (ms, mj)
    }

    fn fc_cost(&self, costing: &NetDescriptor) -> (f64, f64) {
        let macs = costing.fc_macs() as f64;
        let ms = EIE_ALEXNET_FC.latency_ms * macs / EIE_ALEXNET_FC.macs;
        let mj = EIE_ALEXNET_FC.energy_mj * macs / EIE_ALEXNET_FC.macs;
        (ms, mj)
    }

    /// RFBME parameters for this network's target layer.
    pub fn rfbme_params(&self, net: &NetDescriptor) -> RfbmeParams {
        let target = self.target(net);
        let (rf_size, rf_stride, _) = net.receptive_field(target);
        let (_, h, w) = net.shape_after(target);
        RfbmeParams {
            act_h: h,
            act_w: w,
            rf_size,
            rf_stride,
            search_radius: self.amc.search_radius,
            search_stride: self.amc.search_stride,
        }
    }

    fn eva2_cost(&self, net: &NetDescriptor) -> (f64, f64) {
        let p = self.rfbme_params(net);
        let ops = rfbme_ops(&p) as f64;
        let target = self.target(net);
        let (c, h, w) = net.shape_after(target);
        let interpolations = (c * h * w) as f64;
        // Activation sparsity lets the warp engine skip most interpolations;
        // the paper reports ≈80% sparse activations (§III-B).
        let effective_interps = interpolations * 0.25;
        let ms =
            ops / EVA2_ADD_LANES * EVA2_CLOCK_NS * 1e-6 + effective_interps / EVA2_INTERPS_PER_MS;
        let mj = ops * EVA2_MJ_PER_OP + effective_interps * EVA2_MJ_PER_INTERP;
        (ms, mj)
    }

    /// Cost of a key frame: the full CNN (the paper's `orig` configuration
    /// is exactly this, with zero EVA² contribution).
    pub fn key_frame_cost(&self, net: &NetDescriptor) -> FrameCost {
        let costing = Self::costing_net(net);
        let (conv_ms, conv_mj) = self.conv_cost(&net.name, costing.conv_macs());
        let (fc_ms, fc_mj) = self.fc_cost(&costing);
        // Key frames still pay EVA²'s motion estimation (it made the
        // decision) — a negligible but honest inclusion.
        let (eva_ms, eva_mj) = self.eva2_cost(net);
        FrameCost {
            latency_ms: conv_ms + fc_ms + eva_ms,
            energy_mj: conv_mj + fc_mj + eva_mj,
            eyeriss_mj: conv_mj,
            eie_mj: fc_mj,
            eva2_mj: eva_mj,
            eyeriss_ms: conv_ms,
            eie_ms: fc_ms,
            eva2_ms: eva_ms,
        }
    }

    /// Cost of the baseline (no EVA² attached at all): Eyeriss + EIE only.
    pub fn baseline_cost(&self, net: &NetDescriptor) -> FrameCost {
        let costing = Self::costing_net(net);
        let (conv_ms, conv_mj) = self.conv_cost(&net.name, costing.conv_macs());
        let (fc_ms, fc_mj) = self.fc_cost(&costing);
        FrameCost {
            latency_ms: conv_ms + fc_ms,
            energy_mj: conv_mj + fc_mj,
            eyeriss_mj: conv_mj,
            eie_mj: fc_mj,
            eva2_mj: 0.0,
            eyeriss_ms: conv_ms,
            eie_ms: fc_ms,
            eva2_ms: 0.0,
        }
    }

    /// Cost of a predicted frame: EVA² + conv suffix + FC layers.
    pub fn predicted_frame_cost(&self, net: &NetDescriptor) -> FrameCost {
        let costing = Self::costing_net(net);
        let target = self.target(net);
        let (_, suffix_conv) = costing.conv_macs_split(target);
        let (conv_ms, conv_mj) = self.conv_cost(&net.name, suffix_conv);
        let (fc_ms, fc_mj) = self.fc_cost(&costing);
        let (eva_ms, eva_mj) = self.eva2_cost(net);
        FrameCost {
            latency_ms: conv_ms + fc_ms + eva_ms,
            energy_mj: conv_mj + fc_mj + eva_mj,
            eyeriss_mj: conv_mj,
            eie_mj: fc_mj,
            eva2_mj: eva_mj,
            eyeriss_ms: conv_ms,
            eie_ms: fc_ms,
            eva2_ms: eva_ms,
        }
    }

    /// Average per-frame cost at a given key-frame fraction (Table I's
    /// `time`/`energy` columns; Fig 13's `avg` bars).
    pub fn average_cost(&self, net: &NetDescriptor, key_fraction: f64) -> FrameCost {
        FrameCost::mix(
            &self.key_frame_cost(net),
            &self.predicted_frame_cost(net),
            key_fraction.clamp(0.0, 1.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nets;

    #[test]
    fn orig_costs_match_table1_anchors() {
        // Table I `orig` rows: AlexNet 115.4 ms / 32.2 mJ; Faster16 4370.1
        // ms / 1035.5 mJ. Our baseline derives from the same published
        // Eyeriss runs, so it must land close.
        let model = HwModel::default();
        let a = model.baseline_cost(&nets::alexnet());
        assert!((a.latency_ms - 115.4).abs() / 115.4 < 0.15, "{a:?}");
        assert!((a.energy_mj - 32.2).abs() / 32.2 < 0.15, "{a:?}");
        let f = model.baseline_cost(&nets::faster16());
        assert!((f.latency_ms - 4370.0).abs() / 4370.0 < 0.25, "{f:?}");
        assert!((f.energy_mj - 1035.5).abs() / 1035.5 < 0.25, "{f:?}");
    }

    #[test]
    fn predicted_frames_are_much_cheaper() {
        let model = HwModel::default();
        for net in [nets::alexnet(), nets::faster16(), nets::fasterm()] {
            let key = model.key_frame_cost(&net);
            let pred = model.predicted_frame_cost(&net);
            assert!(
                pred.energy_mj < key.energy_mj * 0.25,
                "{}: pred {pred:?} vs key {key:?}",
                net.name
            );
            assert!(pred.latency_ms < key.latency_ms * 0.25, "{}", net.name);
        }
    }

    #[test]
    fn average_interpolates_between_extremes() {
        let model = HwModel::default();
        let net = nets::fasterm();
        let key = model.key_frame_cost(&net);
        let pred = model.predicted_frame_cost(&net);
        let avg = model.average_cost(&net, 0.37);
        assert!(avg.energy_mj < key.energy_mj && avg.energy_mj > pred.energy_mj);
        let expect = 0.37 * key.energy_mj + 0.63 * pred.energy_mj;
        assert!((avg.energy_mj - expect).abs() < 1e-9);
    }

    #[test]
    fn table1_med_energy_reductions_reproduce() {
        // Table I `med` rows: AlexNet 11% keys → 4.0 mJ (88% saving);
        // Faster16 36% keys → 396.4 mJ (62%); FasterM 37% → 53.4 mJ (54%).
        let model = HwModel::default();
        let cases = [
            (nets::alexnet(), 0.11, 32.2, 4.0),
            (nets::faster16(), 0.36, 1035.5, 396.4),
            (nets::fasterm(), 0.37, 116.7, 53.4),
        ];
        for (net, keys, orig_paper, avg_paper) in cases {
            let avg = model.average_cost(&net, keys);
            let orig = model.baseline_cost(&net);
            let our_ratio = avg.energy_mj / orig.energy_mj;
            let paper_ratio = avg_paper / orig_paper;
            assert!(
                (our_ratio - paper_ratio).abs() < 0.12,
                "{}: our ratio {our_ratio:.3} vs paper {paper_ratio:.3}",
                net.name
            );
        }
    }

    #[test]
    fn eva2_overhead_is_small() {
        // EVA²'s own cost must be a small fraction of even a predicted
        // frame for the big detection nets (else AMC couldn't win).
        let model = HwModel::default();
        let net = nets::faster16();
        let pred = model.predicted_frame_cost(&net);
        assert!(
            pred.eva2_mj < pred.energy_mj * 0.6,
            "EVA2 {} of {}",
            pred.eva2_mj,
            pred.energy_mj
        );
    }

    #[test]
    fn fc_latency_is_orders_of_magnitude_below_conv() {
        let model = HwModel::default();
        let net = nets::faster16();
        let key = model.key_frame_cost(&net);
        assert!(key.eie_ms < key.eyeriss_ms / 100.0);
    }

    #[test]
    fn canonical_targets() {
        assert_eq!(
            HwModel::canonical_target(&nets::faster16()),
            nets::faster16().layer_index("conv5_3").unwrap()
        );
        assert_eq!(
            HwModel::canonical_target(&nets::fasterm()),
            nets::fasterm().layer_index("conv5").unwrap()
        );
    }

    #[test]
    fn mix_endpoints() {
        let a = FrameCost {
            latency_ms: 10.0,
            energy_mj: 5.0,
            ..FrameCost::default()
        };
        let b = FrameCost {
            latency_ms: 2.0,
            energy_mj: 1.0,
            ..FrameCost::default()
        };
        assert_eq!(FrameCost::mix(&a, &b, 1.0).latency_ms, 10.0);
        assert_eq!(FrameCost::mix(&a, &b, 0.0).energy_mj, 1.0);
    }
}
