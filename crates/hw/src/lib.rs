//! First-order ASIC cost model: Eyeriss + EIE + EVA².
//!
//! The paper evaluates EVA² by attaching it to "a model of a state-of-the-art
//! deep learning accelerator based on recent architecture papers… Eyeriss for
//! convolutional layers and EIE for fully-connected layers", gathering
//! *published* per-network results and scaling layers by their
//! multiply–accumulate counts (§IV-B — their FODLAM model, ref [36]). This
//! crate reimplements that methodology:
//!
//! * [`descriptor`] — layer-shape descriptors for *full-scale* networks, so
//!   MAC counts (the model's input) are the real ones.
//! * [`nets`] — AlexNet, Faster16 (VGG-16-based Faster R-CNN at 1000×562),
//!   and FasterM (CNN-M-based) exactly as the paper evaluates them.
//! * [`calib`] — calibration anchors from the published Eyeriss (JSSC'17)
//!   and EIE (ISCA'16) results; every experiment derives from the same
//!   constants.
//! * [`cost`] — per-frame latency/energy for key frames, predicted frames,
//!   and key/predicted mixtures (Fig 13, Table I).
//! * [`area`] — the 65 nm area comparison (Fig 12).
//! * [`firstorder`] — the §IV-A analytical op-count model (prefix MACs vs
//!   RFBME adds).
//!
//! # Example
//!
//! ```
//! use eva2_hw::nets;
//! use eva2_hw::cost::HwModel;
//!
//! let net = nets::faster16();
//! let model = HwModel::default();
//! let key = model.key_frame_cost(&net);
//! let pred = model.predicted_frame_cost(&net);
//! assert!(pred.energy_mj * 2.0 < key.energy_mj, "predicted frames must be far cheaper");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod area;
pub mod calib;
pub mod cost;
pub mod descriptor;
pub mod firstorder;
pub mod nets;

pub use cost::{FrameCost, HwModel};
pub use descriptor::{LayerDesc, LayerKind, NetDescriptor};
