//! The §IV-A first-order op-count model.
//!
//! "AMC eliminates ~10¹¹ MACs in the CNN prefix and incurs only ~10⁷
//! additions for motion estimation. AMC's advantages stem from this large
//! difference between savings and overhead."

use serde::{Deserialize, Serialize};

/// Parameters of an RFBME run on one network's target layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RfbmeParams {
    /// Target activation height ("layer height" in the paper's formulas).
    pub act_h: usize,
    /// Target activation width.
    pub act_w: usize,
    /// Receptive-field size in pixels.
    pub rf_size: usize,
    /// Receptive-field stride in pixels.
    pub rf_stride: usize,
    /// Search radius in pixels.
    pub search_radius: usize,
    /// Search stride in pixels.
    pub search_stride: usize,
}

impl RfbmeParams {
    /// Candidate offsets per axis: `2·radius / stride` (the paper's term).
    pub fn window_per_axis(&self) -> f64 {
        2.0 * self.search_radius as f64 / self.search_stride.max(1) as f64
    }
}

/// The paper's *unoptimized* motion-estimation op count:
///
/// ```text
/// ops = (layer_w × layer_h) × (2·radius / search_stride)² × rf_size²
/// ```
pub fn unoptimized_ops(p: &RfbmeParams) -> u64 {
    let cells = (p.act_h * p.act_w) as f64;
    let window = p.window_per_axis() * p.window_per_axis();
    let field = (p.rf_size * p.rf_size) as f64;
    (cells * window * field) as u64
}

/// The paper's *optimized* RFBME op count with tile reuse:
///
/// ```text
/// ops = unoptimized / rf_stride² + (layer_w × layer_h) × (rf_size / rf_stride)²
/// ```
pub fn rfbme_ops(p: &RfbmeParams) -> u64 {
    let cells = (p.act_h * p.act_w) as f64;
    let tiles = (p.rf_size / p.rf_stride.max(1)) as f64;
    (unoptimized_ops(p) as f64 / (p.rf_stride * p.rf_stride).max(1) as f64 + cells * tiles * tiles)
        as u64
}

/// Speedup of RFBME's reuse over the unoptimized search.
pub fn reuse_speedup(p: &RfbmeParams) -> f64 {
    unoptimized_ops(p) as f64 / rfbme_ops(p).max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::HwModel;
    use crate::nets;

    /// The §IV-A Faster16 example: unoptimized ≈ 3×10⁹ adds, RFBME ≈
    /// 1.3×10⁷, against a prefix of 1.7×10¹¹ MACs.
    #[test]
    fn faster16_numbers_match_paper() {
        let model = HwModel::default();
        let net = nets::faster16();
        let p = model.rfbme_params(&net);
        assert_eq!(p.rf_stride, 16);
        assert_eq!(p.rf_size, 196);
        let un = unoptimized_ops(&p) as f64;
        let opt = rfbme_ops(&p) as f64;
        assert!((un - 3.0e9).abs() / 3.0e9 < 0.35, "unoptimized {un:.3e}");
        assert!((opt - 1.3e7).abs() / 1.3e7 < 0.35, "optimized {opt:.3e}");
        // The headline gap: prefix MACs / RFBME ops ≈ 4 orders of magnitude.
        let target = net.layer_index("conv5_3").unwrap();
        let ratio = net.prefix_macs(target) as f64 / opt;
        assert!(ratio > 3.0e3, "savings ratio {ratio:.3e}");
    }

    #[test]
    fn reuse_speedup_scales_with_stride_squared() {
        // "The potential benefit from this reuse depends linearly on the
        // number of pixels per tile" — i.e. stride² per comparison.
        let base = RfbmeParams {
            act_h: 32,
            act_w: 32,
            rf_size: 64,
            rf_stride: 8,
            search_radius: 16,
            search_stride: 4,
        };
        let wider = RfbmeParams {
            rf_stride: 16,
            rf_size: 128,
            ..base
        };
        let s1 = reuse_speedup(&base);
        let s2 = reuse_speedup(&wider);
        assert!(s2 > s1 * 2.0, "speedups {s1:.1} vs {s2:.1}");
    }

    #[test]
    fn unoptimized_formula_literal() {
        let p = RfbmeParams {
            act_h: 10,
            act_w: 20,
            rf_size: 8,
            rf_stride: 4,
            search_radius: 8,
            search_stride: 2,
        };
        // 200 cells × (16/2)² × 64 = 200 × 64 × 64 = 819200.
        assert_eq!(unoptimized_ops(&p), 819_200);
        // 819200/16 + 200×4 = 51200 + 800.
        assert_eq!(rfbme_ops(&p), 52_000);
    }
}
