//! Chip area on a 65 nm process (Fig 12).
//!
//! "The area for Eyeriss is 12.2 mm² on a 65 nm process… The area for EIE
//! is 40.8 mm² on a 45 nm process; compensating for the process difference,
//! EIE would occupy approximately 58.9 mm² on a 65 nm process. EVA² itself
//! occupies 2.6 mm², which is 3.5% of the overall area for the three units.
//! Of this, the eDRAM memory for the pixel buffers occupies 54.5% of EVA²'s
//! area, and the activation buffer occupies 16.0%" (§IV-B).

use crate::calib::TECH_SCALE_45_TO_65;
use serde::{Deserialize, Serialize};

/// Published Eyeriss area at 65 nm, mm².
pub const EYERISS_MM2: f64 = 12.2;
/// Fraction of Eyeriss occupied by its PE array.
pub const EYERISS_PE_FRACTION: f64 = 0.786;
/// Published EIE area at 45 nm, mm².
pub const EIE_MM2_45NM: f64 = 40.8;
/// EVA² synthesized area at 65 nm, mm².
pub const EVA2_MM2: f64 = 2.6;
/// Fraction of EVA² occupied by the two pixel buffers (eDRAM).
pub const EVA2_PIXEL_BUFFER_FRACTION: f64 = 0.545;
/// Fraction of EVA² occupied by the key activation buffer.
pub const EVA2_ACTIVATION_BUFFER_FRACTION: f64 = 0.160;

/// One unit's area entry in the Fig 12 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaEntry {
    /// Unit name.
    pub name: String,
    /// Area in mm² at 65 nm.
    pub mm2: f64,
}

/// The Fig 12 area report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Eyeriss, EIE (scaled), EVA².
    pub entries: Vec<AreaEntry>,
}

/// EIE's area scaled from 45 nm to 65 nm (linear scaling, as the paper
/// applies: 40.8 × 65/45 ≈ 58.9).
pub fn eie_scaled_mm2() -> f64 {
    EIE_MM2_45NM * TECH_SCALE_45_TO_65
}

/// Builds the Fig 12 report.
pub fn fig12_report() -> AreaReport {
    AreaReport {
        entries: vec![
            AreaEntry {
                name: "Eyeriss (conv)".into(),
                mm2: EYERISS_MM2,
            },
            AreaEntry {
                name: "EIE (FC)".into(),
                mm2: eie_scaled_mm2(),
            },
            AreaEntry {
                name: "EVA2".into(),
                mm2: EVA2_MM2,
            },
        ],
    }
}

impl AreaReport {
    /// Total VPU area.
    pub fn total_mm2(&self) -> f64 {
        self.entries.iter().map(|e| e.mm2).sum()
    }

    /// One unit's share of the total, as a percentage.
    pub fn percent_of_total(&self, name: &str) -> Option<f64> {
        let e = self.entries.iter().find(|e| e.name.contains(name))?;
        Some(100.0 * e.mm2 / self.total_mm2())
    }
}

/// EVA²'s internal area breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Eva2Breakdown {
    /// Pixel buffers (two eDRAM frame stores), mm².
    pub pixel_buffers_mm2: f64,
    /// Key activation buffer (eDRAM), mm².
    pub activation_buffer_mm2: f64,
    /// Remaining logic (RFBME producer/consumer, warp engine), mm².
    pub logic_mm2: f64,
}

/// EVA²'s area breakdown per the paper's percentages.
pub fn eva2_breakdown() -> Eva2Breakdown {
    let pixel = EVA2_MM2 * EVA2_PIXEL_BUFFER_FRACTION;
    let act = EVA2_MM2 * EVA2_ACTIVATION_BUFFER_FRACTION;
    Eva2Breakdown {
        pixel_buffers_mm2: pixel,
        activation_buffer_mm2: act,
        logic_mm2: EVA2_MM2 - pixel - act,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eie_scaling_matches_paper() {
        assert!((eie_scaled_mm2() - 58.9).abs() < 0.1);
    }

    #[test]
    fn eva2_is_3_5_percent_of_vpu() {
        let r = fig12_report();
        let pct = r.percent_of_total("EVA2").unwrap();
        assert!((pct - 3.5).abs() < 0.2, "EVA2 share {pct}%");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let b = eva2_breakdown();
        let total = b.pixel_buffers_mm2 + b.activation_buffer_mm2 + b.logic_mm2;
        assert!((total - EVA2_MM2).abs() < 1e-9);
        assert!(b.pixel_buffers_mm2 > b.activation_buffer_mm2);
        assert!(b.pixel_buffers_mm2 > b.logic_mm2);
    }

    #[test]
    fn report_totals() {
        let r = fig12_report();
        assert_eq!(r.entries.len(), 3);
        assert!((r.total_mm2() - (12.2 + 58.9 + 2.6)).abs() < 0.1);
        assert!(r.percent_of_total("nope").is_none());
    }
}
