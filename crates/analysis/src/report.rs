//! Structured diagnostics: [`Diagnostic`], [`Severity`], [`DiagCode`], and
//! the [`AnalysisReport`] the pass pipeline fills in.

use std::fmt;

/// How bad a diagnostic is.
///
/// Only [`Severity::Error`] diagnostics make `Engine`/`AmcExecutor`
/// construction fail; warnings and infos are advisory and appear in the
/// rendered report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Context the report reader may want (resolved granularity, ranges).
    Info,
    /// Suspicious but survivable — the pipeline will run, possibly badly.
    Warning,
    /// The (network, config) pair is broken; construction must refuse it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes — see the crate-level reference table for
/// meaning and suggested fixes. The `E-`/`W-` prefix documents the severity
/// the code is emitted at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagCode {
    /// `E-SHAPE-001`: conv input channel mismatch.
    ShapeChannelMismatch,
    /// `E-SHAPE-002`: a layer's spatial output collapses to zero extent.
    ShapeCollapsed,
    /// `E-SHAPE-003`: FC `in_features` ≠ flattened input length.
    ShapeFlattenMismatch,
    /// `W-SHAPE-004`: opaque (undescribed) layer; analysis stops there.
    ShapeOpaqueLayer,
    /// `E-WARP-001`: non-spatial layer inside the AMC prefix.
    WarpNonSpatialPrefix,
    /// `E-WARP-002`: input smaller than one RFBME tile (no whole block).
    WarpNoWholeTile,
    /// `E-WARP-003`: search step exceeds the RFBME block size.
    WarpStepExceedsBlock,
    /// `W-WARP-004`: search window asymmetric (`2·radius % step ≠ 0`).
    WarpAsymmetricWindow,
    /// `E-RANGE-001`: Q8.8 datapath can saturate at the target layer.
    RangeFixedOverflow,
    /// `W-RANGE-002`: Q8.8 headroom under 2× at the target layer.
    RangeFixedNearOverflow,
    /// `W-RANGE-003`: f32 activation range would not fit Q8.8.
    RangeFloatExceedsFixed,
    /// `W-SPARSE-001`: target activation is not ReLU-derived.
    SparseProducerNotRelu,
    /// `W-SPARSE-002`: first suffix layer has no sparse-aware path.
    SparseConsumerNotSparse,
    /// `W-SPARSE-003`: target is the last layer; the suffix is empty.
    SparseNoSuffix,
    /// `E-COST-001`: a cost aggregate overflows `u64`.
    CostModelOverflow,
    /// `W-COST-001`: static cost model ≠ the engine's MAC accounting.
    CostModelMismatch,
    /// `W-COST-002`: cost model could not be built (opaque/shape/target).
    CostModelIncomplete,
    /// `W-COST-003`: zero-MAC prefix — AMC saves nothing.
    CostZeroPrefix,
    /// `W-CAP-001`: SLO tick budget below one key frame; limits clamped.
    CapacityBelowKeyFrame,
}

impl DiagCode {
    /// The stable string form (`E-SHAPE-001`, …) used in rendered reports
    /// and in `AmcError::AnalysisRejected`.
    pub fn as_str(&self) -> &'static str {
        match self {
            DiagCode::ShapeChannelMismatch => "E-SHAPE-001",
            DiagCode::ShapeCollapsed => "E-SHAPE-002",
            DiagCode::ShapeFlattenMismatch => "E-SHAPE-003",
            DiagCode::ShapeOpaqueLayer => "W-SHAPE-004",
            DiagCode::WarpNonSpatialPrefix => "E-WARP-001",
            DiagCode::WarpNoWholeTile => "E-WARP-002",
            DiagCode::WarpStepExceedsBlock => "E-WARP-003",
            DiagCode::WarpAsymmetricWindow => "W-WARP-004",
            DiagCode::RangeFixedOverflow => "E-RANGE-001",
            DiagCode::RangeFixedNearOverflow => "W-RANGE-002",
            DiagCode::RangeFloatExceedsFixed => "W-RANGE-003",
            DiagCode::SparseProducerNotRelu => "W-SPARSE-001",
            DiagCode::SparseConsumerNotSparse => "W-SPARSE-002",
            DiagCode::SparseNoSuffix => "W-SPARSE-003",
            DiagCode::CostModelOverflow => "E-COST-001",
            DiagCode::CostModelMismatch => "W-COST-001",
            DiagCode::CostModelIncomplete => "W-COST-002",
            DiagCode::CostZeroPrefix => "W-COST-003",
            DiagCode::CapacityBelowKeyFrame => "W-CAP-001",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the pass pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code (see the crate-level reference table).
    pub code: DiagCode,
    /// How bad it is.
    pub severity: Severity,
    /// The layer the finding anchors to (`None` for whole-network or
    /// config-level findings).
    pub layer: Option<usize>,
    /// Human-readable explanation, naming the offending layer and values.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.severity, self.code, self.message)?;
        if let Some(i) = self.layer {
            write!(f, " (layer {i})")?;
        }
        Ok(())
    }
}

/// Per-layer facts the passes derive, kept for the rendered report.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSummary {
    /// Layer name from the IR.
    pub name: String,
    /// Kind label (`conv`, `pool`, …).
    pub kind: &'static str,
    /// Inferred output shape as `(channels, height, width)`, when shape
    /// inference reached this layer.
    pub shape: Option<(usize, usize, usize)>,
    /// Activation bounds `[lo, hi]`, when range analysis reached this
    /// layer.
    pub range: Option<(f64, f64)>,
    /// Forward-pass MACs, when the cost pass reached this layer.
    pub macs: Option<u64>,
}

/// Everything the pass pipeline produced for one (network, config) pair.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Network name, for rendering.
    pub network: String,
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// One summary per layer, in layer order.
    pub layers: Vec<LayerSummary>,
    /// Motion granularity at the target (cumulative prefix stride, in
    /// pixels), when the warp-legality pass could compute it.
    pub granularity: Option<usize>,
    /// The static cost model, when the cost pass could build it
    /// (`W-COST-002` explains why when it could not).
    pub cost: Option<crate::cost::CostSummary>,
}

impl AnalysisReport {
    /// Appends a diagnostic.
    pub fn push(
        &mut self,
        code: DiagCode,
        severity: Severity,
        layer: Option<usize>,
        message: String,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            layer,
            message,
        });
    }

    /// `true` when any diagnostic is error-severity.
    pub fn has_errors(&self) -> bool {
        self.first_error().is_some()
    }

    /// The first error-severity diagnostic, if any — what
    /// `AmcError::AnalysisRejected` reports.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
    }

    /// All error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// All warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Renders the report as a plain-text table plus the diagnostics list
    /// (the format `analyze_zoo` prints).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "network {}:", self.network);
        if let Some(g) = self.granularity {
            let _ = writeln!(out, "  motion granularity: {g} px/activation cell");
        }
        for (i, l) in self.layers.iter().enumerate() {
            let shape = match l.shape {
                Some((c, h, w)) => format!("{c}x{h}x{w}"),
                None => "?".to_string(),
            };
            let range = match l.range {
                Some((lo, hi)) => format!("[{lo:+.3}, {hi:+.3}]"),
                None => "[?]".to_string(),
            };
            let macs = match l.macs {
                Some(m) => m.to_string(),
                None => "?".to_string(),
            };
            let _ = writeln!(
                out,
                "  {i:>2} {:<12} {:<5} {shape:<12} {macs:>10} {range}",
                l.name, l.kind
            );
        }
        if let Some(c) = &self.cost {
            let _ = writeln!(
                out,
                "  cost: key {} MACs; predicted <= {} ops (suffix {} MACs + rfbme <= {} \
                 + warp <= {}); target activation {} B",
                c.key_frame_macs,
                c.predicted_ops_bound,
                c.predicted_frame_macs,
                c.rfbme_ops_bound,
                c.warp_interpolations_bound,
                c.target_activation_bytes
            );
        }
        if self.diagnostics.is_empty() {
            let _ = writeln!(out, "  no diagnostics");
        }
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn code_strings_match_severity_prefix() {
        for (code, sev) in [
            (DiagCode::ShapeChannelMismatch, 'E'),
            (DiagCode::ShapeOpaqueLayer, 'W'),
            (DiagCode::WarpNonSpatialPrefix, 'E'),
            (DiagCode::RangeFixedOverflow, 'E'),
            (DiagCode::RangeFloatExceedsFixed, 'W'),
            (DiagCode::SparseNoSuffix, 'W'),
            (DiagCode::CostModelOverflow, 'E'),
            (DiagCode::CostModelMismatch, 'W'),
            (DiagCode::CostModelIncomplete, 'W'),
            (DiagCode::CostZeroPrefix, 'W'),
            (DiagCode::CapacityBelowKeyFrame, 'W'),
        ] {
            assert!(code.as_str().starts_with(sev), "{code}");
        }
    }

    #[test]
    fn first_error_skips_warnings() {
        let mut r = AnalysisReport::default();
        r.push(
            DiagCode::WarpAsymmetricWindow,
            Severity::Warning,
            None,
            "w".into(),
        );
        assert!(!r.has_errors());
        r.push(
            DiagCode::ShapeCollapsed,
            Severity::Error,
            Some(3),
            "e".into(),
        );
        let first = r.first_error().unwrap();
        assert_eq!(first.code, DiagCode::ShapeCollapsed);
        assert_eq!(first.layer, Some(3));
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.warnings().count(), 1);
    }
}
