//! Pass 5: static cost & capacity model.
//!
//! Derives per-layer MACs / bytes-moved / scratch-bytes purely from the
//! [`LayerInfo`] IR and the shape pass — a second, independent
//! implementation of the MAC accounting the engine's `ExecStats` counters
//! use at runtime. `analyze` cross-checks the two (`W-COST-001`), so a
//! drift between the static model and the executor is caught at
//! construction, not in a capacity review.
//!
//! The aggregate splits at the AMC target exactly like the engine does:
//! a key frame runs every layer (`key_frame_macs`); a predicted frame
//! skips the prefix (`predicted_frame_macs = key − prefix`) and instead
//! pays motion estimation and warping, both bounded statically
//! ([`Rfbme::ops_bound`] and one interpolation per target activation
//! value). [`CostSummary::capacity_plan`] turns those numbers plus an SLO
//! into engine limits — see `EngineLimits::builder().derive_from_slo` in
//! `eva2-core`.

use eva2_cnn::describe::{LayerInfo, LayerKind};
use eva2_cnn::receptive::ReceptiveField;
use eva2_motion::{RfGeometry, Rfbme, SearchParams};
use eva2_tensor::Shape3;

use crate::report::{AnalysisReport, DiagCode, Diagnostic, Severity};
use crate::AnalysisOptions;

/// Static cost of one layer on one forward pass, in exact counts (MACs)
/// and dense-f32 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCost {
    /// Multiply-accumulates — matches `Layer::macs` and therefore the
    /// engine's `ExecStats::macs_executed` accounting.
    pub macs: u64,
    /// Dense input activation read (f32).
    pub input_bytes: u64,
    /// Parameter bytes touched (weights + biases, f32).
    pub weight_bytes: u64,
    /// Dense output activation written (f32).
    pub output_bytes: u64,
    /// Peak working-set scratch: the im2col packing buffer for conv
    /// layers, zero elsewhere.
    pub scratch_bytes: u64,
}

/// The network-level static cost model, split at the AMC target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostSummary {
    /// One cost per layer, in layer order.
    pub per_layer: Vec<LayerCost>,
    /// MACs of the prefix `0..=target` — what AMC skips on predicted
    /// frames.
    pub prefix_macs: u64,
    /// MACs of the suffix `target+1..` — what predicted frames still pay.
    pub suffix_macs: u64,
    /// Exact MACs a key frame executes (`prefix + suffix`); must equal
    /// `ExecStats::macs_executed` after a key frame.
    pub key_frame_macs: u64,
    /// Exact MACs a predicted frame executes (= `suffix_macs`); must
    /// equal `ExecStats::macs_executed` after a predicted frame.
    pub predicted_frame_macs: u64,
    /// Sound upper bound on RFBME arithmetic ops per predicted frame
    /// ([`Rfbme::ops_bound`]).
    pub rfbme_ops_bound: u64,
    /// Upper bound on warp interpolations per predicted frame: one per
    /// target activation value.
    pub warp_interpolations_bound: u64,
    /// Total predicted-frame op bound: suffix MACs + RFBME + warp.
    pub predicted_ops_bound: u64,
    /// Dense size of the target activation (f32) — the tensor stored,
    /// warped, and RLE-encoded per session.
    pub target_activation_bytes: u64,
}

/// Engine limits derived from the cost model and a latency SLO — the
/// output of [`CostSummary::capacity_plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityPlan {
    /// MAC budget of one tick: `gflops/2 · slo`.
    pub budget_macs_per_tick: u64,
    /// Per-frame cost amortized over one key-frame gap:
    /// `(key + (gap−1)·predicted) / gap`.
    pub amortized_frame_macs: u64,
    /// Frames one tick can serve inside the SLO (≥ 1).
    pub max_frames_per_tick: usize,
    /// Of those, how many may be key frames (≥ 1).
    pub max_key_frames_per_tick: usize,
    /// Session-memory budget: one session per servable frame slot.
    pub max_total_bytes: usize,
    /// Capacity findings (`W-CAP-001` when the budget cannot even cover
    /// one key frame and the plan was clamped to 1).
    pub diagnostics: Vec<Diagnostic>,
}

impl CostSummary {
    /// Derives engine limits from this cost model and a deployment
    /// envelope: a per-tick latency SLO (`slo_ms`), sustained compute
    /// (`gflops`, counting 1 MAC = 2 flops), the policy's key-frame gap
    /// (`key_gap` frames per key frame; 1 = every frame is a key frame),
    /// and the per-session memory bound (`session_bytes`, see
    /// `session_memory_bound` in `eva2-core`).
    ///
    /// Predicted frames are charged their full op *bound* (suffix MACs +
    /// RFBME + warp, one op ≈ one MAC), so the plan is conservative: a
    /// tick admitted by these limits fits the SLO even when motion-search
    /// pruning never fires.
    pub fn capacity_plan(
        &self,
        slo_ms: f64,
        gflops: f64,
        key_gap: usize,
        session_bytes: usize,
    ) -> CapacityPlan {
        let macs_per_sec = gflops.max(0.0) * 1e9 / 2.0;
        let budget = (macs_per_sec * slo_ms.max(0.0) / 1e3) as u64;
        let gap = key_gap.max(1) as u64;
        let key = self.key_frame_macs.max(1);
        let predicted = self.predicted_ops_bound;
        let amortized = (key.saturating_add((gap - 1).saturating_mul(predicted)) / gap).max(1);
        let mut diagnostics = Vec::new();
        if budget < key {
            diagnostics.push(Diagnostic {
                code: DiagCode::CapacityBelowKeyFrame,
                severity: Severity::Warning,
                layer: None,
                message: format!(
                    "tick budget {budget} MACs ({gflops} GFLOP/s over {slo_ms} ms) is below \
                     one key frame ({key} MACs) — limits clamped to one frame per tick, \
                     the SLO cannot be met"
                ),
            });
        }
        let max_frames = ((budget / amortized) as usize).max(1);
        let max_keys = ((budget / key) as usize).clamp(1, max_frames);
        CapacityPlan {
            budget_macs_per_tick: budget,
            amortized_frame_macs: amortized,
            max_frames_per_tick: max_frames,
            max_key_frames_per_tick: max_keys,
            max_total_bytes: max_frames.saturating_mul(session_bytes),
            diagnostics,
        }
    }
}

/// Cost of one layer given its input and output shapes, or `None` on
/// arithmetic overflow.
fn layer_cost(info: &LayerInfo, input: Shape3, output: Shape3) -> Option<LayerCost> {
    let f32b = 4u64;
    let in_len = input.len() as u64;
    let out_len = output.len() as u64;
    let (macs, weight_bytes, scratch_bytes) = match info.kind {
        LayerKind::Conv { in_channels, .. } => {
            let g = info.geometry?;
            let k2 = (g.kernel as u64).checked_mul(g.kernel as u64)?;
            let patch = (in_channels as u64).checked_mul(k2)?;
            // One dot product of length in_c·k² per output value — the
            // §IV-A formula `Layer::macs` implements.
            let macs = out_len.checked_mul(patch)?;
            let weights = patch
                .checked_mul(info.channels.len() as u64)?
                .checked_add(info.channels.len() as u64)?
                .checked_mul(f32b)?;
            // im2col packs one patch column per output pixel.
            let cols = (output.height as u64).checked_mul(output.width as u64)?;
            let scratch = patch.checked_mul(cols)?.checked_mul(f32b)?;
            (macs, weights, scratch)
        }
        LayerKind::FullyConnected {
            in_features,
            out_features,
        } => {
            let macs = (in_features as u64).checked_mul(out_features as u64)?;
            let weights = macs.checked_add(out_features as u64)?.checked_mul(f32b)?;
            (macs, weights, 0)
        }
        // Pool and ReLU move bytes but multiply nothing, matching
        // `Layer::macs` — comparisons and clamps are not MACs.
        LayerKind::Pool | LayerKind::Relu => (0, 0, 0),
        LayerKind::Opaque => return None,
    };
    Some(LayerCost {
        macs,
        input_bytes: in_len.checked_mul(f32b)?,
        weight_bytes,
        output_bytes: out_len.checked_mul(f32b)?,
        scratch_bytes,
    })
}

/// Pass 5 driver: fills `AnalysisReport::cost` and the per-layer MAC
/// column, or reports why the model could not be built (`W-COST-002`) /
/// overflowed (`E-COST-001`).
pub(crate) fn cost_pass(
    infos: &[LayerInfo],
    input: Shape3,
    shapes: &[Option<Shape3>],
    opts: &AnalysisOptions,
    report: &mut AnalysisReport,
) {
    let mut per_layer = Vec::with_capacity(infos.len());
    let mut cur = Some(input);
    for (i, info) in infos.iter().enumerate() {
        let out = shapes.get(i).copied().flatten();
        let cost = match (cur, out) {
            (Some(is), Some(os)) => {
                let c = layer_cost(info, is, os);
                if c.is_none() && info.kind != LayerKind::Opaque {
                    report.push(
                        DiagCode::CostModelOverflow,
                        Severity::Error,
                        Some(i),
                        format!("{}: per-layer cost overflows u64", info.name),
                    );
                    return;
                }
                c
            }
            _ => None,
        };
        report.layers[i].macs = cost.as_ref().map(|c| c.macs);
        per_layer.push(cost);
        cur = out;
    }

    let incomplete = |report: &mut AnalysisReport, why: String| {
        report.push(DiagCode::CostModelIncomplete, Severity::Warning, None, why);
    };
    if opts.target >= infos.len() {
        incomplete(
            report,
            format!(
                "cost model not built: target {} is out of range ({} layers)",
                opts.target,
                infos.len()
            ),
        );
        return;
    }
    let Some(per_layer) = per_layer.into_iter().collect::<Option<Vec<_>>>() else {
        incomplete(
            report,
            "cost model not built: an opaque layer or shape failure stopped \
             per-layer costing"
                .to_string(),
        );
        return;
    };

    // Prefix/suffix split at the target, exactly as the engine splits it.
    let sum = |costs: &[LayerCost]| costs.iter().try_fold(0u64, |a, c| a.checked_add(c.macs));
    let (Some(prefix_macs), Some(suffix_macs), Some(key_frame_macs)) = (
        sum(&per_layer[..=opts.target]),
        sum(&per_layer[opts.target + 1..]),
        sum(&per_layer),
    ) else {
        report.push(
            DiagCode::CostModelOverflow,
            Severity::Error,
            None,
            "aggregate MAC count overflows u64".to_string(),
        );
        return;
    };

    // Motion terms: the prefix receptive field gives the RFBME geometry;
    // the search window comes from the options — the same derivation the
    // engine's session construction performs.
    let mut rf = ReceptiveField::INPUT;
    for info in &infos[..=opts.target] {
        let Some(g) = info.geometry else {
            // E-WARP-001 already reported; without a receptive field there
            // is no motion-cost term to bound.
            incomplete(
                report,
                "cost model not built: non-spatial prefix has no motion geometry".to_string(),
            );
            return;
        };
        rf = rf.then(g);
    }
    let rfbme = Rfbme::new(
        RfGeometry {
            size: rf.size,
            stride: rf.stride,
            padding: rf.padding,
        },
        SearchParams {
            radius: opts.search_radius,
            step: opts.search_step.max(1),
        },
    );
    let rfbme_ops_bound = rfbme.ops_bound(input.height, input.width);
    // shape_pass succeeded through the whole net, so the target shape
    // exists; warp interpolates each target activation value exactly once.
    let target_len = shapes[opts.target].map_or(0, |s| s.len() as u64);

    if prefix_macs == 0 {
        report.push(
            DiagCode::CostZeroPrefix,
            Severity::Warning,
            Some(opts.target),
            format!(
                "prefix 0..={} executes 0 MACs — predicted frames save nothing \
                 over key frames",
                opts.target
            ),
        );
    }

    report.cost = Some(CostSummary {
        per_layer,
        prefix_macs,
        suffix_macs,
        key_frame_macs,
        predicted_frame_macs: suffix_macs,
        rfbme_ops_bound,
        warp_interpolations_bound: target_len,
        predicted_ops_bound: suffix_macs
            .saturating_add(rfbme_ops_bound)
            .saturating_add(target_len),
        target_activation_bytes: target_len * 4,
    });
}
