//! Pass-pipeline unit tests: every documented diagnostic code fires on a
//! deliberately broken network, and every zoo network analyzes clean.

use crate::{analyze, AnalysisOptions, DiagCode, Severity};
use eva2_cnn::layer::{Conv2d, FullyConnected, MaxPool2d, Relu};
use eva2_cnn::network::Network;
use eva2_cnn::zoo;
use eva2_tensor::Shape3;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(7)
}

/// conv(1→4) → relu → pool2 → fc: a small well-formed net on 16×16 input.
fn well_formed() -> Network {
    let mut r = rng();
    let mut net = Network::new("well-formed", Shape3::new(1, 16, 16));
    net.push(Box::new(Conv2d::new("conv1", 1, 4, 3, 1, 1, &mut r)))
        .push(Box::new(Relu::new("relu1")))
        .push(Box::new(MaxPool2d::new("pool1", 2, 2)))
        .push(Box::new(FullyConnected::new("fc1", 4 * 8 * 8, 10, &mut r)));
    net
}

fn codes(report: &crate::AnalysisReport) -> Vec<DiagCode> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

#[test]
fn well_formed_net_is_clean() {
    let report = analyze(&well_formed(), &AnalysisOptions::for_target(2));
    assert!(!report.has_errors(), "{}", report.render());
    assert_eq!(report.granularity, Some(2));
    // Shapes were pinned statically for every layer.
    assert_eq!(report.layers[0].shape, Some((4, 16, 16)));
    assert_eq!(report.layers[2].shape, Some((4, 8, 8)));
    assert_eq!(report.layers[3].shape, Some((10, 1, 1)));
    // Ranges were derived for every layer, and ReLU output is non-negative.
    let (lo, _hi) = report.layers[1].range.unwrap();
    assert!(lo >= 0.0);
}

#[test]
fn all_zoo_networks_pass_clean_at_both_targets() {
    for workload in zoo::Workload::ALL {
        let z = workload.build(3);
        for target in [z.early_target, z.late_target] {
            let report = analyze(&z.network, &AnalysisOptions::for_target(target));
            assert!(
                !report.has_errors(),
                "{} @ target {target}:\n{}",
                workload.name(),
                report.render()
            );
            // The statically computed granularity matches the runtime
            // receptive-field arithmetic.
            assert_eq!(
                report.granularity,
                Some(z.network.receptive_field(target).stride),
                "{} @ target {target}",
                workload.name()
            );
        }
    }
}

#[test]
fn fasterm_fixed_point_targets_are_error_free() {
    // The serving suites run tiny_fasterm sessions with `fixed_point:
    // true`; the construction gate in eva2-core must keep admitting them.
    // (Its late-target interval stays well inside Q8.8 — pin that.)
    for seed in 0..8 {
        let z = zoo::tiny_fasterm(seed);
        for target in [z.early_target, z.late_target] {
            let mut opts = AnalysisOptions::for_target(target);
            opts.fixed_point = true;
            let report = analyze(&z.network, &opts);
            assert!(
                !report.has_errors(),
                "fasterm seed {seed} @ target {target}:\n{}",
                report.render()
            );
        }
    }
}

#[test]
fn channel_mismatch_is_e_shape_001() {
    let mut r = rng();
    let mut net = Network::new("bad-channels", Shape3::new(1, 16, 16));
    net.push(Box::new(Conv2d::new("conv1", 1, 4, 3, 1, 1, &mut r)))
        // conv2 expects 8 input channels; conv1 produces 4.
        .push(Box::new(Conv2d::new("conv2", 8, 4, 3, 1, 1, &mut r)));
    let report = analyze(&net, &AnalysisOptions::for_target(0));
    let d = report.first_error().expect("must error");
    assert_eq!(d.code, DiagCode::ShapeChannelMismatch);
    assert_eq!(d.layer, Some(1));
}

#[test]
fn collapsed_output_is_e_shape_002() {
    let mut r = rng();
    let mut net = Network::new("collapsed", Shape3::new(1, 8, 8));
    net.push(Box::new(Conv2d::new("conv1", 1, 2, 3, 1, 0, &mut r)))
        // 6×6 into a 7×7 window: zero spatial extent.
        .push(Box::new(MaxPool2d::new("pool1", 7, 7)));
    let report = analyze(&net, &AnalysisOptions::for_target(1));
    let d = report.first_error().expect("must error");
    assert_eq!(d.code, DiagCode::ShapeCollapsed);
    assert_eq!(d.layer, Some(1));
}

#[test]
fn flatten_mismatch_is_e_shape_003() {
    let mut r = rng();
    let mut net = Network::new("bad-flatten", Shape3::new(1, 16, 16));
    net.push(Box::new(Conv2d::new("conv1", 1, 4, 3, 1, 1, &mut r)))
        .push(Box::new(Relu::new("relu1")))
        .push(Box::new(MaxPool2d::new("pool1", 2, 2)))
        // 4·8·8 = 256 features arrive; the layer expects 999.
        .push(Box::new(FullyConnected::new("fc1", 999, 10, &mut r)));
    let report = analyze(&net, &AnalysisOptions::for_target(2));
    let d = report.first_error().expect("must error");
    assert_eq!(d.code, DiagCode::ShapeFlattenMismatch);
    assert_eq!(d.layer, Some(3));
}

#[test]
fn fc_before_target_is_e_warp_001() {
    let mut r = rng();
    let mut net = Network::new("fc-in-prefix", Shape3::new(1, 16, 16));
    net.push(Box::new(Conv2d::new("conv1", 1, 4, 3, 1, 1, &mut r)))
        .push(Box::new(FullyConnected::new(
            "fc1",
            4 * 16 * 16,
            64,
            &mut r,
        )))
        .push(Box::new(Relu::new("relu1")));
    // Target *past* the FC layer: the prefix contains a non-spatial layer.
    let report = analyze(&net, &AnalysisOptions::for_target(2));
    assert!(
        codes(&report).contains(&DiagCode::WarpNonSpatialPrefix),
        "{}",
        report.render()
    );
    assert!(report.has_errors());
    assert_eq!(report.granularity, None);
}

#[test]
fn input_smaller_than_block_is_e_warp_002() {
    let mut r = rng();
    // Three stride-2 pools on a 6×6 input: cumulative stride 8 > 6.
    let mut net = Network::new("tiny-input", Shape3::new(1, 6, 6));
    net.push(Box::new(Conv2d::new("conv1", 1, 2, 1, 2, 0, &mut r)))
        .push(Box::new(MaxPool2d::new("pool1", 1, 2)))
        .push(Box::new(MaxPool2d::new("pool2", 1, 2)));
    let report = analyze(&net, &AnalysisOptions::for_target(2));
    assert!(
        codes(&report).contains(&DiagCode::WarpNoWholeTile),
        "{}",
        report.render()
    );
    assert!(report.has_errors());
}

#[test]
fn stride_misaligned_search_is_e_warp_003() {
    // fasterm late target has receptive-field stride 8; a step of 16
    // skips whole activation cells.
    let z = zoo::tiny_fasterm(0);
    let mut opts = AnalysisOptions::for_target(z.late_target);
    opts.search_step = 16;
    opts.search_radius = 16;
    let report = analyze(&z.network, &opts);
    let d = report.first_error().expect("must error");
    assert_eq!(d.code, DiagCode::WarpStepExceedsBlock);
}

#[test]
fn asymmetric_window_is_w_warp_004() {
    let z = zoo::tiny_fasterm(0);
    let mut opts = AnalysisOptions::for_target(z.late_target);
    opts.search_radius = 4;
    opts.search_step = 3; // 2·4 = 8 is not a multiple of 3
    let report = analyze(&z.network, &opts);
    assert!(!report.has_errors(), "{}", report.render());
    assert!(codes(&report).contains(&DiagCode::WarpAsymmetricWindow));
}

/// A net whose target activation provably escapes Q8.8: one 3×3 conv with
/// every weight at +100 over inputs up to 1.0 reaches 900.
fn overflowing_net() -> Network {
    let mut r = rng();
    let mut conv = Conv2d::new("conv1", 1, 2, 3, 1, 0, &mut r);
    for oc in 0..2 {
        for ky in 0..3 {
            for kx in 0..3 {
                conv.set_weight(oc, 0, ky, kx, 100.0);
            }
        }
    }
    let mut net = Network::new("overflowing", Shape3::new(1, 16, 16));
    net.push(Box::new(conv))
        .push(Box::new(Relu::new("relu1")))
        .push(Box::new(MaxPool2d::new("pool1", 2, 2)))
        .push(Box::new(FullyConnected::new("fc1", 2 * 7 * 7, 4, &mut r)));
    net
}

#[test]
fn q88_overflow_is_e_range_001_only_on_fixed_datapath() {
    let net = overflowing_net();
    let mut opts = AnalysisOptions::for_target(2);
    opts.fixed_point = true;
    let report = analyze(&net, &opts);
    let d = report.first_error().expect("must error");
    assert_eq!(d.code, DiagCode::RangeFixedOverflow);
    assert_eq!(d.layer, Some(2));

    // Same network on the f32 datapath: advisory only.
    opts.fixed_point = false;
    let report = analyze(&net, &opts);
    assert!(!report.has_errors(), "{}", report.render());
    assert!(codes(&report).contains(&DiagCode::RangeFloatExceedsFixed));
}

#[test]
fn near_overflow_is_w_range_002() {
    let mut r = rng();
    // Σw = 100 over [0, 1] inputs → interval top ≈ 100 ∈ (64, 128).
    let mut conv = Conv2d::new("conv1", 1, 1, 2, 1, 0, &mut r);
    for (ky, kx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
        conv.set_weight(0, 0, ky, kx, 25.0);
    }
    let mut net = Network::new("near-overflow", Shape3::new(1, 8, 8));
    net.push(Box::new(conv))
        .push(Box::new(Relu::new("relu1")))
        .push(Box::new(FullyConnected::new("fc1", 49, 4, &mut r)));
    let mut opts = AnalysisOptions::for_target(1);
    opts.fixed_point = true;
    let report = analyze(&net, &opts);
    assert!(!report.has_errors(), "{}", report.render());
    assert!(codes(&report).contains(&DiagCode::RangeFixedNearOverflow));
}

#[test]
fn sparsity_seam_warnings() {
    let mut r = rng();
    let mut net = Network::new("seams", Shape3::new(1, 8, 8));
    net.push(Box::new(Conv2d::new("conv1", 1, 2, 3, 1, 1, &mut r)))
        .push(Box::new(MaxPool2d::new("pool1", 2, 2)))
        .push(Box::new(Relu::new("relu1")))
        .push(Box::new(FullyConnected::new("fc1", 2 * 4 * 4, 4, &mut r)));

    // Target at pool1: walking back through the pool reaches conv1, not a
    // ReLU → W-SPARSE-001; and the next layer (relu1) cannot consume
    // sparse input → W-SPARSE-002.
    let report = analyze(&net, &AnalysisOptions::for_target(1));
    assert!(!report.has_errors(), "{}", report.render());
    let c = codes(&report);
    assert!(c.contains(&DiagCode::SparseProducerNotRelu));
    assert!(c.contains(&DiagCode::SparseConsumerNotSparse));

    // Target at the last layer: no suffix at all → W-SPARSE-003. (Also
    // E-WARP-001 fires, because an FC target is not warpable.)
    let report = analyze(&net, &AnalysisOptions::for_target(3));
    assert!(codes(&report).contains(&DiagCode::SparseNoSuffix));
}

#[test]
fn cost_model_matches_reference_accounting_for_zoo() {
    // The tentpole invariant: the cost pass rebuilds MAC accounting from
    // the IR alone and must agree with `Network::{total,prefix}_macs` —
    // the values the engine seeds `ExecStats::macs_executed` from — to
    // the MAC, for every zoo network at both serving targets.
    for workload in zoo::Workload::ALL {
        let z = workload.build(3);
        for target in [z.early_target, z.late_target] {
            let report = analyze(&z.network, &AnalysisOptions::for_target(target));
            let name = workload.name();
            let cost = report
                .cost
                .as_ref()
                .unwrap_or_else(|| panic!("{name} @ {target}: no cost model"));
            assert!(
                !codes(&report).contains(&DiagCode::CostModelMismatch),
                "{name} @ {target}:\n{}",
                report.render()
            );
            assert_eq!(
                cost.key_frame_macs,
                z.network.total_macs(),
                "{name} @ {target}"
            );
            assert_eq!(
                cost.prefix_macs,
                z.network.prefix_macs(target),
                "{name} @ {target}"
            );
            assert_eq!(
                cost.predicted_frame_macs,
                z.network.total_macs() - z.network.prefix_macs(target),
                "{name} @ {target}"
            );
            // Internal consistency of the summary itself.
            let layer_sum: u64 = cost.per_layer.iter().map(|c| c.macs).sum();
            assert_eq!(layer_sum, cost.key_frame_macs, "{name} @ {target}");
            assert_eq!(
                cost.predicted_ops_bound,
                cost.predicted_frame_macs + cost.rfbme_ops_bound + cost.warp_interpolations_bound,
                "{name} @ {target}"
            );
            assert!(cost.target_activation_bytes > 0, "{name} @ {target}");
        }
    }
}

#[test]
fn unbuildable_cost_model_is_w_cost_002() {
    // Out-of-range target: every other pass errors too, and the cost pass
    // declines to publish a partial model.
    let report = analyze(&well_formed(), &AnalysisOptions::for_target(99));
    assert!(report.cost.is_none());
    assert!(
        codes(&report).contains(&DiagCode::CostModelIncomplete),
        "{}",
        report.render()
    );
}

#[test]
fn capacity_plan_scales_and_warns_below_key_frame() {
    let report = analyze(&well_formed(), &AnalysisOptions::for_target(2));
    let cost = report.cost.clone().expect("cost model built");

    // A generous envelope plans multiple frames per tick, cleanly.
    let plan = cost.capacity_plan(33.3, 10.0, 16, 100_000);
    assert!(plan.diagnostics.is_empty(), "{:?}", plan.diagnostics);
    assert!(plan.max_frames_per_tick > 1);
    assert!(plan.max_key_frames_per_tick >= 1);
    assert!(plan.max_key_frames_per_tick <= plan.max_frames_per_tick);
    assert_eq!(plan.max_total_bytes, plan.max_frames_per_tick * 100_000);

    // Doubling compute doubles the tick budget.
    let twice = cost.capacity_plan(33.3, 20.0, 16, 100_000);
    assert_eq!(twice.budget_macs_per_tick, 2 * plan.budget_macs_per_tick);

    // A starvation envelope cannot cover even one key frame: the plan is
    // clamped to one frame per tick and says so.
    let tiny = cost.capacity_plan(0.001, 1e-6, 16, 100_000);
    assert_eq!(tiny.max_frames_per_tick, 1);
    assert_eq!(tiny.diagnostics.len(), 1);
    assert_eq!(tiny.diagnostics[0].code, DiagCode::CapacityBelowKeyFrame);
}

#[test]
fn severity_matches_code_prefix() {
    // Harvest diagnostics from several broken nets and check each code's
    // E-/W- prefix agrees with the severity it was emitted at.
    let mut all = Vec::new();
    for (net, opts) in [
        (overflowing_net(), {
            let mut o = AnalysisOptions::for_target(2);
            o.fixed_point = true;
            o
        }),
        (well_formed(), AnalysisOptions::for_target(2)),
    ] {
        all.extend(analyze(&net, &opts).diagnostics);
    }
    for d in all {
        let expect = match d.severity {
            Severity::Error => 'E',
            Severity::Warning => 'W',
            Severity::Info => 'I',
        };
        assert!(
            d.code.as_str().starts_with(expect),
            "{} emitted at {}",
            d.code,
            d.severity
        );
    }
}
