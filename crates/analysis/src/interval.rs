//! Interval arithmetic for the fixed-point range analysis.
//!
//! An [`Interval`] is an *admissible over-approximation* of every value a
//! layer's activation can take when the network input is drawn from a
//! declared range: the true activations always lie inside the interval, but
//! the interval may be wider than necessary. Admissibility is what makes the
//! E-RANGE/W-RANGE diagnostics trustworthy — "this interval fits Q8.8"
//! really means no input in range can saturate the datapath.
//!
//! Propagation works on the [`LayerInfo`](eva2_cnn::describe::LayerInfo) IR,
//! not on weights: a linear channel `y = b + Σᵢ wᵢ·xᵢ` with every `xᵢ` in
//! `[lo, hi]` is bounded by the channel's signed weight sums
//! (see [`ChannelStats`]). Arithmetic runs in `f64` and the result is
//! widened by a small slack so that `f32` summation-order noise in the real
//! forward pass can never escape the predicted bound.

use eva2_cnn::describe::{ChannelStats, LayerInfo, LayerKind};

/// A closed interval `[lo, hi]` of activation values, in `f64` so bound
/// arithmetic never loses to the `f32` forward pass it predicts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl Interval {
    /// The interval containing exactly `[lo, hi]`.
    pub fn new(lo: f64, hi: f64) -> Self {
        debug_assert!(lo <= hi, "interval [{lo}, {hi}] is empty");
        Interval { lo, hi }
    }

    /// The largest absolute value the interval contains.
    pub fn mag(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// The smallest interval containing both `self` and `other`.
    pub fn union(&self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The interval extended to contain zero — the value zero-padding
    /// injects at a layer's spatial border.
    pub fn with_zero(&self) -> Interval {
        Interval {
            lo: self.lo.min(0.0),
            hi: self.hi.max(0.0),
        }
    }

    /// Bound of one linear channel `b + Σᵢ wᵢ·xᵢ` with all `xᵢ ∈ self`.
    pub fn through_channel(&self, ch: &ChannelStats) -> Interval {
        let (pos, neg, b) = (ch.pos_sum as f64, ch.neg_sum as f64, ch.bias as f64);
        Interval {
            lo: b + pos * self.lo + neg * self.hi,
            hi: b + pos * self.hi + neg * self.lo,
        }
    }

    /// Widens both bounds by an absolute + relative slack.
    ///
    /// The analysis computes bounds in `f64`, but the network's forward
    /// pass sums in `f32` in an implementation-defined order (im2col GEMM
    /// vs naive loops); the slack absorbs that rounding noise so the
    /// proptest soundness contract ("every actual activation lies inside
    /// the predicted interval") holds for every execution path.
    pub fn slacked(&self) -> Interval {
        let pad = 1e-4 + 1e-5 * self.mag();
        Interval {
            lo: self.lo - pad,
            hi: self.hi + pad,
        }
    }
}

/// Propagates an input interval through one described layer.
///
/// Returns `None` for [`LayerKind::Opaque`] — the range analysis stops
/// rather than guessing (reported upstream as `W-SHAPE-004`).
pub fn propagate(info: &LayerInfo, input: Interval) -> Option<Interval> {
    match info.kind {
        LayerKind::Conv { .. } | LayerKind::FullyConnected { .. } => {
            // Zero-padding makes 0 a possible input of a padded conv window.
            let x = match info.geometry {
                Some(g) if g.padding > 0 => input.with_zero(),
                _ => input,
            };
            let out = info
                .channels
                .iter()
                .map(|ch| x.through_channel(ch))
                .reduce(|a, b| a.union(b))?;
            Some(out.slacked())
        }
        // max over a window of values each in `input` stays in `input`.
        LayerKind::Pool => Some(input),
        LayerKind::Relu => Some(Interval {
            lo: input.lo.max(0.0),
            hi: input.hi.max(0.0),
        }),
        LayerKind::Opaque => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva2_cnn::layer::LayerGeometry;

    fn conv_info(channels: Vec<ChannelStats>, padding: usize) -> LayerInfo {
        LayerInfo {
            name: "c".into(),
            kind: LayerKind::Conv {
                in_channels: 1,
                out_channels: channels.len(),
            },
            geometry: Some(LayerGeometry {
                kernel: 3,
                stride: 1,
                padding,
            }),
            channels,
        }
    }

    #[test]
    fn channel_bound_splits_signs() {
        // y = 0.5 + 2x₁ - 3x₂ with x ∈ [0, 1]: y ∈ [-2.5, 2.5].
        let ch = ChannelStats {
            pos_sum: 2.0,
            neg_sum: -3.0,
            max_abs: 3.0,
            bias: 0.5,
        };
        let out = Interval::new(0.0, 1.0).through_channel(&ch);
        assert_eq!(out.lo, -2.5);
        assert_eq!(out.hi, 2.5);
    }

    #[test]
    fn padding_widens_input_to_include_zero() {
        // With input strictly positive [2, 3] and one negative weight,
        // padding zeros make x = 0 reachable, so the bound must be the
        // padded one: y = -1·x, x ∈ [0, 3] → y ∈ [-3, 0].
        let ch = ChannelStats {
            pos_sum: 0.0,
            neg_sum: -1.0,
            max_abs: 1.0,
            bias: 0.0,
        };
        let padded = propagate(&conv_info(vec![ch], 1), Interval::new(2.0, 3.0)).unwrap();
        assert!(padded.lo <= -3.0 && padded.hi >= 0.0, "{padded:?}");
        let unpadded = propagate(&conv_info(vec![ch], 0), Interval::new(2.0, 3.0)).unwrap();
        assert!(unpadded.hi < -1.9, "{unpadded:?}");
    }

    #[test]
    fn relu_clamps_pool_passes_opaque_stops() {
        let relu = LayerInfo {
            name: "r".into(),
            kind: LayerKind::Relu,
            geometry: Some(LayerGeometry::IDENTITY),
            channels: Vec::new(),
        };
        let out = propagate(&relu, Interval::new(-2.0, 3.0)).unwrap();
        assert_eq!((out.lo, out.hi), (0.0, 3.0));

        let pool = LayerInfo {
            name: "p".into(),
            kind: LayerKind::Pool,
            geometry: Some(LayerGeometry {
                kernel: 2,
                stride: 2,
                padding: 0,
            }),
            channels: Vec::new(),
        };
        let out = propagate(&pool, Interval::new(-2.0, 3.0)).unwrap();
        assert_eq!((out.lo, out.hi), (-2.0, 3.0));

        let opaque = LayerInfo {
            name: "o".into(),
            kind: LayerKind::Opaque,
            geometry: None,
            channels: Vec::new(),
        };
        assert!(propagate(&opaque, Interval::new(0.0, 1.0)).is_none());
    }
}
