//! Build-time model/pipeline verification for the EVA² serving stack.
//!
//! A production engine should refuse a broken (network, AMC config) pair at
//! *construction*, with a diagnostic naming the offending layer — not panic
//! on the first frame, and never saturate the Q8.8 datapath silently. This
//! crate is that verifier: it extracts a small IR from a
//! [`Network`](eva2_cnn::Network) through the
//! [`Layer::describe`](eva2_cnn::layer::Layer::describe) seam and runs a
//! four-pass pipeline over it, producing structured [`Diagnostic`]s in an
//! [`AnalysisReport`]:
//!
//! 1. **Shape inference** — propagates [`Shape3`](eva2_tensor::Shape3)
//!    through every layer, statically pinning the engine's input geometry
//!    and catching channel/flatten mismatches that would otherwise panic at
//!    the first key frame.
//! 2. **Warp legality** — proves the prefix before the AMC target is
//!    translation-equivariant modulo its cumulative stride (spatial layers
//!    only, no FC), computes the motion granularity from
//!    [`ReceptiveField`](eva2_cnn::receptive::ReceptiveField) arithmetic,
//!    and cross-checks it against the RFBME block size and search window.
//! 3. **Fixed-point range analysis** — interval arithmetic over weight
//!    statistics and a declared input range (see [`interval`]), flagging
//!    layers whose activations can escape — or come within 2× of — the
//!    Q8.8 representable range.
//! 4. **Sparsity flow** — verifies the sparse-suffix seam: the target
//!    activation should be ReLU-derived (sparse, non-negative) and the
//!    first suffix layer should have a sparse-aware path (conv or FC).
//! 5. **Static cost model** (see [`cost`]) — per-layer MACs and bytes
//!    moved, aggregated into exact key-frame and predicted-frame cost
//!    split at the AMC target, with static bounds for the RFBME and warp
//!    work predicted frames pay instead of the prefix. The model is an
//!    independent reimplementation of the engine's MAC accounting and is
//!    cross-checked against it here (`W-COST-001`), and
//!    [`CostSummary::capacity_plan`] turns it into SLO-driven engine
//!    limits.
//!
//! `eva2-core` consults this pipeline at every `Engine`/`AmcExecutor`/
//! session construction and denies error-severity findings with
//! `AmcError::AnalysisRejected` (escape hatch:
//! `AmcConfig::builder().allow_unverified()`).
//!
//! # Diagnostic code reference
//!
//! | Code | Meaning | Suggested fix |
//! |------|---------|---------------|
//! | `E-SHAPE-001` | A conv layer's `in_channels` does not match the channel count produced by the previous layer. | Fix the layer stack: the producing layer's output channels must equal the consumer's `in_channels`. |
//! | `E-SHAPE-002` | A layer's spatial output collapses to zero extent (kernel larger than its padded input). | Shrink the kernel, add padding, or feed a larger input. |
//! | `E-SHAPE-003` | A fully-connected layer's `in_features` does not match the flattened length of its input. | Rebuild the FC layer with `in_features == channels·height·width` of the preceding activation. |
//! | `W-SHAPE-004` | A layer did not describe itself (`LayerKind::Opaque`); shape and range propagation stop there. | Implement `Layer::describe` for the custom layer type. |
//! | `E-WARP-001` | A non-spatial layer (e.g. fully-connected) sits at or before the AMC target, so the prefix is not translation-equivariant and warping its activation is meaningless. | Move the target before the first non-spatial layer (the paper keeps FC layers in the suffix, §II-C5). |
//! | `E-WARP-002` | The input image is smaller than one RFBME block (receptive-field stride), so motion estimation has no whole tile to match. | Pick an earlier target (smaller cumulative stride) or serve larger frames. |
//! | `E-WARP-003` | The RFBME search step exceeds the block size: consecutive candidate offsets skip entire activation cells, so block matches cannot align with the motion granularity. | Reduce `SearchParams::step` to at most the receptive-field stride. |
//! | `W-WARP-004` | `2·radius` is not a multiple of `step`: the scanned window is asymmetric, so one motion direction is searched farther than the other. | Pick `radius`/`step` with `2·radius % step == 0`. |
//! | `E-RANGE-001` | The activation interval at the target layer exceeds Q8.8's representable range while the fixed-point datapath is enabled — the stored/warped activation *will* saturate for some in-range input. | Scale down weights (or retrain), choose an earlier target, or disable `fixed_point`. |
//! | `W-RANGE-002` | The target-layer interval fits Q8.8 but with less than 2× headroom. | Consider weight scaling before enabling deeper fixed-point paths. |
//! | `W-RANGE-003` | A layer's activation interval exceeds the Q8.8 range (datapath currently f32, so this is advisory) — enabling `fixed_point`, or the ROADMAP's quantized fast path, would saturate here. | Requantize/rescale that layer before moving it onto an integer datapath. |
//! | `W-SPARSE-001` | The target activation is not ReLU-derived: it can be dense and signed, so the RLE store's near-zero suppression clips real information. | Place the target on (or after) a ReLU/pool-of-ReLU boundary. |
//! | `W-SPARSE-002` | The first suffix layer is not conv/FC, so it has no sparse-aware path and the warped activation is densified before use. | Reorder the suffix or accept the densify cost. |
//! | `W-SPARSE-003` | The target is the network's last layer: there is no suffix to run on predicted frames. | Choose an earlier target. |
//! | `E-COST-001` | A per-layer or aggregate cost overflows `u64` — the network geometry is absurd and no capacity statement can be made. | Check the layer dimensions; this never fires for a realizable network. |
//! | `W-COST-001` | The static cost model disagrees with the engine's reference MAC accounting (`Network::total_macs`/`prefix_macs`) — the two implementations have drifted. | File a bug: capacity plans and `ExecStats` cross-checks are unreliable until the models agree. |
//! | `W-COST-002` | The cost model could not be built (opaque layer, shape failure, or out-of-range/non-spatial target); `AnalysisReport::cost` is `None`. | Fix the upstream diagnostic (shape/warp) that stopped costing. |
//! | `W-COST-003` | The prefix up to the AMC target executes zero MACs, so predicted frames save nothing over key frames. | Move the target after at least one conv layer. |
//! | `W-CAP-001` | The SLO tick budget is below the cost of a single key frame; the derived limits were clamped to one frame per tick. | Raise the SLO, provision more compute, or serve a smaller network. |
//!
//! # Example
//!
//! ```
//! use eva2_analysis::{analyze, AnalysisOptions};
//! use eva2_cnn::zoo;
//!
//! let z = zoo::tiny_fasterm(0);
//! let report = analyze(&z.network, &AnalysisOptions::for_target(z.late_target));
//! assert!(!report.has_errors(), "{}", report.render());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost;
pub mod interval;
pub mod report;

pub use cost::{CapacityPlan, CostSummary, LayerCost};
pub use interval::Interval;
pub use report::{AnalysisReport, DiagCode, Diagnostic, LayerSummary, Severity};

use eva2_cnn::describe::{LayerInfo, LayerKind};
use eva2_cnn::network::Network;
use eva2_cnn::receptive::ReceptiveField;
use eva2_tensor::fixed::Fixed;
use eva2_tensor::Shape3;

/// What the passes need to know about the AMC configuration under which the
/// network will serve.
///
/// This mirrors the analysis-relevant subset of `eva2_core`'s `AmcConfig`
/// with the target already resolved to a layer index — plain numbers, so
/// the analysis crate stays below `eva2-core` in the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisOptions {
    /// Resolved AMC target layer index (last prefix layer).
    pub target: usize,
    /// RFBME search radius in pixels (`SearchParams::radius`).
    pub search_radius: usize,
    /// RFBME search stride in pixels (`SearchParams::step`).
    pub search_step: usize,
    /// Whether the bit-accurate Q8.8 warp datapath is enabled.
    pub fixed_point: bool,
    /// Declared input value range. Frames decoded through
    /// `GrayImage::to_tensor` lie in `[0, 1]`.
    pub input_range: (f64, f64),
}

impl AnalysisOptions {
    /// Options for `target` with the serving defaults: search radius 8,
    /// step 1, f32 datapath, inputs in `[0, 1]`.
    pub fn for_target(target: usize) -> Self {
        AnalysisOptions {
            target,
            search_radius: 8,
            search_step: 1,
            fixed_point: false,
            input_range: (0.0, 1.0),
        }
    }
}

/// Runs the full pass pipeline over `net` under `opts`.
///
/// Never panics on a malformed network — malformation is exactly what the
/// diagnostics report.
pub fn analyze(net: &Network, opts: &AnalysisOptions) -> AnalysisReport {
    let infos = net.describe();
    let mut report = AnalysisReport {
        network: net.name().to_string(),
        layers: infos
            .iter()
            .map(|l| LayerSummary {
                name: l.name.clone(),
                kind: l.kind.label(),
                shape: None,
                range: None,
                macs: None,
            })
            .collect(),
        ..AnalysisReport::default()
    };
    let shapes = shape_pass(&infos, net.input_shape(), &mut report);
    warp_pass(&infos, net.input_shape(), opts, &mut report);
    range_pass(&infos, opts, &mut report);
    sparsity_pass(&infos, opts, &mut report);
    cost::cost_pass(&infos, net.input_shape(), &shapes, opts, &mut report);
    // The cost pass rebuilt the MAC accounting from the IR alone;
    // `Network::{total,prefix}_macs` is the reference the engine's
    // `ExecStats` counters are seeded from. Any disagreement means one of
    // the two models is wrong — surface it at construction.
    if let Some(cost) = &report.cost {
        let (reference_total, reference_prefix) = (net.total_macs(), net.prefix_macs(opts.target));
        if cost.key_frame_macs != reference_total || cost.prefix_macs != reference_prefix {
            report.push(
                DiagCode::CostModelMismatch,
                Severity::Warning,
                None,
                format!(
                    "static cost model (key {} / prefix {} MACs) disagrees with the \
                     engine's reference accounting (key {reference_total} / prefix \
                     {reference_prefix} MACs)",
                    cost.key_frame_macs, cost.prefix_macs
                ),
            );
        }
    }
    report
}

/// Pass 1: shape inference. Returns the inferred output shape per layer
/// (`None` from the first failure on).
fn shape_pass(
    infos: &[LayerInfo],
    input: Shape3,
    report: &mut AnalysisReport,
) -> Vec<Option<Shape3>> {
    let mut shapes = Vec::with_capacity(infos.len());
    let mut cur = Some(input);
    for (i, info) in infos.iter().enumerate() {
        let next = cur.and_then(|s| infer_shape(info, s, i, report));
        if let Some(s) = next {
            report.layers[i].shape = Some((s.channels, s.height, s.width));
        }
        shapes.push(next);
        cur = next;
    }
    shapes
}

/// Output shape of one described layer, or `None` with a diagnostic.
fn infer_shape(
    info: &LayerInfo,
    input: Shape3,
    i: usize,
    report: &mut AnalysisReport,
) -> Option<Shape3> {
    let name = &info.name;
    match info.kind {
        LayerKind::Conv {
            in_channels,
            out_channels,
        } => {
            if input.channels != in_channels {
                report.push(
                    DiagCode::ShapeChannelMismatch,
                    Severity::Error,
                    Some(i),
                    format!(
                        "{name}: expects {in_channels} input channels but receives {}",
                        input.channels
                    ),
                );
                return None;
            }
            let g = info.geometry?;
            let (h, w) = (g.output_len(input.height), g.output_len(input.width));
            if h == 0 || w == 0 {
                report.push(
                    DiagCode::ShapeCollapsed,
                    Severity::Error,
                    Some(i),
                    format!(
                        "{name}: {k}x{k} kernel (stride {s}, pad {p}) collapses a \
                         {ih}x{iw} input to zero spatial extent",
                        k = g.kernel,
                        s = g.stride,
                        p = g.padding,
                        ih = input.height,
                        iw = input.width
                    ),
                );
                return None;
            }
            Some(Shape3::new(out_channels, h, w))
        }
        LayerKind::Pool => {
            let g = info.geometry?;
            let (h, w) = (g.output_len(input.height), g.output_len(input.width));
            if h == 0 || w == 0 {
                report.push(
                    DiagCode::ShapeCollapsed,
                    Severity::Error,
                    Some(i),
                    format!(
                        "{name}: {k}x{k} pooling window exceeds its {ih}x{iw} input",
                        k = g.kernel,
                        ih = input.height,
                        iw = input.width
                    ),
                );
                return None;
            }
            Some(Shape3::new(input.channels, h, w))
        }
        LayerKind::Relu => Some(input),
        LayerKind::FullyConnected {
            in_features,
            out_features,
        } => {
            if input.len() != in_features {
                report.push(
                    DiagCode::ShapeFlattenMismatch,
                    Severity::Error,
                    Some(i),
                    format!(
                        "{name}: expects {in_features} flattened inputs but receives \
                         {}x{}x{} = {}",
                        input.channels,
                        input.height,
                        input.width,
                        input.len()
                    ),
                );
                return None;
            }
            Some(Shape3::new(out_features, 1, 1))
        }
        LayerKind::Opaque => {
            report.push(
                DiagCode::ShapeOpaqueLayer,
                Severity::Warning,
                Some(i),
                format!("{name}: layer is not described; analysis stops here"),
            );
            None
        }
    }
}

/// Pass 2: warp/target legality. The prefix `0..=target` must be spatial
/// (translation-equivariant modulo its cumulative stride); the motion
/// granularity it induces must be compatible with the RFBME block size and
/// search window.
fn warp_pass(
    infos: &[LayerInfo],
    input: Shape3,
    opts: &AnalysisOptions,
    report: &mut AnalysisReport,
) {
    if opts.target >= infos.len() {
        report.push(
            DiagCode::WarpNonSpatialPrefix,
            Severity::Error,
            None,
            format!(
                "target layer {} is out of range (network has {} layers)",
                opts.target,
                infos.len()
            ),
        );
        return;
    }
    let mut rf = ReceptiveField::INPUT;
    for (i, info) in infos.iter().enumerate().take(opts.target + 1) {
        match info.geometry {
            Some(g) => rf = rf.then(g),
            None => {
                report.push(
                    DiagCode::WarpNonSpatialPrefix,
                    Severity::Error,
                    Some(i),
                    format!(
                        "{}: non-spatial layer inside the AMC prefix — the prefix is \
                         not translation-equivariant, so warping the target \
                         activation is meaningless",
                        info.name
                    ),
                );
                return;
            }
        }
    }
    // The prefix is conv/pool/ReLU only, hence translation-equivariant for
    // displacements that are multiples of the cumulative stride: that
    // stride is the motion granularity RFBME works at.
    report.granularity = Some(rf.stride);
    if input.height < rf.stride || input.width < rf.stride {
        report.push(
            DiagCode::WarpNoWholeTile,
            Severity::Error,
            Some(opts.target),
            format!(
                "RFBME block size {} exceeds the {}x{} input: no whole tile to match",
                rf.stride, input.height, input.width
            ),
        );
    }
    if opts.search_step > rf.stride {
        report.push(
            DiagCode::WarpStepExceedsBlock,
            Severity::Error,
            Some(opts.target),
            format!(
                "search step {} exceeds the RFBME block size {} — candidate offsets \
                 skip whole activation cells and cannot align with the motion \
                 granularity",
                opts.search_step, rf.stride
            ),
        );
    }
    if opts.search_step > 0 && !(2 * opts.search_radius).is_multiple_of(opts.search_step) {
        report.push(
            DiagCode::WarpAsymmetricWindow,
            Severity::Warning,
            None,
            format!(
                "search window is asymmetric: 2·radius ({}) is not a multiple of \
                 step {}",
                2 * opts.search_radius,
                opts.search_step
            ),
        );
    }
}

/// Pass 3: fixed-point range analysis over the declared input range.
///
/// The Q8.8 datapath stores (and warps) only the *target* activation, so
/// exceeding the representable range there is an error when `fixed_point`
/// is enabled; everywhere else — and on the f32 datapath — the same finding
/// is advisory (`W-RANGE-003`), which is exactly the groundwork the
/// quantized-fast-path ROADMAP item needs.
fn range_pass(infos: &[LayerInfo], opts: &AnalysisOptions, report: &mut AnalysisReport) {
    let fmax = Fixed::MAX.to_f32() as f64; // ≈ 127.996
    let mut cur = Interval::new(opts.input_range.0, opts.input_range.1);
    for (i, info) in infos.iter().enumerate() {
        let Some(next) = interval::propagate(info, cur) else {
            // Opaque layer: already reported by the shape pass; stop.
            return;
        };
        report.layers[i].range = Some((next.lo, next.hi));
        let mag = next.mag();
        let at_fixed_target = opts.fixed_point && i == opts.target;
        if mag > fmax {
            if at_fixed_target {
                report.push(
                    DiagCode::RangeFixedOverflow,
                    Severity::Error,
                    Some(i),
                    format!(
                        "{}: target activation interval [{:.3}, {:.3}] exceeds the \
                         Q8.8 representable range ±{fmax:.3} — the fixed-point store \
                         will saturate",
                        info.name, next.lo, next.hi
                    ),
                );
            } else {
                report.push(
                    DiagCode::RangeFloatExceedsFixed,
                    Severity::Warning,
                    Some(i),
                    format!(
                        "{}: activation interval [{:.3}, {:.3}] would not fit Q8.8 \
                         (±{fmax:.3}); a fixed-point datapath through this layer \
                         would saturate",
                        info.name, next.lo, next.hi
                    ),
                );
            }
        } else if mag > fmax / 2.0 && at_fixed_target {
            report.push(
                DiagCode::RangeFixedNearOverflow,
                Severity::Warning,
                Some(i),
                format!(
                    "{}: target activation interval [{:.3}, {:.3}] has less than 2x \
                     headroom to the Q8.8 range ±{fmax:.3}",
                    info.name, next.lo, next.hi
                ),
            );
        }
        cur = next;
    }
}

/// Pass 4: sparsity flow across the prefix/suffix seam.
///
/// The RLE activation store thresholds near-zero values, which is lossless
/// in spirit only when the stored activation is ReLU-derived (non-negative,
/// mostly zero); and skip-zero execution only pays off when the first
/// suffix layer can consume sparse input (conv or FC).
fn sparsity_pass(infos: &[LayerInfo], opts: &AnalysisOptions, report: &mut AnalysisReport) {
    if opts.target >= infos.len() {
        return; // already an error in the warp pass
    }
    // Producer: walk back from the target through pooling layers (max of
    // non-negative values stays non-negative and sparse) to the layer that
    // actually produced the values.
    let mut p = opts.target;
    while p > 0 && infos[p].kind == LayerKind::Pool {
        p -= 1;
    }
    if infos[p].kind != LayerKind::Relu {
        report.push(
            DiagCode::SparseProducerNotRelu,
            Severity::Warning,
            Some(opts.target),
            format!(
                "{}: target activation is produced by {} ({}), not a ReLU — it can \
                 be dense and signed, so the sparse store's near-zero suppression \
                 clips information",
                infos[opts.target].name,
                infos[p].name,
                infos[p].kind.label()
            ),
        );
    }
    // Consumer: the first suffix layer should have a sparse-aware path.
    match infos.get(opts.target + 1) {
        None => {
            report.push(
                DiagCode::SparseNoSuffix,
                Severity::Warning,
                Some(opts.target),
                format!(
                    "{}: target is the last layer — there is no suffix to run on \
                     predicted frames",
                    infos[opts.target].name
                ),
            );
        }
        Some(next) => {
            if !matches!(
                next.kind,
                LayerKind::Conv { .. } | LayerKind::FullyConnected { .. }
            ) {
                report.push(
                    DiagCode::SparseConsumerNotSparse,
                    Severity::Warning,
                    Some(opts.target + 1),
                    format!(
                        "{}: first suffix layer is {} — no sparse-aware path, the \
                         warped activation will be densified before use",
                        next.name,
                        next.kind.label()
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests;
