//! Soundness of the fixed-point range analysis: the predicted per-layer
//! intervals are *admissible* — for random small networks and random inputs
//! drawn from the declared range, every actual activation lies inside the
//! predicted interval. The analysis may over-approximate, but it must never
//! under-approximate.

use eva2_analysis::{analyze, AnalysisOptions};
use eva2_cnn::layer::{Conv2d, FullyConnected, MaxPool2d, Relu};
use eva2_cnn::network::Network;
use eva2_cnn::zoo;
use eva2_tensor::{Shape3, Tensor3};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Builds a random conv/relu/pool stack (optionally ending in FC) on a
/// small input, with weights rescaled by `weight_scale` to stress the
/// interval bounds across several orders of magnitude.
fn random_net(seed: u64, arch: usize, weight_scale: f32) -> Network {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    let input = Shape3::new(1, 8, 8);
    let mut net = Network::new("prop", input);
    match arch % 5 {
        0 => {
            // conv(pad) → relu → pool
            net.push(Box::new(Conv2d::new("c1", 1, 3, 3, 1, 1, &mut r)))
                .push(Box::new(Relu::new("r1")))
                .push(Box::new(MaxPool2d::new("p1", 2, 2)));
        }
        1 => {
            // strided conv → conv → relu
            net.push(Box::new(Conv2d::new("c1", 1, 2, 2, 2, 0, &mut r)))
                .push(Box::new(Conv2d::new("c2", 2, 3, 3, 1, 1, &mut r)))
                .push(Box::new(Relu::new("r1")));
        }
        2 => {
            // conv → relu → pool → fc
            net.push(Box::new(Conv2d::new("c1", 1, 2, 3, 1, 0, &mut r)))
                .push(Box::new(Relu::new("r1")))
                .push(Box::new(MaxPool2d::new("p1", 2, 2)))
                .push(Box::new(FullyConnected::new("fc1", 2 * 3 * 3, 5, &mut r)));
        }
        3 => {
            // deep: conv → relu → conv(pad) → relu → pool
            net.push(Box::new(Conv2d::new("c1", 1, 2, 3, 1, 1, &mut r)))
                .push(Box::new(Relu::new("r1")))
                .push(Box::new(Conv2d::new("c2", 2, 2, 3, 1, 1, &mut r)))
                .push(Box::new(Relu::new("r2")))
                .push(Box::new(MaxPool2d::new("p1", 2, 2)));
        }
        _ => {
            // 1×1 conv → fc → relu (non-spatial tail)
            net.push(Box::new(Conv2d::new("c1", 1, 4, 1, 1, 0, &mut r)))
                .push(Box::new(FullyConnected::new("fc1", 4 * 8 * 8, 6, &mut r)))
                .push(Box::new(Relu::new("r1")));
        }
    }
    if weight_scale != 1.0 {
        for layer in 0..net.len() {
            let mut snap = net.snapshot();
            for w in &mut snap[layer] {
                *w *= weight_scale;
            }
            net.restore(&snap);
        }
    }
    net
}

/// Asserts every layer's actual activation lies inside its predicted
/// interval for one (network, input) pair.
fn assert_admissible(net: &Network, input: &Tensor3, range: (f64, f64)) -> Result<(), String> {
    let mut opts = AnalysisOptions::for_target(0);
    opts.input_range = range;
    let report = analyze(net, &opts);
    let acts = net.forward_collect(input);
    // acts[0] is the input; acts[i + 1] is layer i's output.
    for (i, act) in acts.iter().skip(1).enumerate() {
        let (lo, hi) = report.layers[i]
            .range
            .ok_or_else(|| format!("no predicted range for layer {i}:\n{}", report.render()))?;
        let (amin, amax) = (act.min() as f64, act.max() as f64);
        if amin < lo || amax > hi {
            return Err(format!(
                "layer {i} ({}): actual [{amin}, {amax}] escapes predicted [{lo}, {hi}]\n{}",
                report.layers[i].name,
                report.render()
            ));
        }
    }
    Ok(())
}

fn random_input(seed: u64, shape: Shape3, range: (f64, f64)) -> Tensor3 {
    let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let (lo, hi) = (range.0 as f32, range.1 as f32);
    Tensor3::from_fn(shape, |_, _, _| r.gen_range(lo..hi))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random architectures × weight scales × input ranges: predicted
    /// intervals contain the actual activations.
    #[test]
    fn predicted_intervals_contain_actual_activations(
        seed in 0u64..500,
        arch in 0usize..5,
        scale_idx in 0usize..4,
        range_idx in 0usize..3,
    ) {
        let scale = [0.25f32, 1.0, 8.0, 64.0][scale_idx];
        let range = [(0.0f64, 1.0f64), (-1.0, 1.0), (-2.5, 0.5)][range_idx];
        let net = random_net(seed, arch, scale);
        let input = random_input(seed, net.input_shape(), range);
        if let Err(msg) = assert_admissible(&net, &input, range) {
            prop_assert!(false, "{msg}");
        }
    }
}

#[test]
fn zoo_networks_are_admissible_on_real_valued_frames() {
    // The declared serving range is [0, 1] (GrayImage::to_tensor divides by
    // 255); drive each zoo network with in-range inputs and check
    // containment at every layer.
    for workload in zoo::Workload::ALL {
        let z = workload.build(11);
        for seed in 0..4 {
            let input = random_input(seed, z.network.input_shape(), (0.0, 1.0));
            if let Err(msg) = assert_admissible(&z.network, &input, (0.0, 1.0)) {
                panic!("{}: {msg}", workload.name());
            }
        }
    }
}

#[test]
fn extreme_corner_inputs_stay_inside_intervals() {
    // All-lo / all-hi / alternating-corner inputs maximize |activation|
    // for sign-consistent weights — the tightest squeeze on the bound.
    for arch in 0..5 {
        let net = random_net(99, arch, 16.0);
        let shape = net.input_shape();
        let range = (-1.0, 1.0);
        for input in [
            Tensor3::from_fn(shape, |_, _, _| -1.0),
            Tensor3::from_fn(shape, |_, _, _| 1.0),
            Tensor3::from_fn(shape, |_, y, x| if (y + x) % 2 == 0 { -1.0 } else { 1.0 }),
        ] {
            if let Err(msg) = assert_admissible(&net, &input, range) {
                panic!("arch {arch}: {msg}");
            }
        }
    }
}
