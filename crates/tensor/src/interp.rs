//! Bilinear and nearest-neighbour sampling.
//!
//! Activation warping translates stored activations by *fractional* distances
//! whenever the pixel-space motion is not a multiple of the receptive-field
//! stride (§II-C3 of the paper). The warp engine resolves a fractional
//! coordinate by blending the 2×2 neighbourhood of activation values. The
//! paper chooses bilinear interpolation, noting it "improves vision accuracy
//! by 1–2% over nearest-neighbor matching" for FasterM; this module provides
//! both so the ablation can be reproduced.

use crate::Tensor3;

/// Interpolation method used when a warp lands between activation cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Interpolation {
    /// Blend the 2×2 neighbourhood weighted by the fractional offsets.
    /// This is the method EVA² implements in hardware (Fig 11).
    #[default]
    Bilinear,
    /// Snap to the nearest activation cell. Cheaper but less accurate.
    NearestNeighbor,
}

/// Samples channel `c` of `t` at the fractional spatial position `(y, x)`
/// using bilinear interpolation. Samples outside the tensor read as zero,
/// mirroring how the hardware's sparsity decoder lanes produce zero when a
/// neighbourhood index is invalid.
///
/// # Example
///
/// ```
/// use eva2_tensor::{Shape3, Tensor3};
/// use eva2_tensor::interp::sample_bilinear;
///
/// let t = Tensor3::from_fn(Shape3::new(1, 2, 2), |_, y, x| (y * 2 + x) as f32);
/// // Halfway between all four cells: (0 + 1 + 2 + 3) / 4.
/// assert_eq!(sample_bilinear(&t, 0, 0.5, 0.5), 1.5);
/// ```
pub fn sample_bilinear(t: &Tensor3, c: usize, y: f32, x: f32) -> f32 {
    let y0 = y.floor();
    let x0 = x.floor();
    let v = y - y0; // fractional row offset
    let u = x - x0; // fractional column offset
    let y0 = y0 as isize;
    let x0 = x0 as isize;

    let p00 = t.get_padded(c, y0, x0);
    let p01 = t.get_padded(c, y0, x0 + 1);
    let p10 = t.get_padded(c, y0 + 1, x0);
    let p11 = t.get_padded(c, y0 + 1, x0 + 1);

    // The weighted sum of §III-B:
    //   SDL_00·(1−u)(1−v) + SDL_01·(1−u)·v + SDL_10·u·(1−v) + SDL_11·u·v
    // with (u, v) the fractional bits of the motion vector. Here the roles of
    // u/v follow (column, row) order to match the figure.
    p00 * (1.0 - u) * (1.0 - v) + p01 * u * (1.0 - v) + p10 * (1.0 - u) * v + p11 * u * v
}

/// Samples channel `c` of `t` at the fractional position `(y, x)` by rounding
/// to the nearest cell. Out-of-bounds samples read as zero.
pub fn sample_nearest(t: &Tensor3, c: usize, y: f32, x: f32) -> f32 {
    t.get_padded(c, y.round() as isize, x.round() as isize)
}

/// Samples with the given [`Interpolation`] method.
pub fn sample(t: &Tensor3, method: Interpolation, c: usize, y: f32, x: f32) -> f32 {
    match method {
        Interpolation::Bilinear => sample_bilinear(t, c, y, x),
        Interpolation::NearestNeighbor => sample_nearest(t, c, y, x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape3;

    fn ramp() -> Tensor3 {
        Tensor3::from_fn(Shape3::new(2, 3, 3), |c, y, x| (c * 9 + y * 3 + x) as f32)
    }

    #[test]
    fn integer_coordinates_are_exact() {
        let t = ramp();
        for c in 0..2 {
            for y in 0..3 {
                for x in 0..3 {
                    let s = sample_bilinear(&t, c, y as f32, x as f32);
                    assert_eq!(s, t.get(c, y, x));
                }
            }
        }
    }

    #[test]
    fn midpoint_blends_equally() {
        let t = ramp();
        // Between (0,0),(0,1),(1,0),(1,1) of channel 0: (0+1+3+4)/4 = 2.
        assert_eq!(sample_bilinear(&t, 0, 0.5, 0.5), 2.0);
    }

    #[test]
    fn horizontal_fraction_only() {
        let t = ramp();
        // Between columns 0 and 1 on row 0: 0.25 of the way.
        let s = sample_bilinear(&t, 0, 0.0, 0.25);
        assert!((s - 0.25).abs() < 1e-6);
    }

    #[test]
    fn linear_function_is_reproduced_exactly() {
        // Bilinear interpolation reconstructs any function that is linear in
        // y and x (interior points only).
        let t = Tensor3::from_fn(Shape3::new(1, 4, 4), |_, y, x| {
            2.0 * y as f32 + 3.0 * x as f32 + 1.0
        });
        for &(y, x) in &[(0.5f32, 0.5f32), (1.25, 2.75), (2.0, 0.5)] {
            let s = sample_bilinear(&t, 0, y, x);
            assert!((s - (2.0 * y + 3.0 * x + 1.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn outside_reads_zero() {
        let t = ramp();
        assert_eq!(sample_bilinear(&t, 0, -5.0, -5.0), 0.0);
        assert_eq!(sample_nearest(&t, 0, 100.0, 0.0), 0.0);
    }

    #[test]
    fn nearest_rounds() {
        let t = ramp();
        assert_eq!(sample_nearest(&t, 0, 0.4, 0.6), t.get(0, 0, 1));
        assert_eq!(sample_nearest(&t, 0, 1.6, 1.4), t.get(0, 2, 1));
    }

    #[test]
    fn dispatch_matches_direct_calls() {
        let t = ramp();
        assert_eq!(
            sample(&t, Interpolation::Bilinear, 0, 0.5, 0.5),
            sample_bilinear(&t, 0, 0.5, 0.5)
        );
        assert_eq!(
            sample(&t, Interpolation::NearestNeighbor, 0, 0.5, 0.6),
            sample_nearest(&t, 0, 0.5, 0.6)
        );
    }
}
