//! Panel packing for the register-blocked GEMM micro-kernel.
//!
//! The micro-kernel ([`crate::microkernel`]) consumes its operands in a
//! fixed *kernel order*: an A panel interleaves [`MR`] rows so that the
//! `MR` values needed at depth step `p` are contiguous (`panel[p*MR + i]`),
//! and a B panel interleaves [`NR`] columns the same way
//! (`panel[p*NR + j]`). Packing happens once per operand element; the hot
//! loop then runs entirely over unit-stride, cache-resident scratch.
//!
//! Both packers take *strided* views (`element(r, c) = data[r*rs + c*cs]`),
//! which is how one driver serves all three transpose variants: `gemm_nt`
//! packs `Bᵀ` and `gemm_tn` packs `Aᵀ` by swapping the stride pair — no
//! transposed copy of the input is ever materialised.
//!
//! Ragged edges are zero-padded to full `MR`/`NR` panels, so the
//! micro-kernel never sees a partial tile; the driver simply stores only
//! the valid `mr × nr` region of each accumulator tile back to `C`.

/// Micro-kernel tile height: rows of `C` computed per kernel invocation.
pub const MR: usize = 4;

/// Micro-kernel tile width: columns of `C` computed per kernel invocation.
pub const NR: usize = 16;

/// A read-only strided matrix view: `element(r, c) = data[r*rs + c*cs]`.
///
/// `rs`/`cs` are the row and column strides in elements. A row-major
/// `R × C` buffer is `(rs, cs) = (C, 1)`; its transpose is `(1, C)`.
#[derive(Clone, Copy)]
pub(crate) struct MatRef<'a> {
    data: &'a [f32],
    rs: usize,
    cs: usize,
}

impl<'a> MatRef<'a> {
    pub(crate) fn new(data: &'a [f32], rs: usize, cs: usize) -> Self {
        Self { data, rs, cs }
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.rs + c * self.cs]
    }
}

/// Packs rows `0..m` of `a`'s depth block `kb..kb+kc` into MR-row panels.
///
/// Output layout: panel `ip` (rows `ip*MR..ip*MR+MR`) occupies
/// `buf[ip*MR*kc..][..MR*kc]`, stored as `kc` groups of `MR` values —
/// `buf[panel + p*MR + i] = a(ip*MR + i, kb + p)`, zero for rows `>= m`.
///
/// Every element of the claimed `buf` region is overwritten (valid data or
/// explicit zero padding), so the buffer never needs pre-clearing.
pub(crate) fn pack_a_block(a: MatRef<'_>, m: usize, kb: usize, kc: usize, buf: &mut [f32]) {
    let m_panels = m.div_ceil(MR);
    debug_assert!(buf.len() >= m_panels * MR * kc);
    for ip in 0..m_panels {
        let i0 = ip * MR;
        let mr = MR.min(m - i0);
        let panel = &mut buf[ip * MR * kc..(ip + 1) * MR * kc];
        for (p, group) in panel.chunks_exact_mut(MR).enumerate() {
            for (i, slot) in group.iter_mut().enumerate() {
                *slot = if i < mr { a.at(i0 + i, kb + p) } else { 0.0 };
            }
        }
    }
}

/// Packs columns `jc..jc+nc` of `b`'s depth block `kb..kb+kc` into NR-column
/// panels: `buf[jp*NR*kc + p*NR + j] = b(kb + p, jc + jp*NR + j)`, zero for
/// columns past `jc + nc`. Unit-stride rows (`cs == 1`) copy with
/// `copy_from_slice`.
///
/// Like [`pack_a_block`], the claimed region is fully overwritten.
pub(crate) fn pack_b_block(
    b: MatRef<'_>,
    kb: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    buf: &mut [f32],
) {
    let n_panels = nc.div_ceil(NR);
    debug_assert!(buf.len() >= n_panels * NR * kc);
    for jp in 0..n_panels {
        let j0 = jc + jp * NR;
        let nr = NR.min(jc + nc - j0);
        let panel = &mut buf[jp * NR * kc..(jp + 1) * NR * kc];
        for (p, group) in panel.chunks_exact_mut(NR).enumerate() {
            if b.cs == 1 {
                let row = (kb + p) * b.rs + j0;
                group[..nr].copy_from_slice(&b.data[row..row + nr]);
            } else {
                for (j, slot) in group.iter_mut().take(nr).enumerate() {
                    *slot = b.at(kb + p, j0 + j);
                }
            }
            group[nr..].fill(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_interleaves_and_pads() {
        // 3×5 row-major matrix, one depth block covering all of K.
        let a: Vec<f32> = (0..15).map(|v| v as f32).collect();
        let view = MatRef::new(&a, 5, 1);
        let mut buf = vec![f32::NAN; MR * 5];
        pack_a_block(view, 3, 0, 5, &mut buf);
        for p in 0..5 {
            for i in 0..MR {
                let want = if i < 3 { a[i * 5 + p] } else { 0.0 };
                assert_eq!(buf[p * MR + i], want, "p={p} i={i}");
            }
        }
    }

    #[test]
    fn pack_b_handles_strided_and_ragged() {
        // 4×6 row-major matrix viewed transposed (6×4 product operand).
        let b: Vec<f32> = (0..24).map(|v| (v as f32) * 0.5).collect();
        let bt = MatRef::new(&b, 1, 6); // element(p, j) = b[j*6 + p]
        let (k, n) = (6, 4);
        let mut buf = vec![f32::NAN; NR * k];
        pack_b_block(bt, 0, k, 0, n, &mut buf);
        for p in 0..k {
            for j in 0..NR {
                let want = if j < n { b[j * 6 + p] } else { 0.0 };
                assert_eq!(buf[p * NR + j], want, "p={p} j={j}");
            }
        }
    }

    #[test]
    fn pack_b_partial_depth_block() {
        let b: Vec<f32> = (0..40).map(|v| v as f32).collect(); // 5×8
        let view = MatRef::new(&b, 8, 1);
        let mut buf = vec![f32::NAN; NR * 2];
        pack_b_block(view, 3, 2, 0, 8, &mut buf);
        for p in 0..2 {
            for j in 0..8 {
                assert_eq!(buf[p * NR + j], b[(3 + p) * 8 + j]);
            }
            for j in 8..NR {
                assert_eq!(buf[p * NR + j], 0.0);
            }
        }
    }
}
