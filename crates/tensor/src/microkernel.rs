//! The register-blocked [`MR`]`×`[`NR`] GEMM micro-kernel.
//!
//! One invocation computes a full `MR × NR` tile of `A·B` for one depth
//! block, reading the kernel-ordered panels produced by [`crate::pack`] and
//! keeping all `MR·NR` partial sums in an accumulator array that lives in
//! registers for the whole depth loop. With `MR = 4`, `NR = 16` the tile is
//! 64 `f32` accumulators — 8 YMM registers under AVX2 (or 4 ZMM under
//! AVX-512), leaving room for the B row and the A broadcasts, which is why
//! the shape is FMA-friendly: every depth step issues `MR` independent
//! 16-wide multiply-adds with no loads from `C`.
//!
//! The kernel itself is branch-free over ragged edges: packing zero-pads
//! partial panels, so partial tiles cost a few wasted lanes instead of a
//! second code path. The caller stores only the valid `mr × nr` region of
//! the returned tile ([`add_tile`]).

// lint: hot-path

use crate::pack::{MR, NR};

/// Computes one full `MR × NR` tile of `A·B` over a `kc`-deep block.
///
/// `a_panel` is `kc` groups of `MR` values (`a_panel[p*MR + i]`), `b_panel`
/// `kc` groups of `NR` values (`b_panel[p*NR + j]`); both come from
/// [`crate::pack`]. Returns the tile row-major (`tile[i*NR + j]`), starting
/// from zero — the caller accumulates it into `C`.
#[inline]
pub(crate) fn microkernel(kc: usize, a_panel: &[f32], b_panel: &[f32]) -> [f32; MR * NR] {
    debug_assert!(a_panel.len() >= kc * MR && b_panel.len() >= kc * NR);
    let mut acc = [[0.0f32; NR]; MR];
    for (ap, bp) in a_panel[..kc * MR]
        .chunks_exact(MR)
        .zip(b_panel[..kc * NR].chunks_exact(NR))
    {
        for i in 0..MR {
            let ai = ap[i];
            let row = &mut acc[i];
            for j in 0..NR {
                row[j] += ai * bp[j];
            }
        }
    }
    let mut out = [0.0f32; MR * NR];
    for i in 0..MR {
        out[i * NR..(i + 1) * NR].copy_from_slice(&acc[i]);
    }
    out
}

/// Accumulates the valid `mr × nr` region of a micro-kernel tile into `C`.
///
/// `c` is row-major with leading dimension `ldc`; the tile lands at
/// `(i0, j0)`. Split out from the kernel so the store path (which touches
/// `C` once per depth *block*, not per depth step) stays simple.
#[inline]
pub(crate) fn add_tile(
    tile: &[f32; MR * NR],
    c: &mut [f32],
    ldc: usize,
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    for i in 0..mr {
        let dst = &mut c[(i0 + i) * ldc + j0..(i0 + i) * ldc + j0 + nr];
        let src = &tile[i * NR..i * NR + nr];
        for (d, s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }
}

/// [`microkernel`] over an *unpacked* `B`: reads each depth step's [`NR`]
/// values straight from a row-major matrix with leading dimension `ldb`
/// (`b[p*ldb..p*ldb+NR]`), skipping the B-panel repack entirely.
///
/// The packed layout exists to keep huge `B` blocks streaming-friendly;
/// at the batched-convolution shapes (`kc ≤ KC`, `N` a few hundred) the
/// tile's `B` slab is `kc` cache lines and stays L1-resident across the
/// whole `M` loop, so the strided loads cost nothing and the pack pass is
/// pure overhead. Accumulation order is identical to [`microkernel`] on
/// the packed bytes, so results are bit-identical.
///
/// # Panics
///
/// Panics when `b` is shorter than `(kc-1)·ldb + NR`.
#[inline]
pub(crate) fn microkernel_direct(
    kc: usize,
    a_panel: &[f32],
    b: &[f32],
    ldb: usize,
) -> [f32; MR * NR] {
    debug_assert!(a_panel.len() >= kc * MR);
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let ap = &a_panel[p * MR..(p + 1) * MR];
        let bp = &b[p * ldb..p * ldb + NR];
        for i in 0..MR {
            let ai = ap[i];
            let row = &mut acc[i];
            for j in 0..NR {
                row[j] += ai * bp[j];
            }
        }
    }
    let mut out = [0.0f32; MR * NR];
    for i in 0..MR {
        out[i * NR..(i + 1) * NR].copy_from_slice(&acc[i]);
    }
    out
}

/// Stores the valid `mr × nr` region of a micro-kernel tile as
/// `C = bias[row] + tile` — the single-depth-block epilogue of the batched
/// convolution path, which skips `C`'s zero/bias pre-init and the
/// read-modify-write of [`add_tile`] entirely.
///
/// Bit-identical to bias-init + [`add_tile`] when the whole depth fits one
/// block: both compute exactly `bias + tile` per element.
#[inline]
#[allow(clippy::too_many_arguments)] // add_tile's signature plus the bias row
pub(crate) fn store_tile_bias(
    tile: &[f32; MR * NR],
    c: &mut [f32],
    ldc: usize,
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    bias: &[f32],
) {
    for i in 0..mr {
        let b = bias[i0 + i];
        let dst = &mut c[(i0 + i) * ldc + j0..(i0 + i) * ldc + j0 + nr];
        let src = &tile[i * NR..i * NR + nr];
        for (d, s) in dst.iter_mut().zip(src) {
            *d = b + s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microkernel_matches_schoolbook_tile() {
        let kc = 9;
        let a: Vec<f32> = (0..kc * MR).map(|v| (v % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..kc * NR).map(|v| (v % 5) as f32 * 0.5 - 1.0).collect();
        let tile = microkernel(kc, &a, &b);
        for i in 0..MR {
            for j in 0..NR {
                let want: f32 = (0..kc).map(|p| a[p * MR + i] * b[p * NR + j]).sum();
                assert!(
                    (tile[i * NR + j] - want).abs() < 1e-4,
                    "({i},{j}): {} vs {want}",
                    tile[i * NR + j]
                );
            }
        }
    }

    #[test]
    fn add_tile_writes_only_valid_region() {
        let mut tile = [0.0f32; MR * NR];
        for (i, t) in tile.iter_mut().enumerate() {
            *t = i as f32;
        }
        let ldc = 5;
        let mut c = vec![1.0f32; 4 * ldc];
        add_tile(&tile, &mut c, ldc, 1, 2, 2, 3);
        for (idx, v) in c.iter().enumerate() {
            let (r, col) = (idx / ldc, idx % ldc);
            let expect = if (1..3).contains(&r) && (2..5).contains(&col) {
                1.0 + tile[(r - 1) * NR + (col - 2)]
            } else {
                1.0
            };
            assert_eq!(*v, expect, "c[{r}][{col}]");
        }
    }
}
