//! Three-dimensional tensor shapes in channel-major (`C × H × W`) order.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a [`Tensor3`](crate::Tensor3): channels × height × width.
///
/// All activation tensors in this workspace are channel-major, matching the
/// layout the EVA² warp engine iterates over (the sparsity decoder lanes walk
/// one channel at a time, §III-B).
///
/// # Example
///
/// ```
/// use eva2_tensor::Shape3;
///
/// let s = Shape3::new(64, 14, 14);
/// assert_eq!(s.len(), 64 * 14 * 14);
/// assert_eq!(s.spatial(), (14, 14));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape3 {
    /// Number of channels (feature maps).
    pub channels: usize,
    /// Spatial height in rows.
    pub height: usize,
    /// Spatial width in columns.
    pub width: usize,
}

impl Shape3 {
    /// Creates a new shape.
    pub const fn new(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
        }
    }

    /// Total number of elements.
    pub const fn len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Returns `true` when the shape holds no elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `(height, width)` spatial extent, dropping the channel dimension.
    pub const fn spatial(&self) -> (usize, usize) {
        (self.height, self.width)
    }

    /// Number of elements in one channel plane.
    pub const fn plane_len(&self) -> usize {
        self.height * self.width
    }

    /// Flat index of `(c, y, x)` in channel-major order.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when any coordinate is out of bounds.
    #[inline]
    pub fn index(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(
            c < self.channels && y < self.height && x < self.width,
            "index ({c}, {y}, {x}) out of bounds for shape {self}"
        );
        (c * self.height + y) * self.width + x
    }

    /// Inverse of [`Shape3::index`]: recovers `(c, y, x)` from a flat index.
    #[inline]
    pub fn coords(&self, flat: usize) -> (usize, usize, usize) {
        let plane = self.plane_len();
        let c = flat / plane;
        let rem = flat % plane;
        (c, rem / self.width, rem % self.width)
    }

    /// Returns `true` when `(y, x)` lies within the spatial bounds.
    #[inline]
    pub const fn contains_spatial(&self, y: isize, x: isize) -> bool {
        y >= 0 && x >= 0 && (y as usize) < self.height && (x as usize) < self.width
    }

    /// Shape with the same spatial extent but a different channel count.
    pub const fn with_channels(&self, channels: usize) -> Self {
        Self::new(channels, self.height, self.width)
    }
}

impl fmt::Display for Shape3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

impl From<(usize, usize, usize)> for Shape3 {
    fn from((c, h, w): (usize, usize, usize)) -> Self {
        Self::new(c, h, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_plane() {
        let s = Shape3::new(3, 4, 5);
        assert_eq!(s.len(), 60);
        assert_eq!(s.plane_len(), 20);
        assert!(!s.is_empty());
        assert!(Shape3::new(0, 4, 5).is_empty());
    }

    #[test]
    fn index_roundtrip() {
        let s = Shape3::new(3, 4, 5);
        for c in 0..3 {
            for y in 0..4 {
                for x in 0..5 {
                    let flat = s.index(c, y, x);
                    assert_eq!(s.coords(flat), (c, y, x));
                }
            }
        }
    }

    #[test]
    fn index_is_channel_major() {
        let s = Shape3::new(2, 2, 2);
        // Channel 0 occupies the first plane.
        assert_eq!(s.index(0, 0, 0), 0);
        assert_eq!(s.index(0, 1, 1), 3);
        assert_eq!(s.index(1, 0, 0), 4);
    }

    #[test]
    fn contains_spatial_handles_negatives() {
        let s = Shape3::new(1, 4, 4);
        assert!(s.contains_spatial(0, 0));
        assert!(s.contains_spatial(3, 3));
        assert!(!s.contains_spatial(-1, 0));
        assert!(!s.contains_spatial(0, 4));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape3::new(64, 14, 7).to_string(), "64x14x7");
    }

    #[test]
    fn from_tuple() {
        let s: Shape3 = (1, 2, 3).into();
        assert_eq!(s, Shape3::new(1, 2, 3));
    }
}
