//! A lightweight sparse view of an activation tensor.
//!
//! [`SparseActivation`] is the exchange format between the compressed
//! activation store (`eva2-core`'s run-length encoding) and the CNN
//! suffix's sparse-aware layers: per channel, an ascending list of
//! `(position, value)` pairs for the non-zero entries. It deliberately
//! carries no run-length machinery — the decoder lanes produce it by
//! walking their zero gaps, and the suffix consumes it by iterating only
//! the survivors, mirroring how the EVA² warp engine "skips over zero
//! entries … reducing the motion compensation cost proportionally to the
//! activations' sparsity" (§V of the paper).

use crate::shape::Shape3;
use crate::tensor::Tensor3;

/// Non-zero entries of a `C × H × W` activation, per channel.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseActivation {
    shape: Shape3,
    /// For each channel, ascending `(plane_position, value)` pairs.
    channels: Vec<Vec<(u32, f32)>>,
}

impl SparseActivation {
    /// Builds from per-channel `(position, value)` lists.
    ///
    /// # Panics
    ///
    /// Panics when the channel count differs from `shape.channels`, any
    /// position exceeds the plane length, or positions within a channel
    /// are not strictly ascending.
    pub fn from_channels(shape: Shape3, channels: Vec<Vec<(u32, f32)>>) -> Self {
        assert_eq!(channels.len(), shape.channels, "channel count mismatch");
        let plane = shape.plane_len();
        for entries in &channels {
            let mut prev: Option<u32> = None;
            for &(pos, _) in entries {
                assert!(
                    (pos as usize) < plane,
                    "position {pos} outside plane {plane}"
                );
                if let Some(p) = prev {
                    assert!(pos > p, "positions not strictly ascending: {p} then {pos}");
                }
                prev = Some(pos);
            }
        }
        Self { shape, channels }
    }

    /// Extracts the non-zero structure of a dense tensor, treating values
    /// with `|v| <= threshold` as zero.
    pub fn from_dense(t: &Tensor3, threshold: f32) -> Self {
        let shape = t.shape();
        let channels = (0..shape.channels)
            .map(|c| {
                t.channel(c)
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.abs() > threshold)
                    .map(|(i, &v)| (i as u32, v))
                    .collect()
            })
            .collect();
        Self { shape, channels }
    }

    /// Densifies back to a tensor.
    pub fn to_dense(&self) -> Tensor3 {
        let mut t = Tensor3::zeros(self.shape);
        for (c, entries) in self.channels.iter().enumerate() {
            let plane = t.channel_mut(c);
            for &(pos, v) in entries {
                plane[pos as usize] = v;
            }
        }
        t
    }

    /// The dense shape this sparse view describes.
    pub fn shape(&self) -> Shape3 {
        self.shape
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.channels.iter().map(Vec::len).sum()
    }

    /// Bytes of heap memory this activation holds (allocated capacities,
    /// including the per-channel vector headers) — the serving engine's
    /// per-session memory audit.
    pub fn heap_bytes(&self) -> usize {
        self.channels.capacity() * std::mem::size_of::<Vec<(u32, f32)>>()
            + self
                .channels
                .iter()
                .map(|c| c.capacity() * std::mem::size_of::<(u32, f32)>())
                .sum::<usize>()
    }

    /// Fraction of entries that are zero (1.0 for an all-zero tensor).
    pub fn sparsity(&self) -> f32 {
        let len = self.shape.len();
        if len == 0 {
            0.0
        } else {
            1.0 - self.nnz() as f32 / len as f32
        }
    }

    /// One channel's `(position, value)` pairs.
    pub fn channel(&self, c: usize) -> &[(u32, f32)] {
        &self.channels[c]
    }

    /// Iterates `(flat_index, value)` over all non-zeros in channel-major
    /// order (`flat_index` indexes the dense channel-major buffer).
    pub fn iter_flat(&self) -> impl Iterator<Item = (usize, f32)> + '_ {
        let plane = self.shape.plane_len();
        self.channels
            .iter()
            .enumerate()
            .flat_map(move |(c, entries)| {
                entries
                    .iter()
                    .map(move |&(pos, v)| (c * plane + pos as usize, v))
            })
    }

    /// Iterates `(channel, y, x, value)` over all non-zeros.
    pub fn iter_coords(&self) -> impl Iterator<Item = (usize, usize, usize, f32)> + '_ {
        let width = self.shape.width;
        self.channels
            .iter()
            .enumerate()
            .flat_map(move |(c, entries)| {
                entries
                    .iter()
                    .map(move |&(pos, v)| (c, pos as usize / width, pos as usize % width, v))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor3 {
        Tensor3::from_fn(Shape3::new(2, 3, 4), |c, y, x| {
            if (c + y + x) % 3 == 0 {
                0.0
            } else {
                (c * 12 + y * 4 + x) as f32 - 5.0
            }
        })
    }

    #[test]
    fn dense_roundtrip() {
        let t = sample();
        let s = SparseActivation::from_dense(&t, 0.0);
        assert_eq!(s.to_dense(), t);
        assert_eq!(s.shape(), t.shape());
    }

    #[test]
    fn threshold_drops_small_values() {
        let t = Tensor3::from_vec(Shape3::new(1, 1, 4), vec![0.05, -0.5, 0.0, 2.0]);
        let s = SparseActivation::from_dense(&t, 0.1);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense().as_slice(), &[0.0, -0.5, 0.0, 2.0]);
    }

    #[test]
    fn sparsity_and_iterators_agree() {
        let t = sample();
        let s = SparseActivation::from_dense(&t, 0.0);
        let dense_nonzero = t.iter().filter(|v| **v != 0.0).count();
        assert_eq!(s.nnz(), dense_nonzero);
        assert!((s.sparsity() - t.sparsity(0.0)).abs() < 1e-6);
        for (i, v) in s.iter_flat() {
            assert_eq!(t.as_slice()[i], v);
        }
        for (c, y, x, v) in s.iter_coords() {
            assert_eq!(t.get(c, y, x), v);
        }
    }

    #[test]
    fn from_channels_validates() {
        let s =
            SparseActivation::from_channels(Shape3::new(1, 2, 2), vec![vec![(0, 1.0), (3, -2.0)]]);
        assert_eq!(s.to_dense().as_slice(), &[1.0, 0.0, 0.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "outside plane")]
    fn from_channels_rejects_out_of_range() {
        let _ = SparseActivation::from_channels(Shape3::new(1, 2, 2), vec![vec![(4, 1.0)]]);
    }
}
