//! 8-bit grayscale frames.
//!
//! The EVA² hardware front-end operates on raw, uncompressed luma pixels: the
//! paper argues real-time vision systems "save energy by skipping the ISP and
//! video codec" (§II-C1). [`GrayImage`] is that pixel format. Motion
//! estimation (`eva2-motion`) consumes pairs of `GrayImage`s, and the CNN
//! simulator converts them to [`Tensor3`] activations at the network input.

use crate::{Shape3, Tensor3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A row-major `H × W` frame of 8-bit luma pixels.
///
/// # Example
///
/// ```
/// use eva2_tensor::GrayImage;
///
/// let img = GrayImage::from_fn(4, 4, |y, x| (y * 4 + x) as u8);
/// assert_eq!(img.get(2, 3), 11);
/// assert_eq!(img.translate(1, 0, 0).get(1, 0), 0);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrayImage {
    height: usize,
    width: usize,
    data: Vec<u8>,
}

impl GrayImage {
    /// Creates an all-black frame.
    pub fn zeros(height: usize, width: usize) -> Self {
        Self {
            height,
            width,
            data: vec![0; height * width],
        }
    }

    /// Creates a frame filled with `value`.
    pub fn filled(height: usize, width: usize, value: u8) -> Self {
        Self {
            height,
            width,
            data: vec![value; height * width],
        }
    }

    /// Creates a frame by evaluating `f(y, x)` at every pixel.
    pub fn from_fn<F: FnMut(usize, usize) -> u8>(height: usize, width: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(height * width);
        for y in 0..height {
            for x in 0..width {
                data.push(f(y, x));
            }
        }
        Self {
            height,
            width,
            data,
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != height * width`.
    pub fn from_vec(height: usize, width: usize, data: Vec<u8>) -> Self {
        assert_eq!(
            data.len(),
            height * width,
            "buffer length {} does not match {height}x{width}",
            data.len()
        );
        Self {
            height,
            width,
            data,
        }
    }

    /// Frame height in rows.
    pub const fn height(&self) -> usize {
        self.height
    }

    /// Frame width in columns.
    pub const fn width(&self) -> usize {
        self.width
    }

    /// Reads the pixel at `(y, x)`.
    #[inline]
    pub fn get(&self, y: usize, x: usize) -> u8 {
        debug_assert!(y < self.height && x < self.width);
        self.data[y * self.width + x]
    }

    /// Reads `(y, x)` with out-of-bounds coordinates clamped to the border.
    ///
    /// Border clamping (rather than zero fill) matches what a camera pipeline
    /// produces when a search window extends past the frame edge.
    #[inline]
    pub fn get_clamped(&self, y: isize, x: isize) -> u8 {
        let y = y.clamp(0, self.height as isize - 1) as usize;
        let x = x.clamp(0, self.width as isize - 1) as usize;
        self.data[y * self.width + x]
    }

    /// Reads `(y, x)`, returning `None` outside the frame.
    #[inline]
    pub fn try_get(&self, y: isize, x: isize) -> Option<u8> {
        if y >= 0 && x >= 0 && (y as usize) < self.height && (x as usize) < self.width {
            Some(self.data[y as usize * self.width + x as usize])
        } else {
            None
        }
    }

    /// Writes `value` at `(y, x)`.
    #[inline]
    pub fn set(&mut self, y: usize, x: usize, value: u8) {
        debug_assert!(y < self.height && x < self.width);
        self.data[y * self.width + x] = value;
    }

    /// Immutable view of the row-major pixel buffer.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Bytes of heap memory this frame holds (allocated capacity, not just
    /// occupied length) — the serving engine's per-session memory audit.
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity()
    }

    /// Mutable view of the row-major pixel buffer.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Translates the frame by `(dy, dx)`, filling vacated pixels with `fill`.
    /// Positive `dy`/`dx` move content down/right.
    pub fn translate(&self, dy: isize, dx: isize, fill: u8) -> Self {
        Self::from_fn(self.height, self.width, |y, x| {
            self.try_get(y as isize - dy, x as isize - dx)
                .unwrap_or(fill)
        })
    }

    /// Sum of absolute pixel differences against an equally-sized frame.
    ///
    /// # Panics
    ///
    /// Panics when dimensions differ.
    pub fn sad(&self, other: &Self) -> u64 {
        assert_eq!(
            (self.height, self.width),
            (other.height, other.width),
            "dimension mismatch in sad"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a as i32 - b as i32).unsigned_abs() as u64)
            .sum()
    }

    /// Converts to a single-channel tensor with pixels scaled to `[0, 1]`.
    pub fn to_tensor(&self) -> Tensor3 {
        Tensor3::from_vec(
            Shape3::new(1, self.height, self.width),
            self.data.iter().map(|&p| p as f32 / 255.0).collect(),
        )
    }

    /// Builds a frame from channel 0 of a tensor, mapping `[0, 1]` to
    /// `[0, 255]` with saturation.
    pub fn from_tensor(t: &Tensor3) -> Self {
        let (h, w) = t.shape().spatial();
        Self::from_fn(h, w, |y, x| {
            (t.get(0, y, x).clamp(0.0, 1.0) * 255.0).round() as u8
        })
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&p| p as f64).sum::<f64>() / self.data.len() as f64
    }
}

impl fmt::Debug for GrayImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GrayImage({}x{}, mean={:.1})",
            self.height,
            self.width,
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient() -> GrayImage {
        GrayImage::from_fn(4, 4, |y, x| (y * 4 + x) as u8)
    }

    #[test]
    fn constructors_and_access() {
        let img = gradient();
        assert_eq!(img.height(), 4);
        assert_eq!(img.width(), 4);
        assert_eq!(img.get(3, 3), 15);
        assert_eq!(GrayImage::filled(2, 2, 9).as_slice(), &[9, 9, 9, 9]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_length() {
        let _ = GrayImage::from_vec(2, 2, vec![0; 3]);
    }

    #[test]
    fn clamped_reads() {
        let img = gradient();
        assert_eq!(img.get_clamped(-5, 0), img.get(0, 0));
        assert_eq!(img.get_clamped(10, 10), img.get(3, 3));
    }

    #[test]
    fn try_get_bounds() {
        let img = gradient();
        assert_eq!(img.try_get(0, 0), Some(0));
        assert_eq!(img.try_get(-1, 0), None);
        assert_eq!(img.try_get(0, 4), None);
    }

    #[test]
    fn translate_fills_vacated() {
        let img = gradient();
        let moved = img.translate(1, 1, 0);
        assert_eq!(moved.get(0, 0), 0);
        assert_eq!(moved.get(1, 1), img.get(0, 0));
        assert_eq!(moved.get(3, 3), img.get(2, 2));
    }

    #[test]
    fn sad_of_identical_is_zero() {
        let img = gradient();
        assert_eq!(img.sad(&img), 0);
    }

    #[test]
    fn sad_counts_differences() {
        let a = GrayImage::filled(2, 2, 10);
        let b = GrayImage::filled(2, 2, 13);
        assert_eq!(a.sad(&b), 12);
    }

    #[test]
    fn tensor_roundtrip() {
        let img = gradient();
        let t = img.to_tensor();
        assert_eq!(t.shape(), Shape3::new(1, 4, 4));
        let back = GrayImage::from_tensor(&t);
        assert_eq!(back, img);
    }

    #[test]
    fn set_writes() {
        let mut img = GrayImage::zeros(2, 2);
        img.set(1, 0, 200);
        assert_eq!(img.get(1, 0), 200);
    }
}
