//! Cache-blocked f32 GEMM and im2col/col2im packing — the convolution
//! engine behind `eva2_cnn::Conv2d`.
//!
//! # Why this exists
//!
//! EVA²'s performance story rests on the cost asymmetry between full CNN
//! execution (key frames) and suffix-only execution (predicted frames). For
//! the software reproduction to *measure* that asymmetry honestly, the
//! forward pass must be compute-bound rather than interpreter-bound: a naive
//! six-deep scalar loop with a per-element branch underestimates what any
//! real layer accelerator (or even a CPU) achieves, inflating apparent AMC
//! savings. This module lowers convolution to matrix multiplication, the
//! same transformation Caffe used for the networks the paper evaluates.
//!
//! # Lowering
//!
//! For an input of shape `C_in × H × W` and a square `K × K` kernel with
//! stride `S` and padding `P`:
//!
//! * [`im2col_into`] unfolds every receptive-field patch into one *column*
//!   of a `(C_in·K²) × (H_out·W_out)` matrix. Patches are laid out so that
//!   the weight tensor `[oc][ic][ky][kx]`, flattened row-major, is already
//!   the left-hand matrix — no weight repacking is needed.
//! * [`gemm_nn`] computes `C += A·B` with `A = weights (C_out × C_in·K²)`
//!   and `B = cols`, producing the output activation directly in
//!   channel-major `Tensor3` layout.
//! * The backward pass reuses the same packing: `∂W = ∂Y · colsᵀ`
//!   ([`gemm_nt`]), `∂cols = Wᵀ · ∂Y` ([`gemm_tn`]), and [`col2im_into`]
//!   scatter-adds `∂cols` back to `∂X`.
//!
//! # Blocking scheme
//!
//! `gemm_nn` is an AXPY-panel kernel: the innermost operation is
//! `c_row += a[i][p] * b_row`, a unit-stride multiply-add over `N`-length
//! rows that the compiler auto-vectorizes (the hot loop is written over
//! 8-wide `chunks_exact` so no runtime remainder handling sits inside it).
//! The `p` (depth) dimension is blocked by [`KC`]: one `KC × N` panel of `B`
//! is streamed against each row of `C` before moving on, so the panel stays
//! resident in L1/L2 across the `M` output rows. `C` rows are visited
//! consecutively, making writes streaming. For the activation sizes in this
//! workspace (`N` up to a few thousand, `K` up to a few thousand) this is
//! within a small factor of a tuned micro-kernel GEMM while remaining ~100
//! lines of portable safe Rust.
//!
//! With the `parallel` crate feature, the `M` dimension is split across
//! `std::thread::available_parallelism()` scoped threads (each owns a
//! disjoint row block of `C`; `B` is shared read-only). No external
//! dependency is used. Small products stay single-threaded — see
//! [`PAR_THRESHOLD`].
//!
//! # Scratch reuse
//!
//! [`GemmScratch`] owns the im2col buffers. Callers that process many
//! frames (the AMC executor, the training loop) hold one scratch and pass
//! it to [`conv2d_forward`]/[`conv2d_backward`], so steady-state execution
//! performs **no** per-frame im2col allocation. One-shot callers can use
//! [`with_thread_scratch`], which reuses a thread-local scratch.
//!
//! # Reproducing the benchmarks
//!
//! ```text
//! cargo bench -p eva2-bench --bench cnn    -- conv_paths   # naive vs GEMM
//! cargo bench -p eva2-bench --bench sparse -- suffix       # sparse suffix
//! cargo run --release -p eva2-bench --bin bench_conv       # BENCH_conv.json
//! ```
//!
//! The committed `BENCH_conv.json` at the repository root is the output of
//! the last command; the acceptance bar is a ≥ 5× naive→GEMM speedup on the
//! conv-forward benchmark and a sparse-suffix win at ≥ 50% activation
//! sparsity.

use crate::shape::Shape3;
use crate::tensor::Tensor3;
use std::cell::RefCell;

/// Depth-blocking factor: the `KC × N` panel of `B` streamed per `C` row.
///
/// 256 rows × (typical `N` ≈ 1–4 K columns) × 4 bytes ≈ 1–4 MB worst case,
/// but consecutive rows of the panel are touched in order, so the working
/// set per AXPY is just two `N`-length rows; `KC` bounds how long a panel
/// stays hot before `C` moves on.
pub const KC: usize = 256;

/// Minimum `M·N·K` before the `parallel` feature splits the GEMM across
/// threads; below this the spawn overhead dominates.
#[cfg(feature = "parallel")]
pub const PAR_THRESHOLD: usize = 1 << 18;

/// Output spatial length of a convolution along one axis (floor convention,
/// matching `LayerGeometry::output_len` in `eva2-cnn`).
pub fn conv_output_len(n: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    let padded = n + 2 * padding;
    if padded < kernel {
        0
    } else {
        (padded - kernel) / stride + 1
    }
}

/// Reusable buffers for im2col-lowered convolution.
///
/// Holding one `GemmScratch` across frames eliminates steady-state heap
/// allocation in the convolution engine (the buffers grow to the largest
/// layer seen, then stabilise).
#[derive(Debug, Default)]
pub struct GemmScratch {
    /// im2col patch matrix, `(C_in·K²) × (H_out·W_out)`.
    cols: Vec<f32>,
    /// Gradient w.r.t. `cols` in the backward pass.
    cols_grad: Vec<f32>,
}

impl GemmScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently held by the scratch buffers.
    pub fn capacity_bytes(&self) -> usize {
        (self.cols.capacity() + self.cols_grad.capacity()) * std::mem::size_of::<f32>()
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<GemmScratch> = RefCell::new(GemmScratch::new());
}

/// Runs `f` with the calling thread's shared [`GemmScratch`].
///
/// Lets one-shot conv calls (tests, generic `Layer::forward`) reuse buffers
/// without threading a scratch through every signature. Re-entrant calls
/// fall back to a fresh scratch.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut GemmScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut GemmScratch::new()),
    })
}

/// The eight-wide AXPY at the bottom of every kernel: `y += alpha * x`.
///
/// Public because the sparse-aware layers reuse it: feeding a suffix from
/// non-zero activation entries turns each survivor into one AXPY over a
/// transposed weight row, keeping the skip-zero path as vectorizable as the
/// dense path it replaces.
///
/// # Panics
///
/// Panics when `x` and `y` lengths differ.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let n8 = x.len() - x.len() % 8;
    let (xh, xt) = x.split_at(n8);
    let (yh, yt) = y.split_at_mut(n8);
    for (xc, yc) in xh.chunks_exact(8).zip(yh.chunks_exact_mut(8)) {
        for lane in 0..8 {
            yc[lane] += alpha * xc[lane];
        }
    }
    for (xv, yv) in xt.iter().zip(yt.iter_mut()) {
        *yv += alpha * xv;
    }
}

/// Dot product with eight-way unrolling (used by [`gemm_nt`]).
#[inline]
fn dot(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let n8 = x.len() - x.len() % 8;
    let mut lanes = [0.0f32; 8];
    for (xc, yc) in x[..n8].chunks_exact(8).zip(y[..n8].chunks_exact(8)) {
        for lane in 0..8 {
            lanes[lane] += xc[lane] * yc[lane];
        }
    }
    let mut acc = lanes.iter().sum::<f32>();
    for (xv, yv) in x[n8..].iter().zip(y[n8..].iter()) {
        acc += xv * yv;
    }
    acc
}

fn gemm_nn_serial(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for kb in (0..k).step_by(KC) {
        let kend = (kb + KC).min(k);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for p in kb..kend {
                axpy(a_row[p], &b[p * n..(p + 1) * n], c_row);
            }
        }
    }
}

/// `C += A · B` for row-major `A: M×K`, `B: K×N`, `C: M×N`.
///
/// With the `parallel` feature, large products split the `M` dimension
/// across scoped threads.
///
/// # Panics
///
/// Panics when a buffer length does not match its matrix dimensions.
pub fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nn: A is not M×K");
    assert_eq!(b.len(), k * n, "gemm_nn: B is not K×N");
    assert_eq!(c.len(), m * n, "gemm_nn: C is not M×N");
    #[cfg(feature = "parallel")]
    {
        let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
        if threads > 1 && m >= 2 * threads && m * n * k >= PAR_THRESHOLD {
            let rows_per = m.div_ceil(threads);
            std::thread::scope(|s| {
                for (ti, c_block) in c.chunks_mut(rows_per * n).enumerate() {
                    let rows = c_block.len() / n;
                    let a_block = &a[ti * rows_per * k..ti * rows_per * k + rows * k];
                    s.spawn(move || gemm_nn_serial(rows, n, k, a_block, b, c_block));
                }
            });
            return;
        }
    }
    gemm_nn_serial(m, n, k, a, b, c);
}

/// `C += A · Bᵀ` for row-major `A: M×K`, `B: N×K`, `C: M×N`.
///
/// Both operands are traversed along their contiguous `K` axis (dot
/// products), so no transpose is materialised. Used for the weight gradient
/// `∂W = ∂Y · colsᵀ`.
///
/// # Panics
///
/// Panics when a buffer length does not match its matrix dimensions.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nt: A is not M×K");
    assert_eq!(b.len(), n * k, "gemm_nt: B is not N×K");
    assert_eq!(c.len(), m * n, "gemm_nt: C is not M×N");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            *cv += dot(a_row, &b[j * k..(j + 1) * k]);
        }
    }
}

/// `C += Aᵀ · B` for row-major `A: M×K`, `B: M×N`, `C: K×N`.
///
/// Row `p` of `C` accumulates `a[i][p] · b_row_i` over all `i` — again pure
/// unit-stride AXPYs. Used for the input gradient `∂cols = Wᵀ · ∂Y`.
///
/// # Panics
///
/// Panics when a buffer length does not match its matrix dimensions.
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_tn: A is not M×K");
    assert_eq!(b.len(), m * n, "gemm_tn: B is not M×N");
    assert_eq!(c.len(), k * n, "gemm_tn: C is not K×N");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let b_row = &b[i * n..(i + 1) * n];
        for (p, &apv) in a_row.iter().enumerate() {
            axpy(apv, b_row, &mut c[p * n..(p + 1) * n]);
        }
    }
}

/// Unfolds `input` into the im2col patch matrix.
///
/// `cols` is resized to `(C_in·K²) × (H_out·W_out)` and fully overwritten.
/// Row `((ic·K) + ky)·K + kx` holds, for every output position `(oy, ox)`,
/// the input sample at `(ic, oy·S − P + ky, ox·S − P + kx)` (zero outside
/// the frame). Stride-1 rows are bulk `copy_from_slice` copies.
///
/// Returns `(K_dim, N)` = (rows, columns) of the packed matrix.
pub fn im2col_into(
    input: &Tensor3,
    kernel: usize,
    stride: usize,
    padding: usize,
    cols: &mut Vec<f32>,
) -> (usize, usize) {
    let shape = input.shape();
    let out_h = conv_output_len(shape.height, kernel, stride, padding);
    let out_w = conv_output_len(shape.width, kernel, stride, padding);
    let k_dim = shape.channels * kernel * kernel;
    let n = out_h * out_w;
    cols.clear();
    cols.resize(k_dim * n, 0.0);
    let p = padding as isize;
    for ic in 0..shape.channels {
        let plane = input.channel(ic);
        for ky in 0..kernel {
            for kx in 0..kernel {
                let row = ((ic * kernel) + ky) * kernel + kx;
                let dst_row = &mut cols[row * n..(row + 1) * n];
                for oy in 0..out_h {
                    let iy = (oy * stride) as isize - p + ky as isize;
                    let dst = &mut dst_row[oy * out_w..(oy + 1) * out_w];
                    if iy < 0 || iy as usize >= shape.height {
                        dst.fill(0.0);
                        continue;
                    }
                    let src_row =
                        &plane[iy as usize * shape.width..(iy as usize + 1) * shape.width];
                    if stride == 1 {
                        // ix = ox − P + kx for ox in 0..out_w: one contiguous
                        // window, zero-filled where it leaves the frame.
                        let ix0 = kx as isize - p;
                        let lead = (-ix0).clamp(0, out_w as isize) as usize;
                        let start = ((ix0 + lead as isize) as usize).min(shape.width);
                        let body = (shape.width - start).min(out_w - lead);
                        dst[..lead].fill(0.0);
                        dst[lead..lead + body].copy_from_slice(&src_row[start..start + body]);
                        dst[lead + body..].fill(0.0);
                    } else {
                        for (ox, dv) in dst.iter_mut().enumerate() {
                            let ix = (ox * stride) as isize - p + kx as isize;
                            *dv = if ix >= 0 && (ix as usize) < shape.width {
                                src_row[ix as usize]
                            } else {
                                0.0
                            };
                        }
                    }
                }
            }
        }
    }
    (k_dim, n)
}

/// Scatter-adds a `cols`-shaped gradient back onto an input-shaped tensor
/// (the adjoint of [`im2col_into`]).
pub fn col2im_into(
    cols_grad: &[f32],
    kernel: usize,
    stride: usize,
    padding: usize,
    grad_in: &mut Tensor3,
) {
    let shape = grad_in.shape();
    let out_h = conv_output_len(shape.height, kernel, stride, padding);
    let out_w = conv_output_len(shape.width, kernel, stride, padding);
    let n = out_h * out_w;
    let p = padding as isize;
    for ic in 0..shape.channels {
        let plane = grad_in.channel_mut(ic);
        for ky in 0..kernel {
            for kx in 0..kernel {
                let row = ((ic * kernel) + ky) * kernel + kx;
                let src_row = &cols_grad[row * n..(row + 1) * n];
                for oy in 0..out_h {
                    let iy = (oy * stride) as isize - p + ky as isize;
                    if iy < 0 || iy as usize >= shape.height {
                        continue;
                    }
                    let dst =
                        &mut plane[iy as usize * shape.width..(iy as usize + 1) * shape.width];
                    let src = &src_row[oy * out_w..(oy + 1) * out_w];
                    for (ox, &gv) in src.iter().enumerate() {
                        let ix = (ox * stride) as isize - p + kx as isize;
                        if ix >= 0 && (ix as usize) < shape.width {
                            dst[ix as usize] += gv;
                        }
                    }
                }
            }
        }
    }
}

/// im2col + GEMM convolution forward pass.
///
/// `weights` is the flattened `[oc][ic][ky][kx]` filter bank, `bias` one
/// value per output channel. Returns the `C_out × H_out × W_out` output.
///
/// # Panics
///
/// Panics when `weights`/`bias` lengths are inconsistent with
/// `out_channels`, `kernel`, and the input channel count.
#[allow(clippy::too_many_arguments)] // mirrors the conv geometry verbatim
pub fn conv2d_forward(
    input: &Tensor3,
    weights: &[f32],
    bias: &[f32],
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    scratch: &mut GemmScratch,
) -> Tensor3 {
    let shape = input.shape();
    let k_dim = shape.channels * kernel * kernel;
    assert_eq!(
        weights.len(),
        out_channels * k_dim,
        "conv2d_forward: weights"
    );
    assert_eq!(bias.len(), out_channels, "conv2d_forward: bias");
    let out_shape = Shape3::new(
        out_channels,
        conv_output_len(shape.height, kernel, stride, padding),
        conv_output_len(shape.width, kernel, stride, padding),
    );
    let (_, n) = im2col_into(input, kernel, stride, padding, &mut scratch.cols);
    let mut out = Tensor3::zeros(out_shape);
    for (oc, &b) in bias.iter().enumerate() {
        out.channel_mut(oc).fill(b);
    }
    gemm_nn(
        out_channels,
        n,
        k_dim,
        weights,
        &scratch.cols,
        out.as_mut_slice(),
    );
    out
}

/// im2col + GEMM convolution backward pass.
///
/// Accumulates the weight gradient into `grad_w` (`∂W += ∂Y·colsᵀ`) and the
/// bias gradient into `grad_b`, and returns the input gradient
/// (`col2im(Wᵀ·∂Y)`).
///
/// # Panics
///
/// Panics when buffer lengths are inconsistent with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward(
    input: &Tensor3,
    weights: &[f32],
    grad_out: &Tensor3,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    scratch: &mut GemmScratch,
    grad_w: &mut [f32],
    grad_b: &mut [f32],
) -> Tensor3 {
    let shape = input.shape();
    let k_dim = shape.channels * kernel * kernel;
    assert_eq!(
        weights.len(),
        out_channels * k_dim,
        "conv2d_backward: weights"
    );
    assert_eq!(grad_w.len(), weights.len(), "conv2d_backward: grad_w");
    assert_eq!(grad_b.len(), out_channels, "conv2d_backward: grad_b");
    let (_, n) = im2col_into(input, kernel, stride, padding, &mut scratch.cols);
    assert_eq!(
        grad_out.shape().len(),
        out_channels * n,
        "conv2d_backward: grad_out"
    );
    for (oc, gb) in grad_b.iter_mut().enumerate() {
        *gb += grad_out.channel(oc).iter().sum::<f32>();
    }
    gemm_nt(
        out_channels,
        k_dim,
        n,
        grad_out.as_slice(),
        &scratch.cols,
        grad_w,
    );
    scratch.cols_grad.clear();
    scratch.cols_grad.resize(k_dim * n, 0.0);
    gemm_tn(
        out_channels,
        n,
        k_dim,
        weights,
        grad_out.as_slice(),
        &mut scratch.cols_grad,
    );
    let mut grad_in = Tensor3::zeros(shape);
    col2im_into(&scratch.cols_grad, kernel, stride, padding, &mut grad_in);
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_input(c: usize, h: usize, w: usize) -> Tensor3 {
        Tensor3::from_fn(Shape3::new(c, h, w), |ci, y, x| {
            ((ci * 31 + y * 7 + x * 3) % 13) as f32 - 6.0
        })
    }

    /// Direct scalar conv used as the test oracle.
    fn conv_reference(
        input: &Tensor3,
        weights: &[f32],
        bias: &[f32],
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Tensor3 {
        let s = input.shape();
        let out_shape = Shape3::new(
            out_channels,
            conv_output_len(s.height, kernel, stride, padding),
            conv_output_len(s.width, kernel, stride, padding),
        );
        let k_dim = s.channels * kernel * kernel;
        Tensor3::from_fn(out_shape, |oc, oy, ox| {
            let mut acc = bias[oc];
            for ic in 0..s.channels {
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        let iy = (oy * stride) as isize - padding as isize + ky as isize;
                        let ix = (ox * stride) as isize - padding as isize + kx as isize;
                        let w = weights[oc * k_dim + (ic * kernel + ky) * kernel + kx];
                        acc += w * input.get_padded(ic, iy, ix);
                    }
                }
            }
            acc
        })
    }

    fn weights_for(out_c: usize, in_c: usize, kernel: usize) -> (Vec<f32>, Vec<f32>) {
        let k_dim = in_c * kernel * kernel;
        let weights: Vec<f32> = (0..out_c * k_dim)
            .map(|i| ((i * 17 + 5) % 11) as f32 * 0.1 - 0.5)
            .collect();
        let bias: Vec<f32> = (0..out_c).map(|i| i as f32 * 0.25 - 0.5).collect();
        (weights, bias)
    }

    #[test]
    fn gemm_nn_matches_schoolbook() {
        let (m, n, k) = (5, 7, 9);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 5) as f32 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 * 0.5 - 1.0).collect();
        let mut c = vec![0.5f32; m * n];
        let mut expect = c.clone();
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    expect[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        gemm_nn(m, n, k, &a, &b, &mut c);
        for (got, want) in c.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-4, "{got} vs {want}");
        }
    }

    #[test]
    fn gemm_nt_and_tn_match_schoolbook() {
        let (m, n, k) = (4, 6, 5);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 4) as f32 - 1.5).collect();
        let bt: Vec<f32> = (0..n * k).map(|i| (i % 6) as f32 * 0.3).collect();
        let mut c = vec![0.0f32; m * n];
        gemm_nt(m, n, k, &a, &bt, &mut c);
        for i in 0..m {
            for j in 0..n {
                let want: f32 = (0..k).map(|p| a[i * k + p] * bt[j * k + p]).sum();
                assert!((c[i * n + j] - want).abs() < 1e-4);
            }
        }
        // gemm_tn: C (k×n) += Aᵀ B with A m×k, B m×n.
        let b: Vec<f32> = (0..m * n).map(|i| (i % 3) as f32 - 1.0).collect();
        let mut ct = vec![0.0f32; k * n];
        gemm_tn(m, n, k, &a, &b, &mut ct);
        for p in 0..k {
            for j in 0..n {
                let want: f32 = (0..m).map(|i| a[i * k + p] * b[i * n + j]).sum();
                assert!((ct[p * n + j] - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn im2col_identity_geometry_is_transpose_free_copy() {
        let input = seq_input(2, 3, 3);
        let mut cols = Vec::new();
        let (k_dim, n) = im2col_into(&input, 1, 1, 0, &mut cols);
        assert_eq!((k_dim, n), (2, 9));
        assert_eq!(&cols, input.as_slice());
    }

    #[test]
    fn conv_forward_matches_reference_across_geometries() {
        for &(c, h, w, oc, k, s, p) in &[
            (1usize, 5usize, 5usize, 1usize, 3usize, 1usize, 0usize),
            (2, 6, 5, 3, 3, 1, 1),
            (3, 8, 8, 4, 5, 2, 2),
            (2, 7, 9, 2, 1, 1, 0),
            (1, 4, 4, 2, 4, 4, 0),
            (2, 5, 5, 3, 3, 2, 0),
        ] {
            let input = seq_input(c, h, w);
            let (weights, bias) = weights_for(oc, c, k);
            let want = conv_reference(&input, &weights, &bias, oc, k, s, p);
            let got = with_thread_scratch(|scratch| {
                conv2d_forward(&input, &weights, &bias, oc, k, s, p, scratch)
            });
            assert_eq!(
                got.shape(),
                want.shape(),
                "shape for {c}x{h}x{w} k{k}s{s}p{p}"
            );
            for (a, b) in got.iter().zip(want.iter()) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "conv mismatch: {a} vs {b} (k{k}s{s}p{p})"
                );
            }
        }
    }

    #[test]
    fn conv_backward_gradcheck() {
        let (c, h, w, oc, k, s, p) = (2, 5, 5, 3, 3, 1, 1);
        let input = seq_input(c, h, w).map(|v| (v * 0.37).sin());
        let (weights, bias) = weights_for(oc, c, k);
        let mut scratch = GemmScratch::new();
        let out = conv2d_forward(&input, &weights, &bias, oc, k, s, p, &mut scratch);
        let grad_out = Tensor3::filled(out.shape(), 1.0);
        let mut grad_w = vec![0.0f32; weights.len()];
        let mut grad_b = vec![0.0f32; bias.len()];
        let grad_in = conv2d_backward(
            &input,
            &weights,
            &grad_out,
            oc,
            k,
            s,
            p,
            &mut scratch,
            &mut grad_w,
            &mut grad_b,
        );
        let eps = 1e-2;
        // Input gradient.
        for &(y, x) in &[(0usize, 0usize), (2, 3), (4, 4)] {
            let mut plus = input.clone();
            plus.set(1, y, x, input.get(1, y, x) + eps);
            let mut minus = input.clone();
            minus.set(1, y, x, input.get(1, y, x) - eps);
            let lp: f32 = conv2d_forward(&plus, &weights, &bias, oc, k, s, p, &mut scratch)
                .iter()
                .sum();
            let lm: f32 = conv2d_forward(&minus, &weights, &bias, oc, k, s, p, &mut scratch)
                .iter()
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.get(1, y, x);
            assert!(
                (numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs()),
                "grad_in ({y},{x}): numeric {numeric} vs analytic {analytic}"
            );
        }
        // Weight gradient.
        for wi in [0usize, 7, weights.len() - 1] {
            let mut wp = weights.clone();
            wp[wi] += eps;
            let mut wm = weights.clone();
            wm[wi] -= eps;
            let lp: f32 = conv2d_forward(&input, &wp, &bias, oc, k, s, p, &mut scratch)
                .iter()
                .sum();
            let lm: f32 = conv2d_forward(&input, &wm, &bias, oc, k, s, p, &mut scratch)
                .iter()
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_w[wi]).abs() < 1e-2 * (1.0 + numeric.abs()),
                "grad_w [{wi}]: numeric {numeric} vs analytic {}",
                grad_w[wi]
            );
        }
        // Bias gradient: dL/db = number of output positions per channel.
        let n_out = out.shape().plane_len() as f32;
        for gb in &grad_b {
            assert!((gb - n_out).abs() < 1e-3);
        }
    }

    #[test]
    fn scratch_reuse_across_shapes_is_safe() {
        let mut scratch = GemmScratch::new();
        // Large then small: stale tail data must not leak into results.
        let big = seq_input(3, 10, 10);
        let (wb, bb) = weights_for(4, 3, 3);
        let _ = conv2d_forward(&big, &wb, &bb, 4, 3, 1, 1, &mut scratch);
        let small = seq_input(1, 4, 4);
        let (ws, bs) = weights_for(2, 1, 3);
        let got = conv2d_forward(&small, &ws, &bs, 2, 3, 1, 0, &mut scratch);
        let want = conv_reference(&small, &ws, &bs, 2, 3, 1, 0);
        for (a, b) in got.iter().zip(want.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn output_len_edge_cases() {
        assert_eq!(conv_output_len(5, 3, 1, 0), 3);
        assert_eq!(conv_output_len(5, 3, 2, 1), 3);
        assert_eq!(conv_output_len(2, 5, 1, 0), 0);
        assert_eq!(conv_output_len(2, 5, 1, 2), 2);
    }
}
