//! Packed, register-blocked f32 GEMM and im2col/col2im — the convolution
//! engine behind `eva2_cnn::Conv2d`.
//!
//! # Why this exists
//!
//! EVA²'s performance story rests on the cost asymmetry between full CNN
//! execution (key frames) and suffix-only execution (predicted frames). For
//! the software reproduction to *measure* that asymmetry honestly, the
//! forward pass must be compute-bound rather than interpreter-bound: with
//! RFBME's fast path in place, key frames — dominated by the prefix GEMM —
//! are the pipeline's critical path, so every GFLOP/s left on the table
//! here inflates the apparent AMC savings. This module lowers convolution
//! to matrix multiplication, the same transformation Caffe used for the
//! networks the paper evaluates, and drives it with a register-blocked
//! micro-kernel.
//!
//! # Lowering
//!
//! For an input of shape `C_in × H × W` and a square `K × K` kernel with
//! stride `S` and padding `P`:
//!
//! * [`im2col_into`] unfolds every receptive-field patch into one *column*
//!   of a `(C_in·K²) × (H_out·W_out)` matrix. Patches are laid out so that
//!   the weight tensor `[oc][ic][ky][kx]`, flattened row-major, is already
//!   the left-hand matrix — no weight repacking is needed.
//! * [`gemm_nn`] computes `C += A·B` with `A = weights (C_out × C_in·K²)`
//!   and `B = cols`, producing the output activation directly in
//!   channel-major `Tensor3` layout.
//! * The backward pass reuses the same packing: `∂W = ∂Y · colsᵀ`
//!   ([`gemm_nt`]), `∂cols = Wᵀ · ∂Y` ([`gemm_tn`]), and [`col2im_into`]
//!   scatter-adds `∂cols` back to `∂X`.
//!
//! # Blocking scheme
//!
//! All three transpose variants run one loop nest (BLIS-style):
//!
//! 1. `A` is packed once into [`MR`]-row panels in *kernel order* — the
//!    `MR` values needed at depth step `p` are contiguous (`pack.rs`).
//! 2. For each [`NC`]-wide column block and [`KC`]-deep depth block, the
//!    corresponding `B` panel is packed into [`NR`]-column panels
//!    (`KC × NC × 4 B ≈ 256 KB`, sized to stay L2-resident while every row
//!    panel of `A` streams against it).
//! 3. The inner loops walk `MR × NR` tiles of `C`, each computed by the
//!    register-blocked micro-kernel (`microkernel.rs`): `MR·NR = 64`
//!    accumulators held in registers across the whole depth block, `MR`
//!    independent 16-wide FMAs per depth step, zero loads from `C` until
//!    the block completes.
//!
//! Ragged `M`/`N` edges are zero-padded during packing so the micro-kernel
//! never branches on tile shape; ragged `K` tails just shorten the depth
//! loop. Transposed operands (`gemm_nt`, `gemm_tn`) are handled by the
//! *packers* through strided views, so no transpose is ever materialised
//! and the hot loop is identical for all variants.
//!
//! The packed panels live in [`GemmScratch`] (`pack_a`/`pack_b`), so
//! steady-state frame processing packs into the same allocations every
//! frame. The PR-1 AXPY-panel kernel survives as [`gemm_nn_axpy`]: it is
//! the measured baseline for the `gemm_micro_over_axpy` trajectory ratio
//! and an independent reference for equivalence tests.
//!
//! With the `parallel` crate feature, large [`gemm_nn`] products split the
//! `N` dimension across scoped threads: `A` is packed once and shared
//! read-only, each thread packs its own `B` column stripe (so packing cost
//! is amortised, not duplicated per row block) and accumulates into its own
//! output stripe, which the caller folds back into `C` after the join —
//! per-thread writes stay disjoint without locking. Small products stay
//! single-threaded — see [`PAR_THRESHOLD`].
//!
//! # Scratch reuse
//!
//! [`GemmScratch`] owns the im2col buffers and the packed GEMM panels.
//! Callers that process many frames (the AMC executor, the training loop)
//! hold one scratch and pass it to [`conv2d_forward`]/[`conv2d_backward`],
//! so steady-state execution performs **no** per-frame allocation in the
//! convolution engine. One-shot callers can use [`with_thread_scratch`],
//! which reuses a thread-local scratch.
//!
//! # Reproducing the benchmarks
//!
//! ```text
//! cargo bench -p eva2-bench --bench cnn -- gemm_micro   # micro-kernel vs AXPY
//! cargo bench -p eva2-bench --bench cnn -- conv_paths   # naive vs GEMM
//! cargo bench -p eva2-bench --bench sparse -- suffix    # sparse suffix
//! cargo run --release -p eva2-bench --bin bench_conv    # BENCH_conv.json
//! ```
//!
//! GFLOP/s for a `M×N×K` product is `2·M·N·K / median_ns`; the committed
//! `BENCH_conv.json` at the repository root records the `gemm_micro/*`
//! entries (micro-kernel vs AXPY on the key-frame prefix GEMM shape) and
//! the `gemm_micro_over_axpy` ratio the CI gate tracks. Re-measure after
//! touching this module — the numbers depend on `.cargo/config.toml`'s
//! `target-cpu=native`.

// lint: hot-path

use crate::microkernel::{add_tile, microkernel, microkernel_direct, store_tile_bias};
use crate::pack::{pack_a_block, pack_b_block, MatRef};
use crate::shape::Shape3;
use crate::tensor::Tensor3;
use std::cell::RefCell;

pub use crate::pack::{MR, NR};

/// Depth-blocking factor: the `K` extent of one packed `B` panel (and of
/// one micro-kernel accumulation run).
pub const KC: usize = 256;

/// Column-blocking factor: the `N` extent of one packed `B` panel.
/// `KC × NC` f32 ≈ 256 KB, sized to stay L2-resident while every `MR`-row
/// panel of `A` streams against it.
pub const NC: usize = 256;

/// Minimum `M·N·K` before the `parallel` feature splits [`gemm_nn`]'s
/// packed B-panels across threads; below this the spawn overhead dominates.
#[cfg(feature = "parallel")]
pub const PAR_THRESHOLD: usize = 1 << 18;

/// Output spatial length of a convolution along one axis (floor convention,
/// matching `LayerGeometry::output_len` in `eva2-cnn`).
pub fn conv_output_len(n: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    let padded = n + 2 * padding;
    if padded < kernel {
        0
    } else {
        (padded - kernel) / stride + 1
    }
}

/// Packed-panel scratch for the GEMM driver (kernel-ordered A row-panels
/// and B column-panels — see `pack.rs` for the layout).
#[derive(Debug, Default)]
pub(crate) struct PackBufs {
    /// All of `A`, packed per [`KC`] depth block into [`MR`]-row panels.
    a: Vec<f32>,
    /// One `KC × NC` block of `B`, packed into [`NR`]-column panels.
    b: Vec<f32>,
}

/// Reusable buffers for the im2col-lowered convolution engine.
///
/// Holding one `GemmScratch` across frames eliminates steady-state heap
/// allocation (the buffers grow to the largest layer seen, then stabilise):
/// `cols`/`cols_grad` hold the im2col patch matrices, `packs` the
/// kernel-ordered GEMM panels, and `sparse_out` the position-major
/// accumulator of the sparse conv-head gather path.
#[derive(Debug, Default)]
pub struct GemmScratch {
    /// im2col patch matrix, `(C_in·K²) × (H_out·W_out)`.
    cols: Vec<f32>,
    /// Gradient w.r.t. `cols` in the backward pass.
    cols_grad: Vec<f32>,
    /// Packed GEMM panels.
    packs: PackBufs,
    /// Position-major (`H·W × C_out`) accumulator for sparse conv gathers.
    sparse_out: Vec<f32>,
}

impl GemmScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently held by the scratch buffers.
    pub fn capacity_bytes(&self) -> usize {
        (self.cols.capacity()
            + self.cols_grad.capacity()
            + self.packs.a.capacity()
            + self.packs.b.capacity()
            + self.sparse_out.capacity())
            * std::mem::size_of::<f32>()
    }

    /// Borrows the position-major sparse-gather accumulator, resized to
    /// `len` and **zero-filled** — callers accumulate (`+=`) into it, so
    /// the zeroing is part of the contract, not an implementation detail.
    ///
    /// Exposed for `eva2_cnn`'s sparse conv-head path, which accumulates
    /// transposed-weight gathers here before the final channel-major store.
    pub fn sparse_out_buffer(&mut self, len: usize) -> &mut [f32] {
        self.sparse_out.clear();
        self.sparse_out.resize(len, 0.0);
        &mut self.sparse_out
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<GemmScratch> = RefCell::new(GemmScratch::new());
}

/// Runs `f` with the calling thread's shared [`GemmScratch`].
///
/// Lets one-shot conv calls (tests, generic `Layer::forward`) reuse buffers
/// without threading a scratch through every signature. Re-entrant calls
/// fall back to a fresh scratch.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut GemmScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut GemmScratch::new()),
    })
}

/// The eight-wide AXPY used by the sparse-aware layers: `y += alpha * x`.
///
/// Feeding a suffix from non-zero activation entries turns each survivor
/// into one AXPY over a transposed weight row, keeping the skip-zero path
/// as vectorizable as the dense path it replaces.
///
/// # Panics
///
/// Panics when `x` and `y` lengths differ.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let n8 = x.len() - x.len() % 8;
    let (xh, xt) = x.split_at(n8);
    let (yh, yt) = y.split_at_mut(n8);
    for (xc, yc) in xh.chunks_exact(8).zip(yh.chunks_exact_mut(8)) {
        for lane in 0..8 {
            yc[lane] += alpha * xc[lane];
        }
    }
    for (xv, yv) in xt.iter().zip(yt.iter_mut()) {
        *yv += alpha * xv;
    }
}

// ---------------------------------------------------------------------------
// Packed micro-kernel driver
// ---------------------------------------------------------------------------

/// Packs all of `a` (an `m × k` strided view) into `buf`, kernel-ordered:
/// depth block starting at `kb` lives at offset `kb * m_panels * MR`.
fn pack_a_full(a: MatRef<'_>, m: usize, k: usize, buf: &mut Vec<f32>) {
    let m_panels = m.div_ceil(MR);
    buf.resize(k * m_panels * MR, 0.0);
    for kb in (0..k).step_by(KC) {
        let kc = KC.min(k - kb);
        pack_a_block(a, m, kb, kc, &mut buf[kb * m_panels * MR..]);
    }
}

/// The packed loop nest over columns `jc0..jc0+nc_total` of `b`, writing
/// into `c` (row-major, leading dimension `ldc`, whose column 0 maps to
/// `b` column `jc0`). `packed_a` must come from [`pack_a_full`].
#[allow(clippy::too_many_arguments)] // the full blocking state, spelled out
fn packed_loop(
    m: usize,
    k: usize,
    packed_a: &[f32],
    b: MatRef<'_>,
    jc0: usize,
    nc_total: usize,
    c: &mut [f32],
    ldc: usize,
    pack_b: &mut Vec<f32>,
) {
    let m_panels = m.div_ceil(MR);
    for jc in (0..nc_total).step_by(NC) {
        let nc = NC.min(nc_total - jc);
        let n_panels = nc.div_ceil(NR);
        for kb in (0..k).step_by(KC) {
            let kc = KC.min(k - kb);
            pack_b.resize(n_panels * NR * kc, 0.0);
            pack_b_block(b, kb, kc, jc0 + jc, nc, pack_b);
            let a_block = &packed_a[kb * m_panels * MR..];
            for ip in 0..m_panels {
                let mr = MR.min(m - ip * MR);
                let a_panel = &a_block[ip * MR * kc..(ip + 1) * MR * kc];
                for jp in 0..n_panels {
                    let nr = NR.min(nc - jp * NR);
                    let b_panel = &pack_b[jp * NR * kc..(jp + 1) * NR * kc];
                    let tile = microkernel(kc, a_panel, b_panel);
                    add_tile(&tile, c, ldc, ip * MR, jc + jp * NR, mr, nr);
                }
            }
        }
    }
}

/// Serial packed GEMM over strided operand views: `C += A·B`.
fn gemm_packed(
    m: usize,
    n: usize,
    k: usize,
    a: MatRef<'_>,
    b: MatRef<'_>,
    c: &mut [f32],
    packs: &mut PackBufs,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    pack_a_full(a, m, k, &mut packs.a);
    packed_loop(m, k, &packs.a, b, 0, n, c, n, &mut packs.b);
}

/// N-split parallel [`gemm_nn`]: `A` packed once and shared, each thread
/// packs and multiplies its own column stripe of `B` into a private output
/// stripe, folded back into `C` after the join.
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)] // mirrors gemm_nn plus the thread count
fn gemm_nn_split(
    threads: usize,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    packs: &mut PackBufs,
) {
    let a_view = MatRef::new(a, k, 1);
    let b_view = MatRef::new(b, n, 1);
    let threads = threads.min(n.div_ceil(NR));
    if threads <= 1 || m == 0 || n == 0 || k == 0 {
        gemm_packed(m, n, k, a_view, b_view, c, packs);
        return;
    }
    pack_a_full(a_view, m, k, &mut packs.a);
    let packed_a: &[f32] = &packs.a;
    // Stripe widths are NR-aligned so no tile straddles two threads.
    let stripe = n.div_ceil(NR).div_ceil(threads) * NR;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        let mut j0 = 0;
        while j0 < n {
            let w = stripe.min(n - j0);
            handles.push(s.spawn(move || {
                let mut out = vec![0.0f32; m * w];
                let mut pack_b = Vec::new();
                packed_loop(m, k, packed_a, b_view, j0, w, &mut out, w, &mut pack_b);
                (j0, w, out)
            }));
            j0 += w;
        }
        for handle in handles {
            // A worker panic is already a crash in flight; re-raising it on
            // the coordinating thread is the only sound continuation.
            let (j0, w, out) = handle.join().expect("gemm worker panicked"); // lint:allow(no-panic)
            for (c_row, o_row) in c.chunks_exact_mut(n).zip(out.chunks_exact(w)) {
                for (cv, ov) in c_row[j0..j0 + w].iter_mut().zip(o_row) {
                    *cv += ov;
                }
            }
        }
    });
}

#[cfg(feature = "parallel")]
fn auto_threads(m: usize, n: usize, k: usize) -> usize {
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    if threads > 1 && m * n * k >= PAR_THRESHOLD && n >= 2 * NR * threads {
        threads
    } else {
        1
    }
}

fn gemm_nn_scratch(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    packs: &mut PackBufs,
) {
    #[cfg(feature = "parallel")]
    {
        let threads = auto_threads(m, n, k);
        if threads > 1 {
            gemm_nn_split(threads, m, n, k, a, b, c, packs);
            return;
        }
    }
    gemm_packed(
        m,
        n,
        k,
        MatRef::new(a, k, 1),
        MatRef::new(b, n, 1),
        c,
        packs,
    );
}

fn assert_nn_dims(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &[f32], who: &str) {
    assert_eq!(a.len(), m * k, "{who}: A is not M×K");
    assert_eq!(b.len(), k * n, "{who}: B is not K×N");
    assert_eq!(c.len(), m * n, "{who}: C is not M×N");
}

/// `C += A · B` for row-major `A: M×K`, `B: K×N`, `C: M×N`.
///
/// Runs the packed [`MR`]`×`[`NR`] micro-kernel; with the `parallel`
/// feature, large products split `B`'s packed column panels across scoped
/// threads (see the module docs).
///
/// # Panics
///
/// Panics when a buffer length does not match its matrix dimensions.
pub fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_nn_dims(m, n, k, a, b, c, "gemm_nn");
    with_thread_scratch(|s| gemm_nn_scratch(m, n, k, a, b, c, &mut s.packs));
}

/// [`gemm_nn`] with an explicit worker-thread count.
///
/// Exists so equivalence tests (and tuning runs) can exercise the N-split
/// code path on hosts where `available_parallelism` is 1; production
/// callers should use [`gemm_nn`], which picks the count itself. `threads`
/// is clamped so every worker owns at least one [`NR`]-column panel.
///
/// # Panics
///
/// Panics when a buffer length does not match its matrix dimensions.
#[cfg(feature = "parallel")]
pub fn gemm_nn_threads(
    threads: usize,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    assert_nn_dims(m, n, k, a, b, c, "gemm_nn_threads");
    with_thread_scratch(|s| gemm_nn_split(threads.max(1), m, n, k, a, b, c, &mut s.packs));
}

/// The PR-1 AXPY-panel `C += A·B` kernel.
///
/// Kept (single-threaded, unchanged) as the measured baseline for the
/// `gemm_micro_over_axpy` trajectory ratio and as an independent reference
/// implementation for equivalence tests. The innermost operation is
/// `c_row += a[i][p] * b_row`, a unit-stride AXPY the compiler
/// auto-vectorizes, with the depth dimension blocked by [`KC`].
///
/// # Panics
///
/// Panics when a buffer length does not match its matrix dimensions.
pub fn gemm_nn_axpy(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_nn_dims(m, n, k, a, b, c, "gemm_nn_axpy");
    for kb in (0..k).step_by(KC) {
        let kend = (kb + KC).min(k);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for p in kb..kend {
                axpy(a_row[p], &b[p * n..(p + 1) * n], c_row);
            }
        }
    }
}

/// `C += A · Bᵀ` for row-major `A: M×K`, `B: N×K`, `C: M×N`.
///
/// `Bᵀ` is handled by the packer through a strided view — no transpose is
/// materialised, and the micro-kernel path is identical to [`gemm_nn`].
/// Used for the weight gradient `∂W = ∂Y · colsᵀ`.
///
/// # Panics
///
/// Panics when a buffer length does not match its matrix dimensions.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nt: A is not M×K");
    assert_eq!(b.len(), n * k, "gemm_nt: B is not N×K");
    assert_eq!(c.len(), m * n, "gemm_nt: C is not M×N");
    with_thread_scratch(|s| gemm_nt_scratch(m, n, k, a, b, c, &mut s.packs));
}

fn gemm_nt_scratch(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    packs: &mut PackBufs,
) {
    // Product-B = Bᵀ: element (p, j) = b[j*k + p] ⇒ strides (1, k).
    gemm_packed(
        m,
        n,
        k,
        MatRef::new(a, k, 1),
        MatRef::new(b, 1, k),
        c,
        packs,
    );
}

/// `C += Aᵀ · B` for row-major `A: M×K`, `B: M×N`, `C: K×N`.
///
/// `Aᵀ` is handled by the packer through a strided view. Used for the
/// input gradient `∂cols = Wᵀ · ∂Y`.
///
/// # Panics
///
/// Panics when a buffer length does not match its matrix dimensions.
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_tn: A is not M×K");
    assert_eq!(b.len(), m * n, "gemm_tn: B is not M×N");
    assert_eq!(c.len(), k * n, "gemm_tn: C is not K×N");
    with_thread_scratch(|s| gemm_tn_scratch(m, n, k, a, b, c, &mut s.packs));
}

fn gemm_tn_scratch(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    packs: &mut PackBufs,
) {
    // Product dims: C (k×n) += Aᵀ (k×m) · B (m×n); product-A element
    // (i, p) = a[p*k + i] ⇒ strides (1, k).
    gemm_packed(
        k,
        n,
        m,
        MatRef::new(a, 1, k),
        MatRef::new(b, n, 1),
        c,
        packs,
    );
}

/// Unfolds `input` into the im2col patch matrix.
///
/// `cols` is resized to `(C_in·K²) × (H_out·W_out)` and fully overwritten.
/// Row `((ic·K) + ky)·K + kx` holds, for every output position `(oy, ox)`,
/// the input sample at `(ic, oy·S − P + ky, ox·S − P + kx)` (zero outside
/// the frame). Stride-1 rows are bulk `copy_from_slice` copies.
///
/// Returns `(K_dim, N)` = (rows, columns) of the packed matrix.
pub fn im2col_into(
    input: &Tensor3,
    kernel: usize,
    stride: usize,
    padding: usize,
    cols: &mut Vec<f32>,
) -> (usize, usize) {
    let shape = input.shape();
    let out_h = conv_output_len(shape.height, kernel, stride, padding);
    let out_w = conv_output_len(shape.width, kernel, stride, padding);
    let k_dim = shape.channels * kernel * kernel;
    let n = out_h * out_w;
    // Length-only resize (grows zero-filled, shrinks by truncation); every
    // retained element is overwritten below.
    cols.resize(k_dim * n, 0.0);
    im2col_write(input, kernel, stride, padding, cols);
    (k_dim, n)
}

/// [`im2col_into`]'s body over a pre-sized slice: writes the full
/// `(C_in·K²) × (H_out·W_out)` patch matrix into `cols`, overwriting every
/// element. The batched convolution path lays several frames' matrices out
/// as consecutive sections of one scratch buffer and calls this per frame.
fn im2col_write(input: &Tensor3, kernel: usize, stride: usize, padding: usize, cols: &mut [f32]) {
    let shape = input.shape();
    let out_h = conv_output_len(shape.height, kernel, stride, padding);
    let out_w = conv_output_len(shape.width, kernel, stride, padding);
    let n = out_h * out_w;
    debug_assert_eq!(cols.len(), shape.channels * kernel * kernel * n);
    let p = padding as isize;
    for ic in 0..shape.channels {
        let plane = input.channel(ic);
        for ky in 0..kernel {
            for kx in 0..kernel {
                let row = ((ic * kernel) + ky) * kernel + kx;
                let dst_row = &mut cols[row * n..(row + 1) * n];
                for oy in 0..out_h {
                    let iy = (oy * stride) as isize - p + ky as isize;
                    let dst = &mut dst_row[oy * out_w..(oy + 1) * out_w];
                    if iy < 0 || iy as usize >= shape.height {
                        dst.fill(0.0);
                        continue;
                    }
                    let src_row =
                        &plane[iy as usize * shape.width..(iy as usize + 1) * shape.width];
                    if stride == 1 {
                        // ix = ox − P + kx for ox in 0..out_w: one contiguous
                        // window, zero-filled where it leaves the frame.
                        let ix0 = kx as isize - p;
                        let lead = (-ix0).clamp(0, out_w as isize) as usize;
                        let start = ((ix0 + lead as isize) as usize).min(shape.width);
                        let body = (shape.width - start).min(out_w - lead);
                        dst[..lead].fill(0.0);
                        dst[lead..lead + body].copy_from_slice(&src_row[start..start + body]);
                        dst[lead + body..].fill(0.0);
                    } else {
                        for (ox, dv) in dst.iter_mut().enumerate() {
                            let ix = (ox * stride) as isize - p + kx as isize;
                            *dv = if ix >= 0 && (ix as usize) < shape.width {
                                src_row[ix as usize]
                            } else {
                                0.0
                            };
                        }
                    }
                }
            }
        }
    }
}

/// Scatter-adds a `cols`-shaped gradient back onto an input-shaped tensor
/// (the adjoint of [`im2col_into`]).
pub fn col2im_into(
    cols_grad: &[f32],
    kernel: usize,
    stride: usize,
    padding: usize,
    grad_in: &mut Tensor3,
) {
    let shape = grad_in.shape();
    let out_h = conv_output_len(shape.height, kernel, stride, padding);
    let out_w = conv_output_len(shape.width, kernel, stride, padding);
    let n = out_h * out_w;
    let p = padding as isize;
    for ic in 0..shape.channels {
        let plane = grad_in.channel_mut(ic);
        for ky in 0..kernel {
            for kx in 0..kernel {
                let row = ((ic * kernel) + ky) * kernel + kx;
                let src_row = &cols_grad[row * n..(row + 1) * n];
                for oy in 0..out_h {
                    let iy = (oy * stride) as isize - p + ky as isize;
                    if iy < 0 || iy as usize >= shape.height {
                        continue;
                    }
                    let dst =
                        &mut plane[iy as usize * shape.width..(iy as usize + 1) * shape.width];
                    let src = &src_row[oy * out_w..(oy + 1) * out_w];
                    for (ox, &gv) in src.iter().enumerate() {
                        let ix = (ox * stride) as isize - p + kx as isize;
                        if ix >= 0 && (ix as usize) < shape.width {
                            dst[ix as usize] += gv;
                        }
                    }
                }
            }
        }
    }
}

/// Single-depth-block convolution GEMM epilogue shared by the single-frame
/// and batched forward paths (`k_dim ≤ KC`): the unpacked-B micro-kernel
/// reads the row-major patch matrix `b` directly (no B-panel repack — the
/// tile's B slab is L1-resident at these shapes) and each output tile is
/// written in one `C = bias + A·B` pass ([`store_tile_bias`]), skipping the
/// zero/bias pre-init and the read-modify-write of the accumulate loop.
/// Ragged final column tiles go through one packed pad panel
/// (`pad_panel`), exactly as `pack_b_block` would lay them out.
///
/// Bit-identical to packed-B + bias-prefill + [`add_tile`]: the kernel sees
/// the same operand values in the same accumulation order, and
/// `bias + tile` is computed once either way.
#[allow(clippy::too_many_arguments)] // the full product + epilogue state
fn gemm_direct_bias(
    m: usize,
    n: usize,
    k_dim: usize,
    packed_a: &[f32],
    b: &[f32],
    bias: &[f32],
    out: &mut [f32],
    pad_panel: &mut Vec<f32>,
) {
    debug_assert!(k_dim <= KC && k_dim > 0 && n > 0);
    let m_panels = m.div_ceil(MR);
    let n_panels = n.div_ceil(NR);
    let full_panels = n / NR;
    if full_panels < n_panels {
        // Pack the ragged tail panel once (zero pad lanes).
        let nr = n - full_panels * NR;
        pad_panel.resize(NR * k_dim, 0.0);
        for p in 0..k_dim {
            let src = &b[p * n + full_panels * NR..(p + 1) * n];
            let dst = &mut pad_panel[p * NR..(p + 1) * NR];
            dst[..nr].copy_from_slice(src);
            dst[nr..].fill(0.0);
        }
    }
    for jp in 0..n_panels {
        let nr = NR.min(n - jp * NR);
        for ip in 0..m_panels {
            let mr = MR.min(m - ip * MR);
            let a_panel = &packed_a[ip * MR * k_dim..(ip + 1) * MR * k_dim];
            let tile = if jp < full_panels {
                microkernel_direct(k_dim, a_panel, &b[jp * NR..], n)
            } else {
                microkernel(k_dim, a_panel, pad_panel)
            };
            store_tile_bias(&tile, out, n, ip * MR, jp * NR, mr, nr, bias);
        }
    }
}

/// im2col + GEMM convolution forward pass.
///
/// `weights` is the flattened `[oc][ic][ky][kx]` filter bank, `bias` one
/// value per output channel. Returns the `C_out × H_out × W_out` output.
///
/// When the whole depth fits one [`KC`] block (`C_in·K² ≤ 256` — true for
/// every zoo prefix layer), the product runs through [`gemm_direct_bias`]:
/// the PR-4 batched innovations (unpacked-B micro-kernel, single-pass
/// `C = bias + A·B` store) ported to the single-frame path, bit-identical
/// to the packed accumulate loop it bypasses. Deeper products keep the
/// packed loop (which may N-split under the `parallel` feature).
///
/// # Panics
///
/// Panics when `weights`/`bias` lengths are inconsistent with
/// `out_channels`, `kernel`, and the input channel count.
#[allow(clippy::too_many_arguments)] // mirrors the conv geometry verbatim
pub fn conv2d_forward(
    input: &Tensor3,
    weights: &[f32],
    bias: &[f32],
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    scratch: &mut GemmScratch,
) -> Tensor3 {
    let shape = input.shape();
    let k_dim = shape.channels * kernel * kernel;
    assert_eq!(
        weights.len(),
        out_channels * k_dim,
        "conv2d_forward: weights"
    );
    assert_eq!(bias.len(), out_channels, "conv2d_forward: bias");
    let out_shape = Shape3::new(
        out_channels,
        conv_output_len(shape.height, kernel, stride, padding),
        conv_output_len(shape.width, kernel, stride, padding),
    );
    let (_, n) = im2col_into(input, kernel, stride, padding, &mut scratch.cols);
    let direct = k_dim > 0 && k_dim <= KC && n > 0 && out_channels > 0;
    // Keep the N-split for products the parallel feature would thread —
    // the serial direct path would silently serialize them (single-depth-
    // block N-splits round identically, so either route is bit-identical).
    #[cfg(feature = "parallel")]
    let direct = direct && auto_threads(out_channels, n, k_dim) == 1;
    if direct {
        pack_a_full(
            MatRef::new(weights, k_dim, 1),
            out_channels,
            k_dim,
            &mut scratch.packs.a,
        );
        // Every element is written by the store pass.
        let mut out = vec![0.0f32; out_channels * n];
        gemm_direct_bias(
            out_channels,
            n,
            k_dim,
            &scratch.packs.a,
            &scratch.cols,
            bias,
            &mut out,
            &mut scratch.packs.b,
        );
        return Tensor3::from_vec(out_shape, out);
    }
    let mut out = Tensor3::zeros(out_shape);
    for (oc, &b) in bias.iter().enumerate() {
        out.channel_mut(oc).fill(b);
    }
    gemm_nn_scratch(
        out_channels,
        n,
        k_dim,
        weights,
        &scratch.cols,
        out.as_mut_slice(),
        &mut scratch.packs,
    );
    out
}

/// Batched im2col + GEMM convolution forward pass over frames of identical
/// shape — the cross-stream key-frame path of the serving engine.
///
/// Numerically this is *bit-identical* to calling [`conv2d_forward`] once
/// per frame: each output element sees exactly the same operand values,
/// depth blocking, and accumulation order (frames never share micro-kernel
/// tiles, and the panel bytes fed to the kernel are byte-equal to the
/// per-frame path's). What the batch restructures is everything a
/// per-frame call pays per invocation:
///
/// * the weight matrix is packed into kernel-ordered `A` panels **once per
///   batch** instead of once per frame;
/// * the B-panel repack pass — a full read + write of `K_dim × N` per
///   frame — disappears: the micro-kernel reads the patch matrix
///   *directly* ([`microkernel_direct`]), which is profitable whenever the
///   depth fits one [`KC`] block (`C_in·K² ≤ 256`, true for every zoo
///   prefix layer) because each tile's `B` slab then stays L1-resident
///   across the whole `M` loop;
/// * each output is written in a single store pass `C = bias + A·B`
///   ([`store_tile_bias`]) instead of zeroed, bias-filled, and then
///   accumulated read-modify-write;
/// * the im2col scratch is sized once for the batch and written without
///   the per-call zero-fill.
///
/// Depths beyond one block fall back to the accumulate loop with packed B
/// (still sharing the batch A-pack). The batched loop stays
/// single-threaded even with the `parallel` feature, which keeps its
/// outputs bit-identical to the serial per-frame path on every host; for
/// single-depth-block shapes the feature's N-split rounds identically
/// anyway.
///
/// # Panics
///
/// Panics when the frames' shapes differ or `weights`/`bias` lengths are
/// inconsistent with the geometry.
#[allow(clippy::too_many_arguments)] // mirrors conv2d_forward verbatim
pub fn conv2d_forward_batch(
    inputs: &[Tensor3],
    weights: &[f32],
    bias: &[f32],
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    scratch: &mut GemmScratch,
) -> Vec<Tensor3> {
    let Some(first) = inputs.first() else {
        return Vec::new();
    };
    let shape = first.shape();
    assert!(
        inputs.iter().all(|t| t.shape() == shape),
        "conv2d_forward_batch: frames must share one shape"
    );
    let k_dim = shape.channels * kernel * kernel;
    assert_eq!(
        weights.len(),
        out_channels * k_dim,
        "conv2d_forward_batch: weights"
    );
    assert_eq!(bias.len(), out_channels, "conv2d_forward_batch: bias");
    let out_shape = Shape3::new(
        out_channels,
        conv_output_len(shape.height, kernel, stride, padding),
        conv_output_len(shape.width, kernel, stride, padding),
    );
    let n = out_shape.plane_len();
    if n == 0 || k_dim == 0 || out_channels == 0 {
        return inputs
            .iter()
            .map(|_| {
                let mut out = Vec::with_capacity(out_channels * n);
                for &b in bias {
                    out.resize(out.len() + n, b);
                }
                Tensor3::from_vec(out_shape, out)
            })
            .collect();
    }
    // One A-pack serves every frame in the batch.
    pack_a_full(
        MatRef::new(weights, k_dim, 1),
        out_channels,
        k_dim,
        &mut scratch.packs.a,
    );
    // Sectioned row-major patch matrices, one per frame, sized once for
    // the batch (fully overwritten, so no per-frame zero-fill).
    let section = k_dim * n;
    let cols = &mut scratch.cols;
    if cols.len() < section * inputs.len() {
        cols.resize(section * inputs.len(), 0.0);
    }
    for (input, dst) in inputs.iter().zip(cols.chunks_exact_mut(section)) {
        im2col_write(input, kernel, stride, padding, dst);
    }
    let mut outs = Vec::with_capacity(inputs.len());
    if k_dim <= KC {
        // Single-depth-block fast path, shared with the single-frame
        // conv2d_forward: unpacked-B micro-kernel + one-pass bias store
        // (`gemm_direct_bias`). What the batch adds on top is the single
        // A-pack above serving every frame.
        for f in 0..inputs.len() {
            let b = &cols[f * section..(f + 1) * section];
            let mut out = vec![0.0f32; out_channels * n];
            gemm_direct_bias(
                out_channels,
                n,
                k_dim,
                &scratch.packs.a,
                b,
                bias,
                &mut out,
                &mut scratch.packs.b,
            );
            outs.push(Tensor3::from_vec(out_shape, out));
        }
    } else {
        // Multi-depth-block fallback: the accumulate loop with packed B
        // (A still packed once per batch).
        for f in 0..inputs.len() {
            let mut out = Vec::with_capacity(out_channels * n);
            for &b in bias {
                out.resize(out.len() + n, b);
            }
            packed_loop(
                out_channels,
                k_dim,
                &scratch.packs.a,
                MatRef::new(&cols[f * section..(f + 1) * section], n, 1),
                0,
                n,
                &mut out,
                n,
                &mut scratch.packs.b,
            );
            outs.push(Tensor3::from_vec(out_shape, out));
        }
    }
    outs
}

/// im2col + GEMM convolution backward pass.
///
/// Accumulates the weight gradient into `grad_w` (`∂W += ∂Y·colsᵀ`) and the
/// bias gradient into `grad_b`, and returns the input gradient
/// (`col2im(Wᵀ·∂Y)`).
///
/// # Panics
///
/// Panics when buffer lengths are inconsistent with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward(
    input: &Tensor3,
    weights: &[f32],
    grad_out: &Tensor3,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    scratch: &mut GemmScratch,
    grad_w: &mut [f32],
    grad_b: &mut [f32],
) -> Tensor3 {
    let shape = input.shape();
    let k_dim = shape.channels * kernel * kernel;
    assert_eq!(
        weights.len(),
        out_channels * k_dim,
        "conv2d_backward: weights"
    );
    assert_eq!(grad_w.len(), weights.len(), "conv2d_backward: grad_w");
    assert_eq!(grad_b.len(), out_channels, "conv2d_backward: grad_b");
    let (_, n) = im2col_into(input, kernel, stride, padding, &mut scratch.cols);
    assert_eq!(
        grad_out.shape().len(),
        out_channels * n,
        "conv2d_backward: grad_out"
    );
    for (oc, gb) in grad_b.iter_mut().enumerate() {
        *gb += grad_out.channel(oc).iter().sum::<f32>();
    }
    gemm_nt_scratch(
        out_channels,
        k_dim,
        n,
        grad_out.as_slice(),
        &scratch.cols,
        grad_w,
        &mut scratch.packs,
    );
    scratch.cols_grad.clear();
    scratch.cols_grad.resize(k_dim * n, 0.0);
    gemm_tn_scratch(
        out_channels,
        n,
        k_dim,
        weights,
        grad_out.as_slice(),
        &mut scratch.cols_grad,
        &mut scratch.packs,
    );
    let mut grad_in = Tensor3::zeros(shape);
    col2im_into(&scratch.cols_grad, kernel, stride, padding, &mut grad_in);
    grad_in
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_input(c: usize, h: usize, w: usize) -> Tensor3 {
        Tensor3::from_fn(Shape3::new(c, h, w), |ci, y, x| {
            ((ci * 31 + y * 7 + x * 3) % 13) as f32 - 6.0
        })
    }

    /// Direct scalar conv used as the test oracle.
    fn conv_reference(
        input: &Tensor3,
        weights: &[f32],
        bias: &[f32],
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Tensor3 {
        let s = input.shape();
        let out_shape = Shape3::new(
            out_channels,
            conv_output_len(s.height, kernel, stride, padding),
            conv_output_len(s.width, kernel, stride, padding),
        );
        let k_dim = s.channels * kernel * kernel;
        Tensor3::from_fn(out_shape, |oc, oy, ox| {
            let mut acc = bias[oc];
            for ic in 0..s.channels {
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        let iy = (oy * stride) as isize - padding as isize + ky as isize;
                        let ix = (ox * stride) as isize - padding as isize + kx as isize;
                        let w = weights[oc * k_dim + (ic * kernel + ky) * kernel + kx];
                        acc += w * input.get_padded(ic, iy, ix);
                    }
                }
            }
            acc
        })
    }

    fn weights_for(out_c: usize, in_c: usize, kernel: usize) -> (Vec<f32>, Vec<f32>) {
        let k_dim = in_c * kernel * kernel;
        let weights: Vec<f32> = (0..out_c * k_dim)
            .map(|i| ((i * 17 + 5) % 11) as f32 * 0.1 - 0.5)
            .collect();
        let bias: Vec<f32> = (0..out_c).map(|i| i as f32 * 0.25 - 0.5).collect();
        (weights, bias)
    }

    #[test]
    fn gemm_nn_matches_schoolbook() {
        let (m, n, k) = (5, 7, 9);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 5) as f32 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 * 0.5 - 1.0).collect();
        let mut c = vec![0.5f32; m * n];
        let mut expect = c.clone();
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    expect[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        gemm_nn(m, n, k, &a, &b, &mut c);
        for (got, want) in c.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-4, "{got} vs {want}");
        }
    }

    #[test]
    fn gemm_nn_matches_axpy_reference_across_blocks() {
        // Spans multiple KC depth blocks and NC column blocks plus ragged
        // tails in every dimension.
        let (m, n, k) = (MR + 3, NC + NR + 5, KC + 17);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 7) % 23) as f32 * 0.1 - 1.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 5) % 19) as f32 * 0.1 - 0.9)
            .collect();
        let mut c_micro = vec![0.25f32; m * n];
        let mut c_axpy = c_micro.clone();
        gemm_nn(m, n, k, &a, &b, &mut c_micro);
        gemm_nn_axpy(m, n, k, &a, &b, &mut c_axpy);
        for (got, want) in c_micro.iter().zip(&c_axpy) {
            assert!(
                (got - want).abs() < 2e-2 * (1.0 + want.abs()),
                "{got} vs {want}"
            );
        }
    }

    #[test]
    fn gemm_nt_and_tn_match_schoolbook() {
        let (m, n, k) = (4, 6, 5);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 4) as f32 - 1.5).collect();
        let bt: Vec<f32> = (0..n * k).map(|i| (i % 6) as f32 * 0.3).collect();
        let mut c = vec![0.0f32; m * n];
        gemm_nt(m, n, k, &a, &bt, &mut c);
        for i in 0..m {
            for j in 0..n {
                let want: f32 = (0..k).map(|p| a[i * k + p] * bt[j * k + p]).sum();
                assert!((c[i * n + j] - want).abs() < 1e-4);
            }
        }
        // gemm_tn: C (k×n) += Aᵀ B with A m×k, B m×n.
        let b: Vec<f32> = (0..m * n).map(|i| (i % 3) as f32 - 1.0).collect();
        let mut ct = vec![0.0f32; k * n];
        gemm_tn(m, n, k, &a, &b, &mut ct);
        for p in 0..k {
            for j in 0..n {
                let want: f32 = (0..m).map(|i| a[i * k + p] * b[i * n + j]).sum();
                assert!((ct[p * n + j] - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn im2col_identity_geometry_is_transpose_free_copy() {
        let input = seq_input(2, 3, 3);
        let mut cols = Vec::new();
        let (k_dim, n) = im2col_into(&input, 1, 1, 0, &mut cols);
        assert_eq!((k_dim, n), (2, 9));
        assert_eq!(&cols, input.as_slice());
    }

    #[test]
    fn conv_forward_matches_reference_across_geometries() {
        for &(c, h, w, oc, k, s, p) in &[
            (1usize, 5usize, 5usize, 1usize, 3usize, 1usize, 0usize),
            (2, 6, 5, 3, 3, 1, 1),
            (3, 8, 8, 4, 5, 2, 2),
            (2, 7, 9, 2, 1, 1, 0),
            (1, 4, 4, 2, 4, 4, 0),
            (2, 5, 5, 3, 3, 2, 0),
        ] {
            let input = seq_input(c, h, w);
            let (weights, bias) = weights_for(oc, c, k);
            let want = conv_reference(&input, &weights, &bias, oc, k, s, p);
            let got = with_thread_scratch(|scratch| {
                conv2d_forward(&input, &weights, &bias, oc, k, s, p, scratch)
            });
            assert_eq!(
                got.shape(),
                want.shape(),
                "shape for {c}x{h}x{w} k{k}s{s}p{p}"
            );
            for (a, b) in got.iter().zip(want.iter()) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "conv mismatch: {a} vs {b} (k{k}s{s}p{p})"
                );
            }
        }
    }

    #[test]
    fn conv_backward_gradcheck() {
        let (c, h, w, oc, k, s, p) = (2, 5, 5, 3, 3, 1, 1);
        let input = seq_input(c, h, w).map(|v| (v * 0.37).sin());
        let (weights, bias) = weights_for(oc, c, k);
        let mut scratch = GemmScratch::new();
        let out = conv2d_forward(&input, &weights, &bias, oc, k, s, p, &mut scratch);
        let grad_out = Tensor3::filled(out.shape(), 1.0);
        let mut grad_w = vec![0.0f32; weights.len()];
        let mut grad_b = vec![0.0f32; bias.len()];
        let grad_in = conv2d_backward(
            &input,
            &weights,
            &grad_out,
            oc,
            k,
            s,
            p,
            &mut scratch,
            &mut grad_w,
            &mut grad_b,
        );
        let eps = 1e-2;
        // Input gradient.
        for &(y, x) in &[(0usize, 0usize), (2, 3), (4, 4)] {
            let mut plus = input.clone();
            plus.set(1, y, x, input.get(1, y, x) + eps);
            let mut minus = input.clone();
            minus.set(1, y, x, input.get(1, y, x) - eps);
            let lp: f32 = conv2d_forward(&plus, &weights, &bias, oc, k, s, p, &mut scratch)
                .iter()
                .sum();
            let lm: f32 = conv2d_forward(&minus, &weights, &bias, oc, k, s, p, &mut scratch)
                .iter()
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.get(1, y, x);
            assert!(
                (numeric - analytic).abs() < 1e-2 * (1.0 + numeric.abs()),
                "grad_in ({y},{x}): numeric {numeric} vs analytic {analytic}"
            );
        }
        // Weight gradient.
        for wi in [0usize, 7, weights.len() - 1] {
            let mut wp = weights.clone();
            wp[wi] += eps;
            let mut wm = weights.clone();
            wm[wi] -= eps;
            let lp: f32 = conv2d_forward(&input, &wp, &bias, oc, k, s, p, &mut scratch)
                .iter()
                .sum();
            let lm: f32 = conv2d_forward(&input, &wm, &bias, oc, k, s, p, &mut scratch)
                .iter()
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_w[wi]).abs() < 1e-2 * (1.0 + numeric.abs()),
                "grad_w [{wi}]: numeric {numeric} vs analytic {}",
                grad_w[wi]
            );
        }
        // Bias gradient: dL/db = number of output positions per channel.
        let n_out = out.shape().plane_len() as f32;
        for gb in &grad_b {
            assert!((gb - n_out).abs() < 1e-3);
        }
    }

    #[test]
    fn conv_forward_batch_bit_identical_to_single_calls() {
        let mut scratch = GemmScratch::new();
        for &(c, h, w, oc, k, s, p) in &[
            (2usize, 6usize, 5usize, 3usize, 3usize, 1usize, 1usize),
            (3, 8, 8, 4, 5, 2, 2),
            (1, 4, 4, 2, 4, 4, 0),
            // Ragged N (25 = one full NR panel + 9 pad lanes).
            (2, 5, 5, 3, 3, 1, 1),
            // K_dim = 8·6² = 288 > KC: exercises the multi-depth-block
            // fallback, with a ragged N of 49.
            (8, 8, 8, 4, 6, 1, 2),
        ] {
            let frames: Vec<Tensor3> = (0..4)
                .map(|f| seq_input(c, h, w).map(|v| (v + f as f32 * 0.37).sin()))
                .collect();
            let (weights, bias) = weights_for(oc, c, k);
            let batched = conv2d_forward_batch(&frames, &weights, &bias, oc, k, s, p, &mut scratch);
            assert_eq!(batched.len(), frames.len());
            for (frame, got) in frames.iter().zip(&batched) {
                let want = conv2d_forward(frame, &weights, &bias, oc, k, s, p, &mut scratch);
                assert_eq!(
                    got.as_slice(),
                    want.as_slice(),
                    "batched conv must be bit-identical (k{k}s{s}p{p})"
                );
            }
        }
        assert!(
            conv2d_forward_batch(&[], &[], &[], 0, 1, 1, 0, &mut scratch).is_empty(),
            "empty batch"
        );
    }

    #[test]
    fn direct_single_frame_conv_bit_identical_to_packed_loop() {
        // conv2d_forward's single-depth-block fast path (unpacked-B kernel
        // + one-pass bias store) must produce the exact bits of the packed
        // accumulate loop it bypasses: bias-prefill + gemm_nn over the same
        // patch matrix.
        let mut scratch = GemmScratch::new();
        for &(c, h, w, oc, k, s, p) in &[
            (2usize, 6usize, 5usize, 3usize, 3usize, 1usize, 1usize),
            (3, 8, 8, 4, 5, 2, 2),
            (1, 4, 4, 2, 4, 4, 0),
            // Ragged N (25 = one full NR panel + 9 pad lanes).
            (2, 5, 5, 3, 3, 1, 1),
            // N smaller than one NR panel.
            (2, 3, 3, 5, 3, 1, 0),
        ] {
            let input = seq_input(c, h, w);
            let (weights, bias) = weights_for(oc, c, k);
            let got = conv2d_forward(&input, &weights, &bias, oc, k, s, p, &mut scratch);
            let k_dim = c * k * k;
            assert!(k_dim <= KC, "test shapes must take the direct path");
            let mut cols = Vec::new();
            let (_, n) = im2col_into(&input, k, s, p, &mut cols);
            let mut want = vec![0.0f32; oc * n];
            for (ch, &b) in bias.iter().enumerate() {
                want[ch * n..(ch + 1) * n].fill(b);
            }
            gemm_nn(oc, n, k_dim, &weights, &cols, &mut want);
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "direct path must be bit-identical (k{k}s{s}p{p})"
            );
        }
    }

    #[test]
    fn scratch_reuse_across_shapes_is_safe() {
        let mut scratch = GemmScratch::new();
        // Large then small: stale tail data must not leak into results.
        let big = seq_input(3, 10, 10);
        let (wb, bb) = weights_for(4, 3, 3);
        let _ = conv2d_forward(&big, &wb, &bb, 4, 3, 1, 1, &mut scratch);
        let small = seq_input(1, 4, 4);
        let (ws, bs) = weights_for(2, 1, 3);
        let got = conv2d_forward(&small, &ws, &bs, 2, 3, 1, 0, &mut scratch);
        let want = conv_reference(&small, &ws, &bs, 2, 3, 1, 0);
        for (a, b) in got.iter().zip(want.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn output_len_edge_cases() {
        assert_eq!(conv_output_len(5, 3, 1, 0), 3);
        assert_eq!(conv_output_len(5, 3, 2, 1), 3);
        assert_eq!(conv_output_len(2, 5, 1, 0), 0);
        assert_eq!(conv_output_len(2, 5, 1, 2), 2);
    }
}
