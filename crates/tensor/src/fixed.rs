//! Q8.8 16-bit fixed-point arithmetic.
//!
//! The EVA² warp engine is a 16-bit fixed-point datapath: its bilinear
//! interpolator "computes wide intermediate values and then shifts the final
//! result back to a 16-bit fixed-point representation" (§III-B of the paper).
//! [`Fixed`] models that datapath bit-accurately so the software warp engine
//! in `eva2-core` reproduces the hardware's rounding behaviour, and tests can
//! bound the quantization error against the `f32` reference path.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Number of fractional bits in the Q8.8 representation.
pub const FRAC_BITS: u32 = 8;

/// The fixed-point scale factor (`2^FRAC_BITS`).
pub const SCALE: i32 = 1 << FRAC_BITS;

/// A Q8.8 signed fixed-point value stored in 16 bits.
///
/// Addition and subtraction saturate at the 16-bit boundaries, matching
/// hardware adders with saturation logic. Multiplication widens to 32 bits
/// internally and shifts back, exactly like the warp engine's weighting units
/// (Fig 11).
///
/// # Example
///
/// ```
/// use eva2_tensor::Fixed;
///
/// let a = Fixed::from_f32(1.5);
/// let b = Fixed::from_f32(0.25);
/// assert_eq!((a * b).to_f32(), 0.375);
/// assert_eq!((a + b).to_f32(), 1.75);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Fixed(i16);

impl Fixed {
    /// The zero value.
    pub const ZERO: Fixed = Fixed(0);
    /// The value 1.0.
    pub const ONE: Fixed = Fixed(SCALE as i16);
    /// Largest representable value (≈ 127.996).
    pub const MAX: Fixed = Fixed(i16::MAX);
    /// Smallest representable value (−128.0).
    pub const MIN: Fixed = Fixed(i16::MIN);

    /// Converts from `f32`, rounding to nearest and saturating.
    pub fn from_f32(v: f32) -> Self {
        let scaled = (v * SCALE as f32).round();
        Fixed(scaled.clamp(i16::MIN as f32, i16::MAX as f32) as i16)
    }

    /// Converts back to `f32` (exact).
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / SCALE as f32
    }

    /// Constructs from the raw 16-bit pattern.
    pub const fn from_bits(bits: i16) -> Self {
        Fixed(bits)
    }

    /// The raw 16-bit pattern.
    pub const fn to_bits(self) -> i16 {
        self.0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Self) -> Self {
        Fixed(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Fixed(self.0.saturating_sub(rhs.0))
    }

    /// Fixed-point multiply: widen to 32 bits, multiply, shift back with
    /// truncation toward negative infinity (an arithmetic right shift),
    /// saturate to 16 bits.
    ///
    /// Truncation (not rounding) matches the single `>>` barrel shifter at
    /// the output of the interpolator datapath in Fig 11.
    pub fn wrapping_mul_shift(self, rhs: Self) -> Self {
        let wide = (self.0 as i32) * (rhs.0 as i32);
        let shifted = wide >> FRAC_BITS;
        Fixed(shifted.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }

    /// Absolute value, saturating at `Fixed::MAX` for `Fixed::MIN`.
    pub fn abs(self) -> Self {
        if self.0 == i16::MIN {
            Fixed::MAX
        } else {
            Fixed(self.0.abs())
        }
    }

    /// `true` when the value is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Fixed {
    type Output = Fixed;

    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl Sub for Fixed {
    type Output = Fixed;

    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl Mul for Fixed {
    type Output = Fixed;

    fn mul(self, rhs: Self) -> Self {
        self.wrapping_mul_shift(rhs)
    }
}

impl Neg for Fixed {
    type Output = Fixed;

    fn neg(self) -> Self {
        Fixed(self.0.saturating_neg())
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.to_f32())
    }
}

impl From<Fixed> for f32 {
    fn from(v: Fixed) -> f32 {
        v.to_f32()
    }
}

/// Quantizes an `f32` through the Q8.8 grid (round-trip conversion).
///
/// Handy for preparing float reference data that should agree exactly with
/// the fixed-point datapath.
pub fn quantize(v: f32) -> f32 {
    Fixed::from_f32(v).to_f32()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_on_grid() {
        for raw in [-32768i32, -256, -1, 0, 1, 255, 256, 32767] {
            let f = Fixed::from_bits(raw as i16);
            assert_eq!(Fixed::from_f32(f.to_f32()), f);
        }
    }

    #[test]
    fn conversion_saturates() {
        assert_eq!(Fixed::from_f32(1e6), Fixed::MAX);
        assert_eq!(Fixed::from_f32(-1e6), Fixed::MIN);
    }

    #[test]
    fn addition_saturates() {
        assert_eq!(Fixed::MAX + Fixed::ONE, Fixed::MAX);
        assert_eq!(Fixed::MIN - Fixed::ONE, Fixed::MIN);
    }

    #[test]
    fn multiplication_truncates() {
        // 0.00390625 * 0.5 = 0.001953125, which truncates to 0 in Q8.8.
        let tiny = Fixed::from_bits(1);
        let half = Fixed::from_f32(0.5);
        assert_eq!(tiny * half, Fixed::ZERO);
        // Negative values truncate toward negative infinity (arithmetic shift).
        let neg_tiny = Fixed::from_bits(-1);
        assert_eq!(neg_tiny * half, Fixed::from_bits(-1));
    }

    #[test]
    fn one_is_multiplicative_identity() {
        for raw in [-3000i16, -1, 0, 1, 77, 3000] {
            let v = Fixed::from_bits(raw);
            assert_eq!(v * Fixed::ONE, v);
        }
    }

    #[test]
    fn abs_handles_min() {
        assert_eq!(Fixed::MIN.abs(), Fixed::MAX);
        assert_eq!(Fixed::from_f32(-2.0).abs(), Fixed::from_f32(2.0));
    }

    #[test]
    fn neg_is_saturating() {
        assert_eq!(-Fixed::MIN, Fixed::MAX);
        assert_eq!((-Fixed::ONE).to_f32(), -1.0);
    }

    #[test]
    fn quantize_is_idempotent() {
        for v in [-3.7f32, -0.001, 0.0, 0.4999, 12.75] {
            let q = quantize(v);
            assert_eq!(quantize(q), q);
            assert!((q - v).abs() <= 0.5 / SCALE as f32 + f32::EPSILON);
        }
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(Fixed::from_f32(1.5).to_string(), "1.5000");
    }
}
