//! Channel-major three-dimensional `f32` tensors.

use crate::shape::Shape3;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A dense `C × H × W` tensor of `f32` values in channel-major layout.
///
/// `Tensor3` is the activation format shared by the CNN simulator
/// (`eva2-cnn`), the warp engine (`eva2-core`), and the sparse activation
/// store. It deliberately stays small: the workspace needs predictable,
/// easily-audited numerics rather than a general N-d array library.
///
/// # Example
///
/// ```
/// use eva2_tensor::{Shape3, Tensor3};
///
/// let mut t = Tensor3::zeros(Shape3::new(1, 2, 2));
/// t.set(0, 1, 1, 3.5);
/// assert_eq!(t.get(0, 1, 1), 3.5);
/// assert_eq!(t.iter().copied().sum::<f32>(), 3.5);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor3 {
    shape: Shape3,
    data: Vec<f32>,
}

impl Tensor3 {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape3) -> Self {
        Self {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: Shape3, value: f32) -> Self {
        Self {
            shape,
            data: vec![value; shape.len()],
        }
    }

    /// Creates a tensor by evaluating `f(c, y, x)` at every coordinate.
    pub fn from_fn<F: FnMut(usize, usize, usize) -> f32>(shape: Shape3, mut f: F) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for c in 0..shape.channels {
            for y in 0..shape.height {
                for x in 0..shape.width {
                    data.push(f(c, y, x));
                }
            }
        }
        Self { shape, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape3, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Self { shape, data }
    }

    /// The tensor's shape.
    pub const fn shape(&self) -> Shape3 {
        self.shape
    }

    /// Reads the value at `(c, y, x)`.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[self.shape.index(c, y, x)]
    }

    /// Reads `(c, y, x)` treating out-of-bounds spatial coordinates as zero.
    ///
    /// This is the zero-padding convention of convolutional layers: the
    /// channel must be valid, but `y`/`x` may fall outside the frame.
    #[inline]
    pub fn get_padded(&self, c: usize, y: isize, x: isize) -> f32 {
        if self.shape.contains_spatial(y, x) {
            self.data[self.shape.index(c, y as usize, x as usize)]
        } else {
            0.0
        }
    }

    /// Writes `value` at `(c, y, x)`.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, value: f32) {
        let i = self.shape.index(c, y, x);
        self.data[i] = value;
    }

    /// Adds `value` at `(c, y, x)`.
    #[inline]
    pub fn add_at(&mut self, c: usize, y: usize, x: usize, value: f32) {
        let i = self.shape.index(c, y, x);
        self.data[i] += value;
    }

    /// Immutable view of the flat channel-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Bytes of heap memory this tensor holds (allocated capacity, not
    /// just occupied length) — the serving engine's per-session memory
    /// audit.
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }

    /// Mutable view of the flat channel-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// One channel plane as a row-major slice.
    pub fn channel(&self, c: usize) -> &[f32] {
        let plane = self.shape.plane_len();
        &self.data[c * plane..(c + 1) * plane]
    }

    /// One channel plane as a mutable row-major slice.
    pub fn channel_mut(&mut self, c: usize) -> &mut [f32] {
        let plane = self.shape.plane_len();
        &mut self.data[c * plane..(c + 1) * plane]
    }

    /// Iterator over all elements in channel-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Mutable iterator over all elements.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.data.iter_mut()
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: FnMut(f32) -> f32>(&self, mut f: F) -> Self {
        Self {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise combination of two equally-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ.
    pub fn zip_with<F: FnMut(f32, f32) -> f32>(&self, other: &Self, mut f: F) -> Self {
        assert_eq!(self.shape, other.shape, "shape mismatch in zip_with");
        Self {
            shape: self.shape,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Largest element, or `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element, or `f32::INFINITY` for an empty tensor.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Mean of all elements; zero for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Sum of absolute differences against an equally-shaped tensor.
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ.
    pub fn l1_distance(&self, other: &Self) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in l1_distance");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .sum()
    }

    /// Root-mean-square difference against an equally-shaped tensor.
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ.
    pub fn rms_distance(&self, other: &Self) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in rms_distance");
        if self.data.is_empty() {
            return 0.0;
        }
        let sq: f32 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum();
        (sq / self.data.len() as f32).sqrt()
    }

    /// Fraction of elements whose magnitude is at most `threshold`.
    ///
    /// CNN activations after ReLU are highly sparse; the paper exploits this
    /// for its run-length activation store (§II-C2).
    pub fn sparsity(&self, threshold: f32) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|v| v.abs() <= threshold).count();
        zeros as f32 / self.data.len() as f32
    }

    /// Translates every channel plane by `(dy, dx)`, filling vacated pixels
    /// with zero. Positive `dy`/`dx` move content down/right.
    ///
    /// This is the `δ(x)` operator of §II-B and backs the
    /// convolution/translation commutativity tests.
    pub fn translate(&self, dy: isize, dx: isize) -> Self {
        let s = self.shape;
        Self::from_fn(s, |c, y, x| {
            self.get_padded(c, y as isize - dy, x as isize - dx)
        })
    }

    /// Index of the largest element (channel-major order).
    ///
    /// Useful for argmax over a `C × 1 × 1` classification output.
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl fmt::Debug for Tensor3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor3({}, min={:.3}, max={:.3}, mean={:.3})",
            self.shape,
            self.min(),
            self.max(),
            self.mean()
        )
    }
}

impl Add<&Tensor3> for &Tensor3 {
    type Output = Tensor3;

    fn add(self, rhs: &Tensor3) -> Tensor3 {
        self.zip_with(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor3> for &Tensor3 {
    type Output = Tensor3;

    fn sub(self, rhs: &Tensor3) -> Tensor3 {
        self.zip_with(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Tensor3 {
    type Output = Tensor3;

    fn mul(self, rhs: f32) -> Tensor3 {
        self.map(|v| v * rhs)
    }
}

impl AddAssign<&Tensor3> for Tensor3 {
    fn add_assign(&mut self, rhs: &Tensor3) {
        assert_eq!(self.shape, rhs.shape, "shape mismatch in +=");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor() -> Tensor3 {
        Tensor3::from_fn(Shape3::new(2, 3, 3), |c, y, x| (c * 9 + y * 3 + x) as f32)
    }

    #[test]
    fn constructors() {
        let z = Tensor3::zeros(Shape3::new(2, 2, 2));
        assert!(z.iter().all(|&v| v == 0.0));
        let f = Tensor3::filled(Shape3::new(1, 2, 2), 7.0);
        assert!(f.iter().all(|&v| v == 7.0));
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor3::from_vec(Shape3::new(1, 2, 2), vec![0.0; 3]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor3::zeros(Shape3::new(2, 2, 2));
        t.set(1, 1, 0, 4.0);
        assert_eq!(t.get(1, 1, 0), 4.0);
        t.add_at(1, 1, 0, 1.0);
        assert_eq!(t.get(1, 1, 0), 5.0);
    }

    #[test]
    fn padded_reads_are_zero_outside() {
        let t = seq_tensor();
        assert_eq!(t.get_padded(0, -1, 0), 0.0);
        assert_eq!(t.get_padded(0, 0, 3), 0.0);
        assert_eq!(t.get_padded(1, 2, 2), 17.0);
    }

    #[test]
    fn channel_views() {
        let t = seq_tensor();
        assert_eq!(t.channel(0), (0..9).map(|v| v as f32).collect::<Vec<_>>());
        assert_eq!(t.channel(1)[0], 9.0);
    }

    #[test]
    fn reductions() {
        let t = seq_tensor();
        assert_eq!(t.max(), 17.0);
        assert_eq!(t.min(), 0.0);
        assert!((t.mean() - 8.5).abs() < 1e-6);
        assert_eq!(t.argmax(), 17);
    }

    #[test]
    fn distances() {
        let a = Tensor3::filled(Shape3::new(1, 2, 2), 1.0);
        let b = Tensor3::filled(Shape3::new(1, 2, 2), 3.0);
        assert_eq!(a.l1_distance(&b), 8.0);
        assert!((a.rms_distance(&b) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sparsity_counts_near_zero() {
        let t = Tensor3::from_vec(Shape3::new(1, 2, 2), vec![0.0, 0.005, -0.5, 2.0]);
        assert_eq!(t.sparsity(0.01), 0.5);
        assert_eq!(t.sparsity(0.0), 0.25);
    }

    #[test]
    fn translate_moves_content() {
        let t = seq_tensor();
        let shifted = t.translate(0, 1);
        // Column 0 is vacated.
        assert_eq!(shifted.get(0, 0, 0), 0.0);
        assert_eq!(shifted.get(0, 0, 1), t.get(0, 0, 0));
        assert_eq!(shifted.get(1, 2, 2), t.get(1, 2, 1));
    }

    #[test]
    fn translate_by_zero_is_identity() {
        let t = seq_tensor();
        assert_eq!(t.translate(0, 0), t);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Tensor3::filled(Shape3::new(1, 1, 2), 2.0);
        let b = Tensor3::filled(Shape3::new(1, 1, 2), 3.0);
        assert_eq!((&a + &b).as_slice(), &[5.0, 5.0]);
        assert_eq!((&b - &a).as_slice(), &[1.0, 1.0]);
        assert_eq!((&a * 4.0).as_slice(), &[8.0, 8.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[5.0, 5.0]);
    }

    #[test]
    fn map_and_zip() {
        let t = seq_tensor();
        let doubled = t.map(|v| v * 2.0);
        assert_eq!(doubled.get(1, 2, 2), 34.0);
        let summed = t.zip_with(&t, |a, b| a + b);
        assert_eq!(summed, doubled);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = seq_tensor();
        assert!(format!("{t:?}").contains("Tensor3"));
    }
}
