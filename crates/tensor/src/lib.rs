//! Tensor, image, and fixed-point substrate for the EVA² reproduction.
//!
//! This crate provides the numeric foundation shared by every other crate in
//! the workspace:
//!
//! * [`Shape3`] and [`Tensor3`] — channel-major (`C × H × W`) `f32` tensors,
//!   the activation format used by the CNN simulator and the AMC warp engine.
//! * [`GrayImage`] — 8-bit grayscale frames, the pixel format consumed by the
//!   motion-estimation hardware model (the paper's diff tile producer operates
//!   on raw luma pixels).
//! * [`Fixed`] — a bit-accurate Q8.8 16-bit fixed-point type modelling the
//!   datapath width of the EVA² warp engine ("shifts the final result back to
//!   a 16-bit fixed-point representation", §III-B of the paper).
//! * [`interp`] — bilinear sampling used by activation warping (§II-C3).
//! * [`gemm`] — im2col packing and a packed, register-blocked f32 GEMM
//!   (4×16 FMA micro-kernel), the convolution engine behind
//!   `eva2_cnn::Conv2d`.
//! * [`sparse`] — [`SparseActivation`], the non-zero view the sparse-aware
//!   CNN suffix consumes (the software analogue of the Fig 10 decoder-lane
//!   output).
//!
//! # Example
//!
//! ```
//! use eva2_tensor::{Shape3, Tensor3};
//!
//! let t = Tensor3::from_fn(Shape3::new(2, 3, 3), |c, y, x| (c + y + x) as f32);
//! assert_eq!(t.get(1, 2, 2), 5.0);
//! assert_eq!(t.shape().len(), 18);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fixed;
pub mod gemm;
pub mod image;
pub mod interp;
pub(crate) mod microkernel;
pub(crate) mod pack;
pub mod shape;
pub mod sparse;
pub mod tensor;

pub use fixed::Fixed;
pub use gemm::GemmScratch;
pub use image::GrayImage;
pub use shape::Shape3;
pub use sparse::SparseActivation;
pub use tensor::Tensor3;
