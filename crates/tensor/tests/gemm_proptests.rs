//! Property tests pinning the packed micro-kernel GEMM to the schoolbook
//! reference at every blocking-edge geometry.
//!
//! The micro-kernel driver has three places where ragged shapes can go
//! wrong: M tails (zero-padded A panels, `MR`-row granularity), N tails
//! (zero-padded B panels, `NR`-column granularity), and K tails (shortened
//! depth loops). The dimension strategies below therefore sample exactly
//! the values that straddle those boundaries — `1`, `MR±1`, `MR`, `NR±1`,
//! `NR`, and odd K values — for all three transpose variants, plus (with
//! the `parallel` feature) the N-split path at sizes straddling the
//! auto-split threshold.

use eva2_tensor::gemm::{gemm_nn, gemm_nn_axpy, gemm_nt, gemm_tn, MR, NR};
use proptest::prelude::*;

const TOL: f32 = 1e-3;

/// Deterministic pseudo-random fill so failures shrink reproducibly.
fn fill(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed);
            ((x >> 33) % 1000) as f32 * 0.002 - 1.0
        })
        .collect()
}

/// Edge values for M and N: 1, and ±1 around both tile dimensions.
fn edge_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(MR - 1),
        Just(MR),
        Just(MR + 1),
        Just(NR - 1),
        Just(NR),
        Just(NR + 1),
    ]
}

/// Edge values for K: the M/N edges plus odd depths that leave ragged
/// tails in the kernel's depth loop.
fn edge_k() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(MR - 1),
        Just(MR),
        Just(MR + 1),
        Just(NR - 1),
        Just(NR),
        Just(NR + 1),
        Just(7usize),
        Just(33usize),
    ]
}

fn ref_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            for p in 0..k {
                c[i * n + j] += a[i * k + p] * b[p * n + j];
            }
        }
    }
}

fn ref_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            for p in 0..k {
                c[i * n + j] += a[i * k + p] * b[j * k + p];
            }
        }
    }
}

fn ref_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            for p in 0..k {
                c[p * n + j] += a[i * k + p] * b[i * n + j];
            }
        }
    }
}

fn assert_close(got: &[f32], want: &[f32], what: &str) {
    for (idx, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= TOL * (1.0 + w.abs()),
            "{what}[{idx}]: {g} vs {w}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All three transpose variants match the schoolbook triple loop at
    /// every combination of blocking-edge dimensions.
    #[test]
    fn transpose_variants_match_schoolbook_at_edges(
        m in edge_dim(),
        n in edge_dim(),
        k in edge_k(),
        seed in 0u64..1_000_000,
    ) {
        let a = fill(m * k, seed);
        let b_nn = fill(k * n, seed ^ 1);
        let c0 = fill(m * n, seed ^ 2);

        let mut got = c0.clone();
        gemm_nn(m, n, k, &a, &b_nn, &mut got);
        let mut want = c0.clone();
        ref_nn(m, n, k, &a, &b_nn, &mut want);
        assert_close(&got, &want, "gemm_nn");

        let b_nt = fill(n * k, seed ^ 3);
        let mut got = c0.clone();
        gemm_nt(m, n, k, &a, &b_nt, &mut got);
        let mut want = c0;
        ref_nt(m, n, k, &a, &b_nt, &mut want);
        assert_close(&got, &want, "gemm_nt");

        let b_tn = fill(m * n, seed ^ 4);
        let ct0 = fill(k * n, seed ^ 5);
        let mut got = ct0.clone();
        gemm_tn(m, n, k, &a, &b_tn, &mut got);
        let mut want = ct0;
        ref_tn(m, n, k, &a, &b_tn, &mut want);
        assert_close(&got, &want, "gemm_tn");
    }

    /// The micro-kernel agrees with the independent AXPY-panel kernel at
    /// arbitrary (not just edge) sizes, including multi-block depths.
    #[test]
    fn micro_matches_axpy_at_random_sizes(
        m in 1usize..24,
        n in 1usize..40,
        k in 1usize..300,
        seed in 0u64..1_000_000,
    ) {
        let a = fill(m * k, seed);
        let b = fill(k * n, seed ^ 1);
        let c0 = fill(m * n, seed ^ 2);
        let mut micro = c0.clone();
        gemm_nn(m, n, k, &a, &b, &mut micro);
        let mut axpy = c0;
        gemm_nn_axpy(m, n, k, &a, &b, &mut axpy);
        assert_close(&micro, &axpy, "micro vs axpy");
    }
}

/// The N-split parallel path must agree with the serial path regardless of
/// worker count, at sizes on both sides of the auto-split threshold
/// ([`eva2_tensor::gemm::PAR_THRESHOLD`] = 2¹⁸ = `8·64·{below,above}`).
/// `gemm_nn_threads` forces the split so this holds even on single-CPU
/// hosts where `available_parallelism` is 1.
#[cfg(feature = "parallel")]
#[test]
fn parallel_split_matches_serial_across_threshold() {
    use eva2_tensor::gemm::gemm_nn_threads;
    let (m, k) = (8usize, 64usize);
    // 8·64·400 < PAR_THRESHOLD ≤ 8·64·600, plus an N narrower than one
    // NR panel per worker to exercise the worker-count clamp.
    for n in [24usize, 400, 600] {
        let a = fill(m * k, 11);
        let b = fill(k * n, 13);
        let c0 = fill(m * n, 17);
        let mut serial = c0.clone();
        gemm_nn(m, n, k, &a, &b, &mut serial);
        for threads in [1usize, 2, 3, 4, 7] {
            let mut par = c0.clone();
            gemm_nn_threads(threads, m, n, k, &a, &b, &mut par);
            assert_close(&par, &serial, &format!("threads={threads} n={n}"));
        }
    }
}
