//! Property-based tests for the tensor substrate.

use eva2_tensor::interp::sample_bilinear;
use eva2_tensor::{fixed, Fixed, GrayImage, Shape3, Tensor3};
use proptest::prelude::*;

fn small_shape() -> impl Strategy<Value = Shape3> {
    (1usize..4, 1usize..8, 1usize..8).prop_map(|(c, h, w)| Shape3::new(c, h, w))
}

fn tensor_for(shape: Shape3) -> impl Strategy<Value = Tensor3> {
    proptest::collection::vec(-10.0f32..10.0, shape.len())
        .prop_map(move |v| Tensor3::from_vec(shape, v))
}

fn arb_tensor() -> impl Strategy<Value = Tensor3> {
    small_shape().prop_flat_map(tensor_for)
}

proptest! {
    #[test]
    fn index_coords_roundtrip(shape in small_shape(), seed in 0usize..10_000) {
        let flat = seed % shape.len();
        let (c, y, x) = shape.coords(flat);
        prop_assert_eq!(shape.index(c, y, x), flat);
    }

    #[test]
    fn translate_composes(t in arb_tensor(), dy in -3isize..3, dx in -3isize..3) {
        // Translating by (dy, dx) then (-dy, -dx) restores interior values.
        let back = t.translate(dy, dx).translate(-dy, -dx);
        let s = t.shape();
        for c in 0..s.channels {
            for y in 0..s.height {
                for x in 0..s.width {
                    let yi = y as isize;
                    let xi = x as isize;
                    // The value survives the round trip iff its intermediate
                    // location (y+dy, x+dx) stayed inside the frame.
                    let interior = yi + dy >= 0
                        && xi + dx >= 0
                        && ((yi + dy) as usize) < s.height
                        && ((xi + dx) as usize) < s.width;
                    if interior {
                        prop_assert_eq!(back.get(c, y, x), t.get(c, y, x));
                    }
                }
            }
        }
    }

    #[test]
    fn l1_distance_is_symmetric(a in arb_tensor()) {
        let b = a.map(|v| v * 0.5 + 1.0);
        prop_assert!((a.l1_distance(&b) - b.l1_distance(&a)).abs() < 1e-3);
        prop_assert_eq!(a.l1_distance(&a), 0.0);
    }

    #[test]
    fn bilinear_is_bounded_by_neighbourhood(t in arb_tensor(), fy in 0.0f32..1.0, fx in 0.0f32..1.0) {
        // For interior sample points, the interpolated value never exceeds
        // the min/max of its 2x2 neighbourhood.
        let s = t.shape();
        prop_assume!(s.height >= 2 && s.width >= 2);
        let y = fy * (s.height - 1) as f32 * 0.999;
        let x = fx * (s.width - 1) as f32 * 0.999;
        let y0 = y.floor() as usize;
        let x0 = x.floor() as usize;
        for c in 0..s.channels {
            let vals = [
                t.get(c, y0, x0),
                t.get(c, y0, (x0 + 1).min(s.width - 1)),
                t.get(c, (y0 + 1).min(s.height - 1), x0),
                t.get(c, (y0 + 1).min(s.height - 1), (x0 + 1).min(s.width - 1)),
            ];
            let lo = vals.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let v = sample_bilinear(&t, c, y, x);
            prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4, "v={v} not in [{lo}, {hi}]");
        }
    }

    #[test]
    fn fixed_roundtrip_error_is_half_ulp(v in -120.0f32..120.0) {
        let q = Fixed::from_f32(v).to_f32();
        prop_assert!((q - v).abs() <= 0.5 / fixed::SCALE as f32 + 1e-6);
    }

    #[test]
    fn fixed_add_is_commutative(a in -60.0f32..60.0, b in -60.0f32..60.0) {
        let fa = Fixed::from_f32(a);
        let fb = Fixed::from_f32(b);
        prop_assert_eq!(fa + fb, fb + fa);
    }

    #[test]
    fn fixed_mul_matches_float_within_ulp(a in -10.0f32..10.0, b in -10.0f32..10.0) {
        let prod = (Fixed::from_f32(a) * Fixed::from_f32(b)).to_f32();
        let expect = Fixed::from_f32(a).to_f32() * Fixed::from_f32(b).to_f32();
        // Truncating multiply may lose up to one LSB.
        prop_assert!((prod - expect).abs() <= 1.0 / fixed::SCALE as f32 + 1e-5);
    }

    #[test]
    fn image_sad_triangle_inequality(
        h in 1usize..6,
        w in 1usize..6,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let a = GrayImage::from_fn(h, w, |y, x| ((seed_a >> ((y * w + x) % 57)) & 0xff) as u8);
        let b = GrayImage::from_fn(h, w, |y, x| ((seed_b >> ((y * w + x) % 57)) & 0xff) as u8);
        let zero = GrayImage::zeros(h, w);
        prop_assert!(a.sad(&b) <= a.sad(&zero) + zero.sad(&b));
    }

    #[test]
    fn image_translate_preserves_histogram_mass_when_interior(
        h in 3usize..8,
        w in 3usize..8,
    ) {
        // A single bright interior pixel keeps its value under small shifts.
        let mut img = GrayImage::zeros(h, w);
        img.set(h / 2, w / 2, 200);
        let moved = img.translate(1, 1, 0);
        prop_assert_eq!(moved.get(h / 2 + 1, w / 2 + 1), 200);
    }
}
