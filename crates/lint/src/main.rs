//! `eva2-lint`: the workspace hot-path invariant linter.
//!
//! A token-level scanner (no `syn`, no dependencies — the build
//! environment is offline) that enforces three invariants CI cannot get
//! from `clippy` alone:
//!
//! 1. **`no-panic`** — modules annotated with a `// lint: hot-path`
//!    marker line must not call `.unwrap()` / `.expect(` or invoke
//!    `panic!` / `todo!` outside test code. Hot-path modules (the serving
//!    engine, GEMM, the microkernel, RFBME, the warp engine) promise
//!    typed-error or clamped behavior; a stray panic there kills a whole
//!    worker pool. Intentional sites carry a
//!    `// lint:allow(no-panic)` escape on the same or the immediately
//!    preceding line, next to a justification.
//! 2. **`forbid-unsafe`** — every crate root (`src/lib.rs` /
//!    `src/main.rs`) must declare `#![forbid(unsafe_code)]`.
//! 3. **`must-use-builder`** — every `pub struct *Builder` must be
//!    `#[must_use]`: a dropped builder is always a bug.
//! 4. **`contained-unwind`** — `catch_unwind` may appear only inside the
//!    block marked `// lint: containment` in `serve.rs` (the serving
//!    engine's per-frame containment seam). Panic-swallowing anywhere
//!    else — kernels, analysis passes, harnesses — hides real bugs
//!    instead of containing them per session.
//!
//! The scanner masks comments and string literals before matching (doc
//! examples legitimately show `.unwrap()`), and skips `#[cfg(test)]`
//! blocks, `tests/`, `benches/`, and `tests.rs` modules by brace
//! counting. `--self-test` seeds one violation per rule through the same
//! scanner and exits zero only if every seeded violation is caught — CI
//! runs it so a silently broken linter cannot keep a green badge.

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Lexer states for the comment/string masker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the payload is the nesting depth.
    BlockComment(u32),
    Str,
    /// Raw string with `n` leading hashes (`r##"…"##`).
    RawStr(u32),
}

/// Replaces every comment and string-literal character with a space,
/// preserving line structure, so token matching never fires inside prose
/// or message text. Char literals (`'"'`, `'\''`) are masked too;
/// lifetimes (`'a`) are left alone.
fn mask_source(source: &str) -> Vec<String> {
    let mut masked = Vec::new();
    let mut line = String::new();
    let mut state = State::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            masked.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    line.push(' ');
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    line.push(' ');
                } else if c == '"' {
                    state = State::Str;
                    line.push('"');
                } else if (c == 'r' || c == 'b')
                    && !prev_is_ident(&chars, i)
                    && raw_str_hashes(&chars, i).is_some()
                {
                    let (hashes, skip) = raw_str_hashes(&chars, i).expect("just matched");
                    state = State::RawStr(hashes);
                    for _ in 0..skip {
                        line.push(' ');
                    }
                    i += skip;
                    continue;
                } else if c == '\'' {
                    // Char literal or lifetime. A literal closes within a
                    // few chars; a lifetime never closes.
                    if chars.get(i + 1) == Some(&'\\') {
                        line.push(' ');
                        i += 1;
                        while i < chars.len() && chars[i] != '\'' {
                            line.push(' ');
                            i += 1;
                        }
                        line.push(' ');
                    } else if chars.get(i + 2) == Some(&'\'') {
                        line.push_str("   ");
                        i += 2;
                    } else {
                        line.push('\'');
                    }
                } else {
                    line.push(c);
                }
            }
            State::LineComment => line.push(' '),
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    line.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    line.push_str("  ");
                    i += 2;
                    continue;
                }
                line.push(' ');
            }
            State::Str => {
                if c == '\\' {
                    line.push(' ');
                    // A trailing `\` continues the string onto the next
                    // line; the newline must still break the masked line.
                    if chars.get(i + 1) == Some(&'\n') {
                        masked.push(std::mem::take(&mut line));
                    } else {
                        line.push(' ');
                    }
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Code;
                    line.push('"');
                } else {
                    line.push(' ');
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    for _ in 0..=hashes {
                        line.push(' ');
                    }
                    i += hashes as usize + 1;
                    state = State::Code;
                    continue;
                }
                line.push(' ');
            }
        }
        i += 1;
    }
    masked.push(line);
    masked
}

/// Whether the char before `i` can end an identifier (so `r"` in
/// `attr"` is not a raw-string opener).
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Matches `r#*"` / `br#*"` at `i`; returns (hash count, chars through
/// the opening quote).
fn raw_str_hashes(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j - i + 1))
    } else {
        None
    }
}

/// Whether the `"` at `i` is followed by `hashes` hash marks.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks each line that lies inside a `#[cfg(test)]` item by brace
/// counting on the masked source.
fn test_line_mask(masked: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; masked.len()];
    let mut depth = 0usize;
    let mut pending_attr = false;
    let mut skip_above: Option<usize> = None;
    for (idx, line) in masked.iter().enumerate() {
        if line.contains("#[cfg(test)]") {
            pending_attr = true;
        }
        if pending_attr || skip_above.is_some() {
            in_test[idx] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if pending_attr {
                        pending_attr = false;
                        skip_above = Some(depth);
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if skip_above == Some(depth) {
                        skip_above = None;
                    }
                }
                _ => {}
            }
        }
    }
    in_test
}

/// Marks each line inside the block opened after a `// lint: containment`
/// marker (the one designated `catch_unwind` seam), by brace counting on
/// the masked source. The marker's own line and the attribute/doc lines
/// between it and the opening brace are included.
fn containment_line_mask(masked: &[String], raw_lines: &[&str]) -> Vec<bool> {
    let mut in_block = vec![false; masked.len()];
    let mut depth = 0usize;
    let mut pending = false;
    let mut close_at: Option<usize> = None;
    for (idx, line) in masked.iter().enumerate() {
        if raw_lines
            .get(idx)
            .is_some_and(|l| l.trim_start().starts_with("// lint: containment"))
        {
            pending = true;
        }
        if pending || close_at.is_some() {
            in_block[idx] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if pending {
                        pending = false;
                        close_at = Some(depth);
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if close_at == Some(depth) {
                        close_at = None;
                    }
                }
                _ => {}
            }
        }
    }
    in_block
}

/// Whether line `idx` (0-based) carries or inherits a
/// `// lint:allow(<rule>)` escape.
fn allowed(raw_lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("lint:allow({rule})");
    raw_lines[idx].contains(&marker) || (idx > 0 && raw_lines[idx - 1].contains(&marker))
}

/// The panic-family tokens the `no-panic` rule rejects. Method calls are
/// matched with a leading dot so `fn expect(` definitions don't trip.
const PANIC_TOKENS: [&str; 4] = [".unwrap()", ".expect(", "panic!", "todo!"];

/// Scans one file. `is_crate_root` enables the `forbid-unsafe` rule.
fn scan_file(label: &str, source: &str, is_crate_root: bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    let raw_lines: Vec<&str> = source.lines().collect();
    let masked = mask_source(source);
    let in_test = test_line_mask(&masked);
    let containment = containment_line_mask(&masked, &raw_lines);
    let hot_path = raw_lines
        .iter()
        .any(|l| l.trim_start().starts_with("// lint: hot-path"));

    if is_crate_root && !source.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            file: label.to_string(),
            line: 1,
            rule: "forbid-unsafe",
            message: "crate root must declare #![forbid(unsafe_code)]".into(),
        });
    }

    for (idx, line) in masked.iter().enumerate() {
        if idx >= raw_lines.len() || in_test[idx] {
            continue;
        }
        if hot_path {
            for token in PANIC_TOKENS {
                if line.contains(token) && !allowed(&raw_lines, idx, "no-panic") {
                    findings.push(Finding {
                        file: label.to_string(),
                        line: idx + 1,
                        rule: "no-panic",
                        message: format!(
                            "`{token}` in a hot-path module; return a typed error or \
                             justify with // lint:allow(no-panic)"
                        ),
                    });
                }
            }
        }
        if line.contains("catch_unwind")
            && !(label.ends_with("serve.rs") && containment[idx])
            && !allowed(&raw_lines, idx, "contained-unwind")
        {
            findings.push(Finding {
                file: label.to_string(),
                line: idx + 1,
                rule: "contained-unwind",
                message: "`catch_unwind` outside serve.rs's `// lint: containment` module; \
                          panic-swallowing belongs only at the serving per-frame boundary"
                    .into(),
            });
        }
        if let Some(name) = line
            .trim_start()
            .strip_prefix("pub struct ")
            .map(|rest| rest.split(['<', ' ', '(', '{', ';']).next().unwrap_or(""))
        {
            if name.ends_with("Builder")
                && !preceding_attrs_contain(&masked, &raw_lines, idx, "must_use")
                && !allowed(&raw_lines, idx, "must-use-builder")
            {
                findings.push(Finding {
                    file: label.to_string(),
                    line: idx + 1,
                    rule: "must-use-builder",
                    message: format!("`{name}` must be #[must_use]: a dropped builder is a bug"),
                });
            }
        }
    }
    findings
}

/// Looks upward from `idx` through the item's attribute/doc block for a
/// `needle` inside an attribute.
fn preceding_attrs_contain(
    masked: &[String],
    raw_lines: &[&str],
    idx: usize,
    needle: &str,
) -> bool {
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let code = masked[j].trim();
        let raw = raw_lines.get(j).map_or("", |l| l.trim());
        let is_attr_or_doc = code.starts_with("#[")
            || code.starts_with('#')
            || code.ends_with(']')
            || code.is_empty() && (raw.starts_with("//") || raw.is_empty());
        if !is_attr_or_doc {
            return false;
        }
        if code.starts_with("#[") && code.contains(needle) {
            return true;
        }
        // Continue through multi-line attributes and doc comments.
        if code.is_empty() && raw.is_empty() {
            return false;
        }
    }
    false
}

/// Whether a path is test-only code the hot-path rules skip entirely.
fn is_test_path(path: &Path) -> bool {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if name == "tests.rs" || name.ends_with("_tests.rs") {
        return true;
    }
    path.components().any(|c| {
        matches!(
            c.as_os_str().to_str(),
            Some("tests") | Some("benches") | Some("examples")
        )
    })
}

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every first-party crate under `root/crates`.
fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.join("src").is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        files.sort();
        for file in files {
            if is_test_path(&file) {
                continue;
            }
            let is_crate_root = file == src.join("lib.rs") || file == src.join("main.rs");
            let source = fs::read_to_string(&file)?;
            let label = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .display()
                .to_string();
            findings.extend(scan_file(&label, &source, is_crate_root));
        }
    }
    Ok(findings)
}

/// Seeds one violation per rule through the real scanner; exits zero
/// only if all are caught and a compliant file stays clean.
fn self_test() -> bool {
    let seeded_panic = "// lint: hot-path\nfn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let seeded_builder = "pub struct LimitsBuilder {\n    inner: u32,\n}\n";
    let seeded_root = "pub fn lib_fn() {}\n";
    let seeded_unwind =
        "fn f() -> bool {\n    std::panic::catch_unwind(|| true).unwrap_or(false)\n}\n";
    let contained_unwind = concat!(
        "// lint: containment\n",
        "/// The one sanctioned seam.\n",
        "mod contain {\n",
        "    use std::panic::catch_unwind;\n",
        "    pub fn run() { let _ = catch_unwind(|| ()); }\n",
        "}\n",
        "fn outside() { let _ = std::panic::catch_unwind(|| ()); }\n",
    );
    let clean = concat!(
        "#![forbid(unsafe_code)]\n",
        "// lint: hot-path\n",
        "//! Doc prose may show `.unwrap()` freely.\n",
        "#[must_use]\n",
        "pub struct CleanBuilder;\n",
        "fn g(x: Option<u32>) -> u32 {\n",
        "    let s = \"not a real .unwrap() call\";\n",
        "    x.unwrap_or(s.len() as u32)\n",
        "}\n",
        "fn h(x: Option<u32>) -> u32 {\n",
        "    // lint:allow(no-panic) — self-test fixture\n",
        "    x.unwrap()\n",
        "}\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    fn t(x: Option<u32>) -> u32 {\n",
        "        x.unwrap()\n",
        "    }\n",
        "}\n",
    );
    let checks = [
        (
            "seeded no-panic",
            !scan_file("seed.rs", seeded_panic, false).is_empty(),
        ),
        (
            "seeded must-use-builder",
            !scan_file("seed.rs", seeded_builder, false).is_empty(),
        ),
        (
            "seeded forbid-unsafe",
            !scan_file("lib.rs", seeded_root, true).is_empty(),
        ),
        (
            "seeded contained-unwind (kernel file)",
            !scan_file("kernel.rs", seeded_unwind, false).is_empty(),
        ),
        (
            // In serve.rs the containment block is sanctioned but a
            // catch_unwind outside it is still a violation — exactly one
            // finding, on the `outside` line.
            "seeded contained-unwind (outside serve.rs's seam)",
            scan_file("serve.rs", contained_unwind, false).len() == 1,
        ),
        (
            "compliant file stays clean",
            scan_file("lib.rs", clean, true).is_empty(),
        ),
    ];
    let mut ok = true;
    for (what, passed) in checks {
        println!(
            "self-test: {what}: {}",
            if passed { "ok" } else { "FAILED" }
        );
        ok &= passed;
    }
    ok
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--self-test") {
        return if self_test() {
            println!("eva2-lint self-test: all seeded violations caught");
            ExitCode::SUCCESS
        } else {
            eprintln!("eva2-lint self-test: scanner failed to catch a seeded violation");
            ExitCode::FAILURE
        };
    }
    let root = args
        .iter()
        .position(|a| a == "--root")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    match lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("eva2-lint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("eva2-lint: {} violation(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("eva2-lint: cannot scan {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masker_strips_comments_strings_and_char_literals() {
        let masked = mask_source(
            "let a = \"x.unwrap()\"; // .expect( in prose\nlet c = '\"'; let r = r#\"panic!\"#;",
        );
        assert!(!masked[0].contains(".unwrap()"));
        assert!(!masked[0].contains(".expect("));
        assert!(!masked[1].contains("panic!"));
        assert!(masked[0].contains("let a ="));
    }

    #[test]
    fn masker_handles_nested_block_comments_and_lifetimes() {
        let masked = mask_source("/* outer /* panic! */ still comment */ fn f<'a>() {}");
        assert!(!masked[0].contains("panic!"));
        assert!(masked[0].contains("fn f<'a>() {}"));
    }

    #[test]
    fn cfg_test_blocks_are_skipped_by_brace_counting() {
        let src = "// lint: hot-path\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap() }\n}\nfn live() { y.unwrap() }\n";
        let findings = scan_file("f.rs", src, false);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn allow_escape_works_on_same_and_preceding_line() {
        let src = "// lint: hot-path\nfn a() { x.unwrap() } // lint:allow(no-panic)\n// lint:allow(no-panic)\nfn b() { y.unwrap() }\nfn c() { z.unwrap() }\n";
        let findings = scan_file("f.rs", src, false);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn non_hot_path_files_may_unwrap() {
        assert!(scan_file("f.rs", "fn a() { x.unwrap() }\n", false).is_empty());
    }

    #[test]
    fn string_continuations_do_not_shift_line_numbers() {
        let src = "// lint: hot-path\nlet s = \"a \\\n   b\";\nfn live() { x.unwrap() }\n";
        let findings = scan_file("f.rs", src, false);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn must_use_scans_through_doc_and_derive_attributes() {
        let ok = "#[must_use = \"reason\"]\n#[derive(Debug)]\n/// Docs.\npub struct OkBuilder {}\n";
        let bad = "#[derive(Debug)]\npub struct BadBuilder {}\n";
        assert!(scan_file("f.rs", ok, false).is_empty());
        let findings = scan_file("f.rs", bad, false);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "must-use-builder");
    }

    #[test]
    fn catch_unwind_is_flagged_outside_the_containment_seam() {
        // Any file other than serve.rs: flagged even inside a marked block
        // (there is exactly one sanctioned seam, and it lives in serve.rs).
        let elsewhere =
            "// lint: containment\nmod contain {\n    use std::panic::catch_unwind;\n}\n";
        let findings = scan_file("crates/cnn/src/gemm.rs", elsewhere, false);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "contained-unwind");
        // serve.rs: clean inside the marked block, flagged outside it.
        let serve = "// lint: containment\nmod contain {\n    use std::panic::catch_unwind;\n}\nfn f() { let _ = std::panic::catch_unwind(|| ()); }\n";
        let findings = scan_file("crates/core/src/serve.rs", serve, false);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 5);
        // The escape hatch still works, with a justification.
        let allowed = "// lint:allow(contained-unwind) — test fixture\nfn f() { let _ = std::panic::catch_unwind(|| ()); }\n";
        assert!(scan_file("crates/cnn/src/gemm.rs", allowed, false).is_empty());
    }

    #[test]
    fn containment_mask_covers_marker_through_block_close() {
        let src =
            "// lint: containment\n/// Docs.\nmod contain {\n    fn inner() {}\n}\nfn after() {}\n";
        let masked = mask_source(src);
        let raw: Vec<&str> = src.lines().collect();
        let mask = containment_line_mask(&masked, &raw);
        assert_eq!(mask[..6], [true, true, true, true, true, false]);
    }

    #[test]
    fn self_test_catches_all_seeded_violations() {
        assert!(self_test());
    }
}
