//! Golden-equivalence property tests for the convolution engine.
//!
//! The im2col+GEMM path ([`Conv2d::forward`]/[`Layer::backward`]) and the
//! sparse suffix path ([`Layer::forward_sparse`]) must agree with the naive
//! reference loops ([`Conv2d::forward_naive`]/[`Conv2d::backward_naive`])
//! within 1e-4 across random shapes, strides, and paddings — the two
//! implementations may only differ by floating-point summation order.

use eva2_cnn::layer::{Conv2d, FullyConnected, Layer, MaxPool2d, Relu};
use eva2_cnn::network::Network;
use eva2_tensor::gemm::GemmScratch;
use eva2_tensor::{Shape3, SparseActivation, Tensor3};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const TOL: f32 = 1e-4;

/// Random conv geometry: (in_c, h, w, out_c, kernel, stride, padding),
/// constrained so the output is non-empty.
fn arb_geometry() -> impl Strategy<Value = (usize, usize, usize, usize, usize, usize, usize)> {
    (
        1usize..4,
        3usize..10,
        3usize..10,
        1usize..5,
        1usize..5,
        1usize..3,
        0usize..3,
    )
        .prop_map(|(c, h, w, oc, k, s, p)| {
            // Keep kernel within the padded frame so out_h/out_w >= 1.
            let k = k.min(h + 2 * p).min(w + 2 * p);
            (c, h, w, oc, k, s, p)
        })
}

/// Sparse-ish input: roughly 60% zeros, like a post-ReLU activation.
fn arb_sparse_input(c: usize, h: usize, w: usize) -> impl Strategy<Value = Tensor3> {
    proptest::collection::vec(prop_oneof![3 => Just(0.0f32), 2 => -2.0f32..2.0], c * h * w)
        .prop_map(move |v| Tensor3::from_vec(Shape3::new(c, h, w), v))
}

fn assert_close(a: &Tensor3, b: &Tensor3, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (x, y) in a.iter().zip(b.iter()) {
        assert!((x - y).abs() <= TOL, "{what}: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GEMM forward == naive forward across random geometries.
    #[test]
    fn gemm_forward_matches_naive(
        (c, h, w, oc, k, s, p) in arb_geometry(),
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let conv = Conv2d::new("eq", c, oc, k, s, p, &mut rng);
        let input = Tensor3::from_fn(Shape3::new(c, h, w), |ci, y, x| {
            (((ci * 37 + y * 11 + x * 5 + seed as usize) % 29) as f32 - 14.0) * 0.1
        });
        let naive = conv.forward_naive(&input);
        let gemm = conv.forward(&input);
        assert_close(&gemm, &naive, "forward");
        // The scratch-reusing entry point is the same kernel.
        let mut scratch = GemmScratch::new();
        let scratched = conv.forward_scratch(&input, &mut scratch);
        assert_close(&scratched, &naive, "forward_scratch");
    }

    /// GEMM backward == naive backward (input, weight, and bias gradients).
    #[test]
    fn gemm_backward_matches_naive(
        (c, h, w, oc, k, s, p) in arb_geometry(),
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut conv_gemm = Conv2d::new("eq", c, oc, k, s, p, &mut rng);
        let mut rng2 = ChaCha8Rng::seed_from_u64(seed);
        let mut conv_naive = Conv2d::new("eq", c, oc, k, s, p, &mut rng2);
        let input = Tensor3::from_fn(Shape3::new(c, h, w), |ci, y, x| {
            (((ci * 13 + y * 7 + x * 3) % 17) as f32 - 8.0) * 0.1
        });
        let out_shape = conv_gemm.output_shape(input.shape());
        prop_assume!(!out_shape.is_empty());
        let grad_out = Tensor3::from_fn(out_shape, |ci, y, x| {
            (((ci * 5 + y * 3 + x) % 7) as f32 - 3.0) * 0.25
        });
        let gi_gemm = conv_gemm.backward(&input, &grad_out);
        let gi_naive = conv_naive.backward_naive(&input, &grad_out);
        assert_close(&gi_gemm, &gi_naive, "grad_in");
        // Compare accumulated parameter gradients via params() after an
        // SGD step from identical weights: identical gradients ⇒ identical
        // updated parameters.
        conv_gemm.apply_grads(0.1, 1);
        conv_naive.apply_grads(0.1, 1);
        for (a, b) in conv_gemm.params().iter().zip(conv_naive.params().iter()) {
            prop_assert!((a - b).abs() <= 1e-3, "updated param {a} vs {b}");
        }
    }

    /// Sparse conv forward == dense forward on the densified input.
    #[test]
    fn sparse_conv_matches_dense(
        (c, h, w, oc, k, s, p) in arb_geometry(),
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let conv = Conv2d::new("eq", c, oc, k, s, p, &mut rng);
        let input = Tensor3::from_fn(Shape3::new(c, h, w), |ci, y, x| {
            if (ci + 2 * y + 3 * x + seed as usize).is_multiple_of(3) {
                (((ci * 7 + y * 5 + x) % 19) as f32 - 9.0) * 0.1
            } else {
                0.0
            }
        });
        let sparse = SparseActivation::from_dense(&input, 0.0);
        let mut scratch = GemmScratch::new();
        let via_sparse = conv
            .forward_sparse(&sparse, &mut scratch)
            .expect("conv has a sparse path");
        assert_close(&via_sparse, &conv.forward_naive(&input), "sparse conv");
        // The transposed-weight gather must agree with the scalar scatter
        // it replaced (independent oracle: different weight layout,
        // different accumulation order).
        assert_close(
            &via_sparse,
            &conv.forward_sparse_scatter(&sparse),
            "sparse conv gather vs scatter",
        );
    }

    /// Sparse FC forward == dense FC forward.
    #[test]
    fn sparse_fc_matches_dense(x in arb_sparse_input(3, 4, 4), seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fc = FullyConnected::new("eq", 48, 7, &mut rng);
        let sparse = SparseActivation::from_dense(&x, 0.0);
        let mut scratch = GemmScratch::new();
        let via_sparse = fc
            .forward_sparse(&sparse, &mut scratch)
            .expect("fc has a sparse path");
        assert_close(&via_sparse, &fc.forward(&x), "sparse fc");
    }

    /// The sparse suffix entry point == the dense suffix across every
    /// possible split of a conv/pool/relu/fc stack.
    #[test]
    fn suffix_sparse_matches_dense(seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut net = Network::new("eq", Shape3::new(1, 8, 8));
        net.push(Box::new(Conv2d::new("conv1", 1, 4, 3, 1, 1, &mut rng)));
        net.push(Box::new(Relu::new("relu1")));
        net.push(Box::new(MaxPool2d::new("pool1", 2, 2)));
        net.push(Box::new(Conv2d::new("conv2", 4, 8, 3, 1, 1, &mut rng)));
        net.push(Box::new(Relu::new("relu2")));
        net.push(Box::new(FullyConnected::new("fc1", 8 * 4 * 4, 5, &mut rng)));
        let input = Tensor3::from_fn(Shape3::new(1, 8, 8), |_, y, x| {
            (((y * 8 + x + seed as usize) % 23) as f32 - 11.0) * 0.08
        });
        let mut scratch = GemmScratch::new();
        for target in 0..net.len() - 1 {
            let act = net.forward_prefix(&input, target);
            let dense_out = net.forward_suffix(&act, target);
            let sparse = SparseActivation::from_dense(&act, 0.0);
            let sparse_out = net.forward_suffix_sparse(&sparse, target, &mut scratch);
            assert_close(&sparse_out, &dense_out, "suffix split");
        }
    }
}

/// Degenerate geometries that property sampling may miss.
#[test]
fn empty_output_and_one_by_one_kernels() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    // 1x1 kernel, stride 2: pure channel mixing with subsampling.
    let conv = Conv2d::new("k1", 2, 3, 1, 2, 0, &mut rng);
    let input = Tensor3::from_fn(Shape3::new(2, 5, 5), |c, y, x| (c + y + x) as f32 * 0.2);
    assert_eq!(conv.forward(&input), conv.forward_naive(&input));
    // Kernel larger than the unpadded input (valid only via padding).
    let conv = Conv2d::new("big", 1, 1, 5, 1, 2, &mut rng);
    let small = Tensor3::filled(Shape3::new(1, 3, 3), 1.0);
    let out = conv.forward(&small);
    assert_eq!(out, conv.forward_naive(&small));
}
