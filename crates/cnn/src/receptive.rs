//! Receptive-field arithmetic.
//!
//! "This input region corresponding to each output value is called its
//! receptive field" (§II-B, Fig 2). AMC needs, for the target activation
//! layer, three quantities as seen from the input pixels:
//!
//! * the receptive field **size** (side length in pixels),
//! * the receptive field **stride** (pixel distance between the receptive
//!   fields of horizontally adjacent activation values), and
//! * the **padding** (how far the first receptive field's origin lies
//!   outside the image).
//!
//! RFBME tiles the input with `stride × stride` squares and searches per
//! receptive field (§III-A, Fig 7); the activation-space vector field is the
//! pixel-space field divided by the stride (§II-B).

use crate::layer::Layer;

/// Receptive field of one activation layer with respect to the input image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReceptiveField {
    /// Side length of the receptive field in input pixels.
    pub size: usize,
    /// Input-pixel distance between adjacent activation values.
    pub stride: usize,
    /// Offset of the first receptive field's origin to the left/top of the
    /// image origin (i.e. accumulated padding in input pixels).
    pub padding: usize,
}

impl ReceptiveField {
    /// The receptive field of the input itself: one pixel per "activation".
    pub const INPUT: ReceptiveField = ReceptiveField {
        size: 1,
        stride: 1,
        padding: 0,
    };

    /// Folds one more layer (applied *after* the region described by `self`)
    /// into the receptive field, using the standard recurrence:
    ///
    /// ```text
    /// size'    = size + (kernel − 1) · stride
    /// padding' = padding + layer_padding · stride
    /// stride'  = stride · layer_stride
    /// ```
    pub fn then(self, geom: crate::layer::LayerGeometry) -> Self {
        ReceptiveField {
            size: self.size + (geom.kernel - 1) * self.stride,
            padding: self.padding + geom.padding * self.stride,
            stride: self.stride * geom.stride,
        }
    }

    /// Receptive field of the last layer in `prefix` as seen from the input.
    ///
    /// # Panics
    ///
    /// Panics when any prefix layer is non-spatial (fully-connected layers
    /// cannot sit inside an AMC prefix).
    pub fn of_prefix(prefix: &[Box<dyn Layer>]) -> Self {
        let mut rf = Self::INPUT;
        for layer in prefix {
            let geom = layer
                .geometry()
                .unwrap_or_else(|| panic!("non-spatial layer {} in AMC prefix", layer.name()));
            rf = rf.then(geom);
        }
        rf
    }

    /// Top-left input pixel of the receptive field of activation `(ay, ax)`
    /// (can be negative when padding pushes it off-frame, as in Fig 7a).
    pub fn origin(&self, ay: usize, ax: usize) -> (isize, isize) {
        (
            ay as isize * self.stride as isize - self.padding as isize,
            ax as isize * self.stride as isize - self.padding as isize,
        )
    }

    /// Number of whole `stride × stride` tiles per receptive field side.
    /// RFBME "ignores partial tiles" when size is not a multiple of stride
    /// (§III-A).
    pub fn tiles_per_side(&self) -> usize {
        self.size / self.stride
    }

    /// Converts a pixel-space displacement to activation-space units
    /// (`d / stride`), the `δ → δ'` scaling of §II-B.
    pub fn to_activation_units(&self, d: f32) -> f32 {
        d / self.stride as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Conv2d, LayerGeometry, MaxPool2d, Relu};
    use eva2_tensor::{Shape3, Tensor3};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn geom(k: usize, s: usize, p: usize) -> LayerGeometry {
        LayerGeometry {
            kernel: k,
            stride: s,
            padding: p,
        }
    }

    #[test]
    fn single_conv() {
        let rf = ReceptiveField::INPUT.then(geom(3, 1, 1));
        assert_eq!(
            rf,
            ReceptiveField {
                size: 3,
                stride: 1,
                padding: 1
            }
        );
    }

    #[test]
    fn conv_then_pool() {
        // 3x3 s1 p1 conv then 2x2 s2 pool: size 4, stride 2, padding 1.
        let rf = ReceptiveField::INPUT
            .then(geom(3, 1, 1))
            .then(geom(2, 2, 0));
        assert_eq!(
            rf,
            ReceptiveField {
                size: 4,
                stride: 2,
                padding: 1
            }
        );
    }

    #[test]
    fn paper_figure7_example_exists() {
        // Fig 7 uses receptive fields of size 6, stride 2, padding 2 —
        // produced by e.g. conv3 s1 p1, conv3 s2 p1... verify one recipe:
        // conv(k3,s1,p1) → conv(k3,s2,p1) gives size 5... Instead verify a
        // direct construction and the tile arithmetic of the figure.
        let rf = ReceptiveField {
            size: 6,
            stride: 2,
            padding: 2,
        };
        assert_eq!(rf.tiles_per_side(), 3);
        assert_eq!(rf.origin(0, 0), (-2, -2));
        assert_eq!(rf.origin(0, 1), (-2, 0));
    }

    #[test]
    fn relu_does_not_change_rf() {
        let rf0 = ReceptiveField::INPUT.then(geom(5, 2, 2));
        let rf1 = rf0.then(LayerGeometry::IDENTITY);
        assert_eq!(rf0, rf1);
    }

    #[test]
    fn activation_units_scaling() {
        let rf = ReceptiveField {
            size: 8,
            stride: 4,
            padding: 0,
        };
        assert_eq!(rf.to_activation_units(6.0), 1.5);
    }

    /// Brute-force validation: perturb one input pixel and check that only
    /// activations whose analytic receptive field contains it change.
    #[test]
    fn receptive_field_matches_dependency_trace() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new("c1", 1, 2, 3, 1, 1, &mut rng)),
            Box::new(Relu::new("r1")),
            Box::new(MaxPool2d::new("p1", 2, 2)),
            Box::new(Conv2d::new("c2", 2, 2, 3, 1, 1, &mut rng)),
        ];
        let rf = ReceptiveField::of_prefix(&layers);
        let in_shape = Shape3::new(1, 12, 12);
        let base = Tensor3::from_fn(in_shape, |_, y, x| 0.1 + ((y * 13 + x) as f32).sin().abs());
        let forward = |input: &Tensor3| {
            let mut x = input.clone();
            for l in &layers {
                x = l.forward(&x);
            }
            x
        };
        let out_base = forward(&base);
        let (py, px) = (6usize, 7usize);
        let mut poked = base.clone();
        poked.set(0, py, px, base.get(0, py, px) + 50.0);
        let out_poked = forward(&poked);
        let os = out_base.shape();
        for ay in 0..os.height {
            for ax in 0..os.width {
                let changed =
                    (0..os.channels).any(|c| out_base.get(c, ay, ax) != out_poked.get(c, ay, ax));
                let (oy, ox) = rf.origin(ay, ax);
                let contains = (py as isize) >= oy
                    && (py as isize) < oy + rf.size as isize
                    && (px as isize) >= ox
                    && (px as isize) < ox + rf.size as isize;
                if changed {
                    assert!(
                        contains,
                        "activation ({ay},{ax}) changed but rf origin ({oy},{ox}) size {} excludes pixel ({py},{px})",
                        rf.size
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-spatial layer")]
    fn fc_in_prefix_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let layers: Vec<Box<dyn Layer>> = vec![Box::new(crate::layer::FullyConnected::new(
            "fc", 4, 2, &mut rng,
        ))];
        let _ = ReceptiveField::of_prefix(&layers);
    }
}
