//! A static layer IR for build-time analysis.
//!
//! [`LayerInfo`] is the *description* of a layer — everything a static
//! verifier needs to reason about a network without running it: the layer
//! kind, its spatial geometry, and per-output-channel weight magnitude
//! statistics. The `eva2-analysis` crate folds these descriptions into
//! shape inference, warp-legality proofs, and interval (range) analysis;
//! keeping the IR here, next to the layers, means a new layer type only has
//! to implement [`Layer::describe`](crate::layer::Layer::describe) once to
//! become analyzable.
//!
//! The IR is deliberately lossy: it carries weight *bounds*, not weights.
//! A conv layer with 10k parameters describes itself in
//! `out_channels × 4` floats, so a full-network description is cheap enough
//! to rebuild at every engine or session construction.

use crate::layer::LayerGeometry;

/// What kind of computation a layer performs, as far as static analysis is
/// concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// 2-D convolution: spatial, translation-equivariant, has parameters.
    Conv {
        /// Input channels the layer expects.
        in_channels: usize,
        /// Output channels (filters) the layer produces.
        out_channels: usize,
    },
    /// Max pooling: spatial, translation-equivariant modulo stride,
    /// parameter-free, monotone (output range ⊆ input range).
    Pool,
    /// ReLU: pointwise, clamps the activation range at zero from below.
    Relu,
    /// Fully connected: *not* spatial — must stay in the CNN suffix.
    FullyConnected {
        /// Flattened input length the layer expects.
        in_features: usize,
        /// Output features the layer produces.
        out_features: usize,
    },
    /// A layer type the analysis does not know. Shape and range
    /// propagation stop here (reported as a warning, never silently
    /// guessed).
    Opaque,
}

impl LayerKind {
    /// Short human-readable label (`conv`, `pool`, …) for reports.
    pub fn label(&self) -> &'static str {
        match self {
            LayerKind::Conv { .. } => "conv",
            LayerKind::Pool => "pool",
            LayerKind::Relu => "relu",
            LayerKind::FullyConnected { .. } => "fc",
            LayerKind::Opaque => "opaque",
        }
    }
}

/// Per-output-channel weight magnitude statistics.
///
/// These are exactly the sufficient statistics for interval arithmetic over
/// a linear channel `y = b + Σᵢ wᵢ·xᵢ` with every `xᵢ` drawn independently
/// from one interval `[lo, hi]`:
///
/// ```text
/// min y = b + pos_sum·lo + neg_sum·hi
/// max y = b + pos_sum·hi + neg_sum·lo
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelStats {
    /// Sum of the positive weights feeding this channel (`Σ max(w, 0)`).
    pub pos_sum: f32,
    /// Sum of the negative weights feeding this channel (`Σ min(w, 0)`,
    /// always ≤ 0).
    pub neg_sum: f32,
    /// Largest absolute weight feeding this channel.
    pub max_abs: f32,
    /// The channel's bias term.
    pub bias: f32,
}

impl ChannelStats {
    /// Accumulates the statistics of one channel's weight slice and bias.
    pub fn of(weights: &[f32], bias: f32) -> Self {
        let mut s = ChannelStats {
            pos_sum: 0.0,
            neg_sum: 0.0,
            max_abs: 0.0,
            bias,
        };
        for &w in weights {
            if w > 0.0 {
                s.pos_sum += w;
            } else {
                s.neg_sum += w;
            }
            s.max_abs = s.max_abs.max(w.abs());
        }
        s
    }
}

/// The static description of one layer — the IR node
/// [`Layer::describe`](crate::layer::Layer::describe) produces.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerInfo {
    /// The layer's human-readable name (e.g. `conv2`).
    pub name: String,
    /// What the layer computes.
    pub kind: LayerKind,
    /// Kernel/stride/padding for spatial layers, `None` for non-spatial
    /// ones — mirrors [`Layer::geometry`](crate::layer::Layer::geometry).
    pub geometry: Option<LayerGeometry>,
    /// Per-output-channel weight statistics. One entry per output channel
    /// (conv) or output feature (fully connected); empty for
    /// parameter-free layers.
    pub channels: Vec<ChannelStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_stats_split_signs() {
        let s = ChannelStats::of(&[1.0, -2.0, 3.0, -0.5, 0.0], 0.25);
        assert_eq!(s.pos_sum, 4.0);
        assert_eq!(s.neg_sum, -2.5);
        assert_eq!(s.max_abs, 3.0);
        assert_eq!(s.bias, 0.25);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(
            LayerKind::Conv {
                in_channels: 1,
                out_channels: 2
            }
            .label(),
            "conv"
        );
        assert_eq!(LayerKind::Pool.label(), "pool");
        assert_eq!(LayerKind::Relu.label(), "relu");
        assert_eq!(
            LayerKind::FullyConnected {
                in_features: 4,
                out_features: 2
            }
            .label(),
            "fc"
        );
        assert_eq!(LayerKind::Opaque.label(), "opaque");
    }
}
