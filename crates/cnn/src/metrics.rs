//! Vision accuracy metrics: top-1 accuracy and mean average precision.
//!
//! The paper scores AlexNet by top-1 accuracy and the detection networks by
//! mean average precision (mAP) on YTBB (§IV-B). The detection task here is
//! single-object (one annotated object per frame, one prediction per frame),
//! so AP per class reduces to ranking each class's predictions by confidence
//! and integrating precision over recall with the standard
//! every-point interpolation.

use crate::zoo::{DETECTION_OUTPUTS, NUM_CLASSES};
use eva2_tensor::Tensor3;
use serde::{Deserialize, Serialize};

/// A bounding box in normalized coordinates (`cy, cx, h, w`, all in `[0,1]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormBox {
    /// Centre row / frame height.
    pub cy: f32,
    /// Centre column / frame width.
    pub cx: f32,
    /// Box height / frame height.
    pub h: f32,
    /// Box width / frame width.
    pub w: f32,
}

impl NormBox {
    /// Intersection over union of two normalized boxes.
    pub fn iou(&self, other: &NormBox) -> f32 {
        let (ay0, ax0) = (self.cy - self.h / 2.0, self.cx - self.w / 2.0);
        let (by0, bx0) = (other.cy - other.h / 2.0, other.cx - other.w / 2.0);
        let y0 = ay0.max(by0);
        let x0 = ax0.max(bx0);
        let y1 = (ay0 + self.h).min(by0 + other.h);
        let x1 = (ax0 + self.w).min(bx0 + other.w);
        let inter = (y1 - y0).max(0.0) * (x1 - x0).max(0.0);
        let union = (self.h * self.w).max(0.0) + (other.h * other.w).max(0.0) - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

/// One detection prediction decoded from a network output tensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Predicted class id.
    pub class: usize,
    /// Softmax confidence of the predicted class.
    pub confidence: f32,
    /// Predicted normalized box.
    pub bbox: NormBox,
}

impl Detection {
    /// Decodes a detection-head output tensor (`4 + NUM_CLASSES` channels).
    ///
    /// # Panics
    ///
    /// Panics when the output does not have [`DETECTION_OUTPUTS`] elements.
    pub fn from_output(output: &Tensor3) -> Self {
        let o = output.as_slice();
        assert_eq!(o.len(), DETECTION_OUTPUTS, "detection head size");
        let probs = crate::train::softmax(&o[4..]);
        let (class, &confidence) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("nonempty");
        Detection {
            class,
            confidence,
            bbox: NormBox {
                cy: o[0],
                cx: o[1],
                h: o[2].max(0.0),
                w: o[3].max(0.0),
            },
        }
    }
}

/// One evaluated frame: the prediction and the ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionResult {
    /// Network prediction.
    pub prediction: Detection,
    /// Ground-truth class.
    pub truth_class: usize,
    /// Ground-truth normalized box.
    pub truth_bbox: NormBox,
}

/// Top-1 accuracy over `(predicted, truth)` pairs, in percent.
pub fn top1_accuracy(pairs: &[(usize, usize)]) -> f32 {
    if pairs.is_empty() {
        return 0.0;
    }
    let correct = pairs.iter().filter(|(p, t)| p == t).count();
    100.0 * correct as f32 / pairs.len() as f32
}

/// Mean average precision at the given IoU threshold, in percent.
///
/// Per class: predictions of that class are sorted by confidence; each is a
/// true positive when the frame's ground truth has the same class and the
/// IoU clears `iou_threshold` (a frame's truth can be matched once — here
/// each frame has exactly one prediction, so this is automatic). AP is the
/// area under the interpolated precision–recall curve; mAP averages over
/// classes that appear in the ground truth.
pub fn mean_average_precision(results: &[DetectionResult], iou_threshold: f32) -> f32 {
    let mut aps = Vec::new();
    for class in 0..NUM_CLASSES {
        let truth_count = results.iter().filter(|r| r.truth_class == class).count();
        if truth_count == 0 {
            continue;
        }
        // Gather this class's predictions, sorted by descending confidence.
        let mut preds: Vec<&DetectionResult> = results
            .iter()
            .filter(|r| r.prediction.class == class)
            .collect();
        preds.sort_by(|a, b| b.prediction.confidence.total_cmp(&a.prediction.confidence));
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut curve: Vec<(f32, f32)> = Vec::with_capacity(preds.len()); // (recall, precision)
        for r in preds {
            let hit =
                r.truth_class == class && r.prediction.bbox.iou(&r.truth_bbox) >= iou_threshold;
            if hit {
                tp += 1;
            } else {
                fp += 1;
            }
            curve.push((tp as f32 / truth_count as f32, tp as f32 / (tp + fp) as f32));
        }
        // Every-point interpolation: precision at recall r is the max
        // precision at any recall ≥ r.
        let mut ap = 0.0;
        let mut prev_recall = 0.0;
        for i in 0..curve.len() {
            let max_prec = curve[i..].iter().map(|&(_, p)| p).fold(0.0f32, f32::max);
            let (recall, _) = curve[i];
            ap += (recall - prev_recall).max(0.0) * max_prec;
            prev_recall = recall;
        }
        aps.push(ap);
    }
    if aps.is_empty() {
        0.0
    } else {
        100.0 * aps.iter().sum::<f32>() / aps.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva2_tensor::Shape3;

    fn nb(cy: f32, cx: f32, h: f32, w: f32) -> NormBox {
        NormBox { cy, cx, h, w }
    }

    fn result(
        pred_class: usize,
        conf: f32,
        pred_box: NormBox,
        truth: usize,
        tbox: NormBox,
    ) -> DetectionResult {
        DetectionResult {
            prediction: Detection {
                class: pred_class,
                confidence: conf,
                bbox: pred_box,
            },
            truth_class: truth,
            truth_bbox: tbox,
        }
    }

    #[test]
    fn top1_basic() {
        assert_eq!(top1_accuracy(&[(1, 1), (2, 2), (3, 0), (0, 0)]), 75.0);
        assert_eq!(top1_accuracy(&[]), 0.0);
    }

    #[test]
    fn normbox_iou_identity() {
        let b = nb(0.5, 0.5, 0.4, 0.4);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
        assert_eq!(b.iou(&nb(0.05, 0.05, 0.05, 0.05)), 0.0);
    }

    #[test]
    fn perfect_detector_has_map_100() {
        let b = nb(0.5, 0.5, 0.3, 0.3);
        let results: Vec<DetectionResult> =
            (0..NUM_CLASSES).map(|c| result(c, 0.9, b, c, b)).collect();
        assert!((mean_average_precision(&results, 0.5) - 100.0).abs() < 1e-4);
    }

    #[test]
    fn wrong_class_gets_zero_ap() {
        let b = nb(0.5, 0.5, 0.3, 0.3);
        // Truth is class 0, prediction says class 1 always.
        let results = vec![result(1, 0.9, b, 0, b); 4];
        assert_eq!(mean_average_precision(&results, 0.5), 0.0);
    }

    #[test]
    fn bad_localization_gets_zero_ap() {
        let truth = nb(0.2, 0.2, 0.2, 0.2);
        let pred = nb(0.8, 0.8, 0.2, 0.2);
        let results = vec![result(0, 0.9, pred, 0, truth); 4];
        assert_eq!(mean_average_precision(&results, 0.5), 0.0);
    }

    #[test]
    fn map_is_between_extremes_for_mixed_results() {
        let good = nb(0.5, 0.5, 0.3, 0.3);
        let bad = nb(0.9, 0.9, 0.1, 0.1);
        let results = vec![
            result(0, 0.9, good, 0, good),
            result(0, 0.8, bad, 0, good),
            result(0, 0.7, good, 0, good),
            result(0, 0.6, bad, 0, good),
        ];
        let map = mean_average_precision(&results, 0.5);
        assert!(map > 0.0 && map < 100.0, "map = {map}");
    }

    #[test]
    fn confidence_ordering_matters() {
        let good = nb(0.5, 0.5, 0.3, 0.3);
        let bad = nb(0.9, 0.9, 0.05, 0.05);
        // High-confidence hits first → better AP than high-confidence misses.
        let good_first = vec![result(0, 0.9, good, 0, good), result(0, 0.1, bad, 0, good)];
        let bad_first = vec![result(0, 0.9, bad, 0, good), result(0, 0.1, good, 0, good)];
        assert!(mean_average_precision(&good_first, 0.5) > mean_average_precision(&bad_first, 0.5));
    }

    #[test]
    fn detection_decode() {
        let mut v = vec![0.5, 0.4, 0.3, 0.2];
        v.extend(vec![0.0; NUM_CLASSES]);
        v[4 + 2] = 5.0;
        let out = Tensor3::from_vec(Shape3::new(DETECTION_OUTPUTS, 1, 1), v);
        let d = Detection::from_output(&out);
        assert_eq!(d.class, 2);
        assert!(d.confidence > 0.9);
        assert_eq!(d.bbox.cy, 0.5);
        assert_eq!(d.bbox.w, 0.2);
    }

    #[test]
    fn detection_decode_clamps_negative_extent() {
        let mut v = vec![0.5, 0.5, -0.3, -0.2];
        v.extend(vec![0.1; NUM_CLASSES]);
        let out = Tensor3::from_vec(Shape3::new(DETECTION_OUTPUTS, 1, 1), v);
        let d = Detection::from_output(&out);
        assert_eq!(d.bbox.h, 0.0);
        assert_eq!(d.bbox.w, 0.0);
    }
}
