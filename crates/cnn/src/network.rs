//! Sequential networks with prefix/suffix execution.

use crate::layer::Layer;
use crate::receptive::ReceptiveField;
use eva2_tensor::{GemmScratch, Shape3, SparseActivation, Tensor3};
use std::fmt;

/// A feed-forward network: an ordered list of layers.
///
/// AMC splits the network at a *target layer* index: `forward_prefix` runs
/// layers `0..=target` (key frames only), `forward_suffix` runs layers
/// `target+1..` (every frame). The unsplit [`Network::forward`] is the
/// baseline generic-accelerator execution the paper compares against.
///
/// Networks are [`Clone`] (layers deep-copy via [`Layer::clone_box`]), so a
/// caller holding only `&Network` can mint the owned copy an
/// `Arc<Network>`-based serving engine needs.
#[derive(Clone)]
pub struct Network {
    name: String,
    input_shape: Shape3,
    layers: Vec<Box<dyn Layer>>,
}

// `Layer: Send + Sync` makes networks shareable by reference across
// threads: the pipelined executor keeps `&Network` on the main thread while
// a worker estimates motion, and batched executors can fan frames out over
// scoped threads. Enforce the property where the type is defined.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Network>();
    assert_send_sync::<Tensor3>();
};

impl Network {
    /// Creates an empty network expecting `input_shape` tensors.
    pub fn new(name: impl Into<String>, input_shape: Shape3) -> Self {
        Self {
            name: name.into(),
            input_shape,
            layers: Vec::new(),
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Expected input shape.
    pub fn input_shape(&self) -> Shape3 {
        self.input_shape
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// The network's static IR: one [`LayerInfo`](crate::describe::LayerInfo)
    /// per layer, in order. This is what the `eva2-analysis` pass pipeline
    /// consumes — cheap enough (a weight-statistics scan) to rebuild at
    /// every engine or session construction.
    pub fn describe(&self) -> Vec<crate::describe::LayerInfo> {
        self.layers.iter().map(|l| l.describe()).collect()
    }

    /// Shape of the activation *output by* layer `i` (for the configured
    /// input shape).
    pub fn shape_after(&self, i: usize) -> Shape3 {
        let mut s = self.input_shape;
        for layer in &self.layers[..=i] {
            s = layer.output_shape(s);
        }
        s
    }

    /// Shape of the activation *entering* layer `i`.
    pub fn shape_before(&self, i: usize) -> Shape3 {
        if i == 0 {
            self.input_shape
        } else {
            self.shape_after(i - 1)
        }
    }

    /// Full forward pass.
    pub fn forward(&self, input: &Tensor3) -> Tensor3 {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Forward pass retaining every intermediate activation.
    ///
    /// Returns `n+1` tensors: the input followed by each layer's output.
    /// Training and the delta-network baseline need the intermediates.
    pub fn forward_collect(&self, input: &Tensor3) -> Vec<Tensor3> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(input.clone());
        for layer in &self.layers {
            let next = layer.forward(acts.last().expect("nonempty"));
            acts.push(next);
        }
        acts
    }

    /// Runs layers `0..=target` — the AMC *prefix* (key frames only).
    pub fn forward_prefix(&self, input: &Tensor3, target: usize) -> Tensor3 {
        assert!(target < self.layers.len(), "target layer out of range");
        let mut x = input.clone();
        for layer in &self.layers[..=target] {
            x = layer.forward(&x);
        }
        x
    }

    /// Runs layers `target+1..` — the AMC *suffix* (every frame), starting
    /// from a (stored or warped) target activation.
    pub fn forward_suffix(&self, activation: &Tensor3, target: usize) -> Tensor3 {
        assert!(target < self.layers.len(), "target layer out of range");
        let mut x = activation.clone();
        for layer in &self.layers[target + 1..] {
            x = layer.forward(&x);
        }
        x
    }

    /// [`Network::forward_prefix`] reusing caller-owned GEMM scratch, so a
    /// frame-loop caller (the AMC executor) does no per-frame im2col
    /// allocation. Activations are handed layer to layer by value
    /// ([`Layer::forward_owned`]), so in-place-capable layers (ReLU)
    /// rectify without allocating — bit-identical to the borrowing chain.
    pub fn forward_prefix_scratch(
        &self,
        input: &Tensor3,
        target: usize,
        scratch: &mut GemmScratch,
    ) -> Tensor3 {
        assert!(target < self.layers.len(), "target layer out of range");
        let mut x = input.clone();
        for layer in &self.layers[..=target] {
            x = layer.forward_owned(x, scratch);
        }
        x
    }

    /// Runs the AMC prefix over a batch of same-shape frames — the
    /// cross-stream key-frame path of the serving engine
    /// (`eva2_core::serve`).
    ///
    /// Outputs are **bit-identical** to calling
    /// [`Network::forward_prefix_scratch`] once per frame (see
    /// [`Layer::forward_batch`] for the contract); the batch amortizes the
    /// per-invocation costs instead: GEMM weight panels are packed once per
    /// layer per batch, the shared im2col scratch is sized once, ReLU
    /// rectifies in place, and pooling runs over row slices. Key frames
    /// from independent, decorrelated streams can therefore share one
    /// im2col + packed-GEMM pass per layer.
    ///
    /// # Panics
    ///
    /// Panics when `target` is out of range or the frames' shapes differ.
    pub fn forward_prefix_batched(
        &self,
        inputs: Vec<Tensor3>,
        target: usize,
        scratch: &mut GemmScratch,
    ) -> Vec<Tensor3> {
        assert!(target < self.layers.len(), "target layer out of range");
        if inputs.is_empty() {
            return Vec::new();
        }
        let shape = inputs[0].shape();
        assert!(
            inputs.iter().all(|t| t.shape() == shape),
            "batched prefix requires same-shape frames"
        );
        // The batch is consumed, not cloned: layers that can work in place
        // (ReLU) do, and the engine's key-frame inputs are throwaway.
        let mut batch = inputs;
        for layer in &self.layers[..=target] {
            batch = layer.forward_batch(batch, scratch);
        }
        batch
    }

    /// [`Network::forward_suffix`] reusing caller-owned GEMM scratch.
    pub fn forward_suffix_scratch(
        &self,
        activation: &Tensor3,
        target: usize,
        scratch: &mut GemmScratch,
    ) -> Tensor3 {
        assert!(target < self.layers.len(), "target layer out of range");
        let mut x = activation.clone();
        for layer in &self.layers[target + 1..] {
            x = layer.forward_scratch(&x, scratch);
        }
        x
    }

    /// Runs the suffix directly from a sparse target activation.
    ///
    /// The first suffix layer consumes the non-zero entries via
    /// [`Layer::forward_sparse`] when it has a sparse-aware path
    /// (convolution, fully-connected) — skipping zero runs instead of
    /// densify-then-multiply, mirroring the paper's skip-zero hardware
    /// (§IV). Layers without one (pooling) densify first. Remaining suffix
    /// layers run dense with shared scratch.
    pub fn forward_suffix_sparse(
        &self,
        activation: &SparseActivation,
        target: usize,
        scratch: &mut GemmScratch,
    ) -> Tensor3 {
        assert!(target < self.layers.len(), "target layer out of range");
        let suffix = &self.layers[target + 1..];
        let Some((first, rest)) = suffix.split_first() else {
            return activation.to_dense();
        };
        let mut x = match first.forward_sparse(activation, scratch) {
            Some(out) => out,
            None => first.forward_scratch(&activation.to_dense(), scratch),
        };
        for layer in rest {
            x = layer.forward_scratch(&x, scratch);
        }
        x
    }

    /// Backpropagates through all layers given the forward activations from
    /// [`Network::forward_collect`] and the gradient of the loss w.r.t. the
    /// network output. Returns the gradient w.r.t. the input.
    pub fn backward(&mut self, acts: &[Tensor3], grad_out: Tensor3) -> Tensor3 {
        assert_eq!(acts.len(), self.layers.len() + 1, "activation count");
        let mut grad = grad_out;
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            grad = layer.backward(&acts[i], &grad);
        }
        grad
    }

    /// Backpropagates only through the suffix `target+1..` (used by the
    /// Table III suffix-retraining experiment). `acts` must be the forward
    /// activations of the suffix: `acts[0]` is the (possibly warped) target
    /// activation, `acts[i]` the output of suffix layer `i-1`.
    pub fn backward_suffix(&mut self, target: usize, acts: &[Tensor3], grad_out: Tensor3) {
        let suffix = &mut self.layers[target + 1..];
        assert_eq!(acts.len(), suffix.len() + 1, "suffix activation count");
        let mut grad = grad_out;
        for (i, layer) in suffix.iter_mut().enumerate().rev() {
            grad = layer.backward(&acts[i], &grad);
        }
    }

    /// Forward pass through the suffix retaining intermediates (companion of
    /// [`Network::backward_suffix`]).
    pub fn forward_suffix_collect(&self, activation: &Tensor3, target: usize) -> Vec<Tensor3> {
        let mut acts = vec![activation.clone()];
        for layer in &self.layers[target + 1..] {
            let next = layer.forward(acts.last().expect("nonempty"));
            acts.push(next);
        }
        acts
    }

    /// Applies accumulated gradients on every layer.
    pub fn apply_grads(&mut self, lr: f32, batch: usize) {
        for layer in &mut self.layers {
            layer.apply_grads(lr, batch);
        }
    }

    /// Index of the last spatial layer — the paper's default ("late") target
    /// layer: "we implement AMC by statically targeting the last spatial
    /// layer" (§II-C5).
    pub fn last_spatial_layer(&self) -> Option<usize> {
        let mut last = None;
        for (i, layer) in self.layers.iter().enumerate() {
            if layer.is_spatial() {
                last = Some(i);
            } else {
                break; // spatial prefix ends at the first non-spatial layer
            }
        }
        last
    }

    /// Index of the first pooling-like downsampling layer's position, i.e.
    /// the paper's "early" target: "the early layer is after the CNN's first
    /// pooling layer" (§IV-E3).
    pub fn first_pool_layer(&self) -> Option<usize> {
        self.layers.iter().position(|l| {
            l.geometry()
                .map(|g| g.stride > 1 && l.param_count() == 0)
                .unwrap_or(false)
        })
    }

    /// Receptive field of the activation produced by layer `target`, as seen
    /// from the input pixels.
    pub fn receptive_field(&self, target: usize) -> ReceptiveField {
        ReceptiveField::of_prefix(&self.layers[..=target])
    }

    /// Total MACs of a full forward pass.
    pub fn total_macs(&self) -> u64 {
        let mut s = self.input_shape;
        let mut total = 0;
        for layer in &self.layers {
            total += layer.macs(s);
            s = layer.output_shape(s);
        }
        total
    }

    /// MACs of the prefix `0..=target` (the work AMC skips on predicted
    /// frames).
    pub fn prefix_macs(&self, target: usize) -> u64 {
        let mut s = self.input_shape;
        let mut total = 0;
        for layer in &self.layers[..=target] {
            total += layer.macs(s);
            s = layer.output_shape(s);
        }
        total
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Snapshots every layer's parameters (for checkpointing).
    pub fn snapshot(&self) -> Vec<Vec<f32>> {
        self.layers.iter().map(|l| l.params()).collect()
    }

    /// Restores a snapshot taken from a structurally identical network.
    ///
    /// # Panics
    ///
    /// Panics when the layer count or any layer's parameter count differs.
    pub fn restore(&mut self, snapshot: &[Vec<f32>]) {
        assert_eq!(snapshot.len(), self.layers.len(), "layer count mismatch");
        for (layer, params) in self.layers.iter_mut().zip(snapshot) {
            layer.load_params(params);
        }
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Network({}, input={})", self.name, self.input_shape)?;
        let mut s = self.input_shape;
        for (i, layer) in self.layers.iter().enumerate() {
            s = layer.output_shape(s);
            writeln!(f, "  [{i}] {layer:?} -> {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Conv2d, FullyConnected, MaxPool2d, Relu};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy_net() -> Network {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = Network::new("toy", Shape3::new(1, 8, 8));
        net.push(Box::new(Conv2d::new("conv1", 1, 4, 3, 1, 1, &mut rng)));
        net.push(Box::new(Relu::new("relu1")));
        net.push(Box::new(MaxPool2d::new("pool1", 2, 2)));
        net.push(Box::new(Conv2d::new("conv2", 4, 8, 3, 1, 1, &mut rng)));
        net.push(Box::new(Relu::new("relu2")));
        net.push(Box::new(FullyConnected::new("fc1", 8 * 4 * 4, 4, &mut rng)));
        net
    }

    #[test]
    fn shapes_propagate() {
        let net = toy_net();
        assert_eq!(net.shape_after(0), Shape3::new(4, 8, 8));
        assert_eq!(net.shape_after(2), Shape3::new(4, 4, 4));
        assert_eq!(net.shape_after(5), Shape3::new(4, 1, 1));
        assert_eq!(net.shape_before(3), Shape3::new(4, 4, 4));
        assert_eq!(net.shape_before(0), Shape3::new(1, 8, 8));
    }

    #[test]
    fn prefix_plus_suffix_equals_full() {
        let net = toy_net();
        let input = Tensor3::from_fn(Shape3::new(1, 8, 8), |_, y, x| ((y * 8 + x) as f32).sin());
        let full = net.forward(&input);
        for target in 0..4 {
            let act = net.forward_prefix(&input, target);
            let split = net.forward_suffix(&act, target);
            assert_eq!(split, full, "split at {target} diverged");
        }
    }

    #[test]
    fn forward_collect_matches_forward() {
        let net = toy_net();
        let input = Tensor3::filled(Shape3::new(1, 8, 8), 0.5);
        let acts = net.forward_collect(&input);
        assert_eq!(acts.len(), net.len() + 1);
        assert_eq!(acts.last().unwrap(), &net.forward(&input));
    }

    #[test]
    fn batched_prefix_bit_identical_to_single_runs() {
        use eva2_tensor::GemmScratch;
        // Exercises every overriding layer kind: strided conv (crate::zoo's
        // FasterM opens with one), ReLU, and pooling.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut net = Network::new("batchy", Shape3::new(1, 12, 12));
        net.push(Box::new(Conv2d::new("conv1", 1, 4, 5, 2, 2, &mut rng)));
        net.push(Box::new(Relu::new("relu1")));
        net.push(Box::new(MaxPool2d::new("pool1", 2, 2)));
        net.push(Box::new(Conv2d::new("conv2", 4, 8, 3, 1, 1, &mut rng)));
        net.push(Box::new(Relu::new("relu2")));
        let target = net.last_spatial_layer().unwrap();
        let frames: Vec<Tensor3> = (0..4)
            .map(|f| {
                Tensor3::from_fn(Shape3::new(1, 12, 12), |_, y, x| {
                    ((y * 13 + x * 7 + f * 31) as f32 * 0.17).sin()
                })
            })
            .collect();
        let mut scratch = GemmScratch::new();
        let batched = net.forward_prefix_batched(frames.clone(), target, &mut scratch);
        assert_eq!(batched.len(), 4);
        for (frame, got) in frames.iter().zip(&batched) {
            let want = net.forward_prefix_scratch(frame, target, &mut scratch);
            assert_eq!(got.as_slice(), want.as_slice(), "batched prefix bits");
        }
        // Batch of one and the empty batch are fine too.
        let one = net.forward_prefix_batched(vec![frames[0].clone()], target, &mut scratch);
        assert_eq!(
            one[0].as_slice(),
            net.forward_prefix_scratch(&frames[0], target, &mut scratch)
                .as_slice()
        );
        assert!(net
            .forward_prefix_batched(Vec::new(), target, &mut scratch)
            .is_empty());
    }

    #[test]
    fn prefix_scratch_owned_chain_bit_identical_to_borrowing_chain() {
        use eva2_tensor::GemmScratch;
        let net = toy_net();
        let input = Tensor3::from_fn(Shape3::new(1, 8, 8), |_, y, x| ((y * 3 + x) as f32).sin());
        let mut scratch = GemmScratch::new();
        for target in 0..=4 {
            let owned = net.forward_prefix_scratch(&input, target, &mut scratch);
            let mut borrowed = input.clone();
            for layer in &net.layers()[..=target] {
                borrowed = layer.forward_scratch(&borrowed, &mut scratch);
            }
            assert_eq!(
                owned.as_slice(),
                borrowed.as_slice(),
                "owned chain bits at target {target}"
            );
        }
    }

    #[test]
    fn last_spatial_layer_stops_at_fc() {
        let net = toy_net();
        assert_eq!(net.last_spatial_layer(), Some(4)); // relu2
        assert_eq!(net.first_pool_layer(), Some(2)); // pool1
    }

    #[test]
    fn macs_sum() {
        let net = toy_net();
        // conv1: 8*8*4 * 1*9 = 2304; conv2: 4*4*8 * 4*9 = 4608; fc: 128*4 = 512
        assert_eq!(net.total_macs(), 2304 + 4608 + 512);
        assert_eq!(net.prefix_macs(2), 2304);
        assert_eq!(net.prefix_macs(4), 2304 + 4608);
    }

    #[test]
    fn end_to_end_gradcheck() {
        let mut net = toy_net();
        let input = Tensor3::from_fn(Shape3::new(1, 8, 8), |_, y, x| ((y + 2 * x) as f32).cos());
        let acts = net.forward_collect(&input);
        let out = acts.last().unwrap().clone();
        let grad_out = Tensor3::filled(out.shape(), 1.0);
        let grad_in = net.backward(&acts, grad_out);
        // Numerically check a few input coordinates.
        let eps = 1e-2;
        for &(y, x) in &[(0usize, 0usize), (3, 5), (7, 7)] {
            let mut plus = input.clone();
            plus.set(0, y, x, input.get(0, y, x) + eps);
            let mut minus = input.clone();
            minus.set(0, y, x, input.get(0, y, x) - eps);
            let lp: f32 = net.forward(&plus).iter().sum();
            let lm: f32 = net.forward(&minus).iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.get(0, y, x);
            assert!(
                (numeric - analytic).abs() < 0.05 * (1.0 + numeric.abs()),
                "at ({y},{x}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn suffix_training_leaves_prefix_untouched() {
        let mut net = toy_net();
        let input = Tensor3::filled(Shape3::new(1, 8, 8), 0.3);
        let target = net.last_spatial_layer().unwrap();
        let act_before = net.forward_prefix(&input, target);
        // Train the suffix a few steps on an arbitrary loss.
        for _ in 0..3 {
            let acts = net.forward_suffix_collect(&act_before, target);
            let out = acts.last().unwrap().clone();
            let grad = out.map(|v| 2.0 * v); // d/dv of v^2
            net.backward_suffix(target, &acts, grad);
            net.apply_grads(0.01, 1);
        }
        let act_after = net.forward_prefix(&input, target);
        assert_eq!(act_before, act_after, "prefix weights must not change");
    }

    #[test]
    fn debug_lists_layers() {
        let net = toy_net();
        let d = format!("{net:?}");
        assert!(d.contains("conv1"));
        assert!(d.contains("fc1"));
    }

    #[test]
    fn param_count_sums() {
        let net = toy_net();
        let expect = (4 * 9 + 4) + (8 * 4 * 9 + 8) + (8 * 16 * 4 + 4);
        assert_eq!(net.param_count(), expect);
    }
}
