//! The delta-network baseline AMC argues against.
//!
//! §II of the paper: "Delta networks operate by storing the old activation,
//! f(x), for every layer, computing df(dx) for new layers, and adding it to
//! the stored data… they do not address the primary efficiency bottlenecks."
//! The three drawbacks are (1) storing *every* layer's activation, (2)
//! loading the full weight set every frame, and (3) pixel-level derivatives
//! being a poor model of scene motion.
//!
//! [`DeltaExecutor`] implements per-layer delta propagation faithfully
//! (its outputs equal a full forward pass up to float error for linear
//! layers, and exactly for the piecewise recomputation used here) while
//! instrumenting the costs that make delta updating unattractive:
//! activations stored, weights loaded, and the density of each layer's
//! delta. The ablation bench compares those numbers against AMC's.

use crate::network::Network;
use eva2_tensor::Tensor3;

/// Cost counters accumulated by one delta update.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeltaStats {
    /// Total activation values that must stay resident (every layer).
    pub stored_activation_values: usize,
    /// Weight values loaded (the full model, every predicted frame).
    pub weights_loaded: usize,
    /// Per-layer fraction of input-delta elements that are non-zero.
    pub delta_density: Vec<f32>,
}

impl DeltaStats {
    /// Mean non-zero fraction across layers (1.0 = fully dense deltas).
    pub fn mean_density(&self) -> f32 {
        if self.delta_density.is_empty() {
            0.0
        } else {
            self.delta_density.iter().sum::<f32>() / self.delta_density.len() as f32
        }
    }
}

/// Executes a network in delta mode: stores all per-layer activations from
/// the previous frame and updates them for each new frame.
#[derive(Debug)]
pub struct DeltaExecutor {
    /// Stored activations, `acts[0]` = input, `acts[i]` = output of layer
    /// `i-1`. Present after the first frame.
    acts: Option<Vec<Tensor3>>,
    /// Threshold below which a delta element counts as zero (and could be
    /// skipped by a delta accelerator).
    threshold: f32,
}

impl DeltaExecutor {
    /// Creates a delta executor with the given zero-delta threshold.
    pub fn new(threshold: f32) -> Self {
        Self {
            acts: None,
            threshold,
        }
    }

    /// Processes a frame, returning the network output and the cost stats.
    ///
    /// The first frame is a full pass (density 1.0 everywhere). Subsequent
    /// frames compute each layer on the new input and record how dense the
    /// layer-input deltas were — the quantity a delta accelerator's savings
    /// depend on.
    pub fn process(&mut self, net: &Network, input: &Tensor3) -> (Tensor3, DeltaStats) {
        let new_acts = net.forward_collect(input);
        let mut density = Vec::with_capacity(net.len());
        match &self.acts {
            None => {
                density.resize(net.len(), 1.0);
            }
            Some(old) => {
                for i in 0..net.len() {
                    let d = new_acts[i].zip_with(&old[i], |a, b| a - b);
                    let nonzero = d.iter().filter(|v| v.abs() > self.threshold).count();
                    let total = d.as_slice().len().max(1);
                    density.push(nonzero as f32 / total as f32);
                }
            }
        }
        let stats = DeltaStats {
            stored_activation_values: new_acts.iter().map(|a| a.as_slice().len()).sum(),
            weights_loaded: net.param_count(),
            delta_density: density,
        };
        let output = new_acts.last().expect("output").clone();
        self.acts = Some(new_acts);
        (output, stats)
    }

    /// Drops the stored state (forces the next frame to be a full pass).
    pub fn reset(&mut self) {
        self.acts = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::tiny_alexnet;
    use eva2_tensor::Shape3;

    #[test]
    fn first_frame_is_fully_dense() {
        let zoo = tiny_alexnet(0);
        let mut exec = DeltaExecutor::new(1e-6);
        let input = Tensor3::filled(Shape3::new(1, 32, 32), 0.5);
        let (_, stats) = exec.process(&zoo.network, &input);
        assert!(stats.delta_density.iter().all(|&d| d == 1.0));
        assert_eq!(stats.weights_loaded, zoo.network.param_count());
    }

    #[test]
    fn identical_frames_have_zero_delta() {
        let zoo = tiny_alexnet(0);
        let mut exec = DeltaExecutor::new(1e-6);
        let input = Tensor3::filled(Shape3::new(1, 32, 32), 0.5);
        exec.process(&zoo.network, &input);
        let (_, stats) = exec.process(&zoo.network, &input);
        assert_eq!(stats.mean_density(), 0.0);
    }

    #[test]
    fn global_shift_makes_dense_deltas() {
        // The paper's core argument: camera motion changes most pixels, so
        // pixel-level deltas are dense even though scene *content* barely
        // changed.
        let zoo = tiny_alexnet(0);
        let mut exec = DeltaExecutor::new(1e-4);
        let frame0 = Tensor3::from_fn(Shape3::new(1, 32, 32), |_, y, x| {
            (((y * 7 + x * 3) % 13) as f32) / 13.0
        });
        let frame1 = frame0.translate(0, 2);
        exec.process(&zoo.network, &frame0);
        let (_, stats) = exec.process(&zoo.network, &frame1);
        assert!(
            stats.delta_density[0] > 0.5,
            "input delta density {} should be high under pan",
            stats.delta_density[0]
        );
    }

    #[test]
    fn output_matches_plain_forward() {
        let zoo = tiny_alexnet(3);
        let mut exec = DeltaExecutor::new(1e-6);
        let input = Tensor3::from_fn(Shape3::new(1, 32, 32), |_, y, x| {
            ((y + x) as f32 * 0.01).sin()
        });
        let (out, _) = exec.process(&zoo.network, &input);
        assert_eq!(out, zoo.network.forward(&input));
    }

    #[test]
    fn reset_forces_full_pass() {
        let zoo = tiny_alexnet(0);
        let mut exec = DeltaExecutor::new(1e-6);
        let input = Tensor3::filled(Shape3::new(1, 32, 32), 0.5);
        exec.process(&zoo.network, &input);
        exec.reset();
        let (_, stats) = exec.process(&zoo.network, &input);
        assert!(stats.delta_density.iter().all(|&d| d == 1.0));
    }

    #[test]
    fn stored_activations_cover_every_layer() {
        let zoo = tiny_alexnet(0);
        let mut exec = DeltaExecutor::new(1e-6);
        let input = Tensor3::filled(Shape3::new(1, 32, 32), 0.1);
        let (_, stats) = exec.process(&zoo.network, &input);
        // Must be strictly larger than any single layer: the sum of all.
        let single_largest = 8 * 32 * 32; // conv1 output
        assert!(stats.stored_activation_values > single_largest);
    }
}
