//! Neural network layers with forward and backward passes.
//!
//! Every layer implements [`Layer`]. Spatial layers (convolution, pooling,
//! ReLU) report a [`LayerGeometry`] so the receptive-field arithmetic in
//! [`crate::receptive`] can fold them; non-spatial layers (fully-connected)
//! return `None`, which is exactly the property AMC uses to bound the target
//! layer ("these non-spatial layers must remain in the CNN suffix", §II-C5).

use crate::describe::{ChannelStats, LayerInfo, LayerKind};
use eva2_tensor::gemm::{self, GemmScratch};
use eva2_tensor::{Shape3, SparseActivation, Tensor3};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Kernel/stride/padding of a spatial layer, used by receptive-field
/// arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerGeometry {
    /// Kernel side length.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each side.
    pub padding: usize,
}

impl LayerGeometry {
    /// Geometry of a 1×1, stride-1 "pass-through" layer (e.g. ReLU).
    pub const IDENTITY: LayerGeometry = LayerGeometry {
        kernel: 1,
        stride: 1,
        padding: 0,
    };

    /// Output spatial length for an input of length `n` (floor convention).
    pub fn output_len(&self, n: usize) -> usize {
        let padded = n + 2 * self.padding;
        if padded < self.kernel {
            0
        } else {
            (padded - self.kernel) / self.stride + 1
        }
    }
}

/// A neural network layer.
///
/// `backward` consumes the gradient with respect to the layer's output and
/// returns the gradient with respect to its input, accumulating parameter
/// gradients internally; [`Layer::apply_grads`] then performs an SGD step and
/// clears the accumulators.
pub trait Layer: fmt::Debug + Send + Sync {
    /// Human-readable layer name (e.g. `conv2`).
    fn name(&self) -> &str;

    /// Output shape for a given input shape.
    fn output_shape(&self, input: Shape3) -> Shape3;

    /// Runs the layer forward.
    fn forward(&self, input: &Tensor3) -> Tensor3;

    /// Runs the layer forward reusing caller-owned scratch buffers.
    ///
    /// Layers that lower to GEMM ([`Conv2d`]) use `scratch` for their
    /// im2col packing so steady-state frame processing performs no
    /// per-frame allocation; layers without scratch needs fall back to
    /// [`Layer::forward`].
    fn forward_scratch(&self, input: &Tensor3, scratch: &mut GemmScratch) -> Tensor3 {
        let _ = scratch;
        self.forward(input)
    }

    /// Runs the layer forward consuming an owned input — the single-frame
    /// companion of [`Layer::forward_batch`], used by
    /// `Network::forward_prefix_scratch` so layers that can work in place
    /// skip the per-frame allocate-and-copy entirely.
    ///
    /// The contract is **bit-identity** with [`Layer::forward_scratch`] on
    /// the same input (the default is exactly that call). [`Relu`]
    /// overrides it to rectify in place.
    fn forward_owned(&self, input: Tensor3, scratch: &mut GemmScratch) -> Tensor3 {
        self.forward_scratch(&input, scratch)
    }

    /// Runs the layer forward over a batch of same-shape frames, consuming
    /// the inputs — the cross-stream key-frame seam of the serving engine
    /// (`eva2_core::serve`).
    ///
    /// The contract is **bit-identity** with mapping
    /// [`Layer::forward_scratch`] over the batch; implementations may only
    /// reorganise work that cannot change any output bit. The default does
    /// exactly that mapping. [`Conv2d`] overrides it to amortise GEMM
    /// packing across frames, [`Relu`] to rectify in place (no per-frame
    /// allocation), and [`MaxPool2d`] to pool over row slices instead of
    /// per-element accessors.
    fn forward_batch(&self, batch: Vec<Tensor3>, scratch: &mut GemmScratch) -> Vec<Tensor3> {
        batch
            .iter()
            .map(|x| self.forward_scratch(x, scratch))
            .collect()
    }

    /// Runs the layer forward directly from a sparse activation, skipping
    /// zero entries (the software analogue of the EVA² skip-zero suffix
    /// feed, §IV of the paper).
    ///
    /// Returns `None` when the layer has no sparse-aware path; the caller
    /// then densifies and uses [`Layer::forward_scratch`].
    fn forward_sparse(
        &self,
        input: &SparseActivation,
        scratch: &mut GemmScratch,
    ) -> Option<Tensor3> {
        let _ = (input, scratch);
        None
    }

    /// Backpropagates `grad_out`, returning the gradient w.r.t. `input`.
    ///
    /// `input` must be the tensor passed to the corresponding `forward`.
    fn backward(&mut self, input: &Tensor3, grad_out: &Tensor3) -> Tensor3;

    /// Applies accumulated gradients with learning rate `lr` (scaled by
    /// `1/batch`), then clears them. Layers without parameters do nothing.
    fn apply_grads(&mut self, lr: f32, batch: usize);

    /// Geometry for spatial layers; `None` for layers with no 2-D structure.
    fn geometry(&self) -> Option<LayerGeometry>;

    /// `true` when the layer preserves 2-D spatial structure, i.e. can sit
    /// inside an AMC prefix.
    fn is_spatial(&self) -> bool {
        self.geometry().is_some()
    }

    /// Multiply–accumulate operations for one forward pass on `input`.
    ///
    /// The paper's first-order model (§IV-A) and the hardware cost model are
    /// driven by MAC counts; pooling and ReLU return 0 MACs, matching the
    /// model's focus on convolutional/FC work.
    fn macs(&self, input: Shape3) -> u64;

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Copies all trainable parameters (weights then biases) into a flat
    /// vector. Parameter-free layers return an empty vector.
    fn params(&self) -> Vec<f32> {
        Vec::new()
    }

    /// Restores parameters captured by [`Layer::params`].
    ///
    /// # Panics
    ///
    /// Implementations panic when `params.len() != self.param_count()`.
    fn load_params(&mut self, params: &[f32]) {
        assert!(
            params.is_empty(),
            "{}: layer has no parameters to load",
            self.name()
        );
    }

    /// Deep-copies the layer behind a fresh `Box<dyn Layer>`.
    ///
    /// Makes `Box<dyn Layer>` — and therefore [`Network`](crate::Network) —
    /// [`Clone`], so callers that only hold `&Network` (e.g. the experiment
    /// protocols) can hand an owned copy to `Arc`-based serving engines.
    fn clone_box(&self) -> Box<dyn Layer>;

    /// The layer's static description — the IR node the `eva2-analysis`
    /// pass pipeline consumes (see [`crate::describe`]).
    ///
    /// The default implementation reports [`LayerKind::Opaque`]: analysis
    /// over an undescribed layer stops with a warning instead of guessing.
    /// Built-in layers override this with their real kind and weight
    /// statistics.
    fn describe(&self) -> LayerInfo {
        LayerInfo {
            name: self.name().to_string(),
            kind: LayerKind::Opaque,
            geometry: self.geometry(),
            channels: Vec::new(),
        }
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

// ---------------------------------------------------------------------------
// Convolution
// ---------------------------------------------------------------------------

/// A 2-D convolutional layer with square kernels and zero padding.
#[derive(Clone)]
pub struct Conv2d {
    name: String,
    in_channels: usize,
    out_channels: usize,
    geom: LayerGeometry,
    /// Weights indexed `[oc][ic][ky][kx]`, flattened.
    weights: Vec<f32>,
    /// Transposed copy `[ic][ky][kx][oc]`, kept in sync by
    /// [`Conv2d::sync_transpose`].
    ///
    /// The sparse conv-head path turns every surviving input entry into
    /// `K²` unit-stride AXPYs over rows of this matrix (a *gather* over all
    /// output channels at once, like the FC sparse path) instead of the
    /// scalar plane-strided scatter it replaced.
    weights_t: Vec<f32>,
    bias: Vec<f32>,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    momentum_w: Vec<f32>,
    momentum_b: Vec<f32>,
}

impl Conv2d {
    /// Creates a convolution with He-initialised weights drawn from `rng`.
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut ChaCha8Rng,
    ) -> Self {
        let n = out_channels * in_channels * kernel * kernel;
        let scale = (2.0 / (in_channels * kernel * kernel) as f32).sqrt();
        let weights = (0..n)
            .map(|_| rng.gen_range(-1.0f32..1.0) * scale)
            .collect();
        let mut conv = Self {
            name: name.into(),
            in_channels,
            out_channels,
            geom: LayerGeometry {
                kernel,
                stride,
                padding,
            },
            weights,
            weights_t: vec![0.0; n],
            bias: vec![0.0; out_channels],
            grad_w: vec![0.0; n],
            grad_b: vec![0.0; out_channels],
            momentum_w: vec![0.0; n],
            momentum_b: vec![0.0; out_channels],
        };
        conv.sync_transpose();
        conv
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels (filters).
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    #[inline]
    fn w_index(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> usize {
        let k = self.geom.kernel;
        ((oc * self.in_channels + ic) * k + ky) * k + kx
    }

    /// Direct access to the weight buffer (for tests constructing known
    /// filters). Call [`Conv2d::sync_transpose`] after mutating before
    /// exercising the sparse path.
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// Rebuilds the transposed weight copy after a weight mutation.
    ///
    /// Called automatically by [`Layer::apply_grads`],
    /// [`Layer::load_params`], and [`Conv2d::set_weight`]; tests poking
    /// [`Conv2d::weights_mut`] directly must call it before exercising the
    /// sparse path.
    pub fn sync_transpose(&mut self) {
        let k_dim = self.in_channels * self.geom.kernel * self.geom.kernel;
        for oc in 0..self.out_channels {
            for w0 in 0..k_dim {
                self.weights_t[w0 * self.out_channels + oc] = self.weights[oc * k_dim + w0];
            }
        }
    }

    /// Sets a single weight `[oc][ic][ky][kx]` (both layouts stay in sync).
    pub fn set_weight(&mut self, oc: usize, ic: usize, ky: usize, kx: usize, v: f32) {
        let i = self.w_index(oc, ic, ky, kx);
        self.weights[i] = v;
        let k = self.geom.kernel;
        let w0 = ((ic * k) + ky) * k + kx;
        self.weights_t[w0 * self.out_channels + oc] = v;
    }

    fn check_input(&self, shape: Shape3) {
        assert_eq!(
            shape.channels, self.in_channels,
            "{}: input channel mismatch",
            self.name
        );
    }

    /// Reference implementation: the direct six-loop convolution.
    ///
    /// Kept for golden-equivalence tests and the naive-vs-GEMM benchmark;
    /// the production path is [`Layer::forward`], which lowers to
    /// im2col + GEMM ([`eva2_tensor::gemm`]).
    pub fn forward_naive(&self, input: &Tensor3) -> Tensor3 {
        self.check_input(input.shape());
        let out_shape = self.output_shape(input.shape());
        let k = self.geom.kernel;
        let s = self.geom.stride as isize;
        let p = self.geom.padding as isize;
        let mut out = Tensor3::zeros(out_shape);
        for oc in 0..self.out_channels {
            for oy in 0..out_shape.height {
                for ox in 0..out_shape.width {
                    let mut acc = self.bias[oc];
                    let base_y = oy as isize * s - p;
                    let base_x = ox as isize * s - p;
                    for ic in 0..self.in_channels {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iv = input.get_padded(
                                    ic,
                                    base_y + ky as isize,
                                    base_x + kx as isize,
                                );
                                if iv != 0.0 {
                                    acc += self.weights[self.w_index(oc, ic, ky, kx)] * iv;
                                }
                            }
                        }
                    }
                    out.set(oc, oy, ox, acc);
                }
            }
        }
        out
    }

    /// Reference backward pass matching [`Conv2d::forward_naive`]
    /// (accumulates parameter gradients like [`Layer::backward`]).
    pub fn backward_naive(&mut self, input: &Tensor3, grad_out: &Tensor3) -> Tensor3 {
        let out_shape = self.output_shape(input.shape());
        assert_eq!(grad_out.shape(), out_shape, "{}: grad shape", self.name);
        let k = self.geom.kernel;
        let s = self.geom.stride as isize;
        let p = self.geom.padding as isize;
        let in_shape = input.shape();
        let mut grad_in = Tensor3::zeros(in_shape);
        for oc in 0..self.out_channels {
            for oy in 0..out_shape.height {
                for ox in 0..out_shape.width {
                    let g = grad_out.get(oc, oy, ox);
                    if g == 0.0 {
                        continue;
                    }
                    self.grad_b[oc] += g;
                    let base_y = oy as isize * s - p;
                    let base_x = ox as isize * s - p;
                    for ic in 0..self.in_channels {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = base_y + ky as isize;
                                let ix = base_x + kx as isize;
                                if in_shape.contains_spatial(iy, ix) {
                                    let (iyu, ixu) = (iy as usize, ix as usize);
                                    let wi = self.w_index(oc, ic, ky, kx);
                                    self.grad_w[wi] += g * input.get(ic, iyu, ixu);
                                    grad_in.add_at(ic, iyu, ixu, g * self.weights[wi]);
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    /// Sparse forward: a *gather* over transposed weights, visiting no zero
    /// entries at all.
    ///
    /// Each surviving input entry contributes `K²` unit-stride AXPYs over
    /// `[ic][ky][kx]`-rows of the transposed weight copy, accumulated into a
    /// position-major (`H·W × C_out`) scratch buffer so every inner
    /// operation is a contiguous vector op — the same shape as the FC
    /// sparse path. A final pass stores the accumulator channel-major and
    /// adds the bias. Cost is `O(nnz · K² · C_out)` wide ops versus the
    /// dense path's `O(C_in · H·W · K² · C_out)` — proportional savings
    /// equal to the activation's sparsity, mirroring the paper's skip-zero
    /// hardware, and (unlike the scalar scatter this replaced) the win is
    /// realised already at 50% sparsity.
    pub fn forward_sparse_impl(
        &self,
        input: &SparseActivation,
        scratch: &mut GemmScratch,
    ) -> Tensor3 {
        self.check_input(input.shape());
        let out_shape = self.output_shape(input.shape());
        let s = self.geom.stride;
        let mut out = Tensor3::zeros(out_shape);
        let noc = self.out_channels;
        let plane = out_shape.plane_len();
        let acc = scratch.sparse_out_buffer(plane * noc);
        if plane == 0 {
            return out;
        }
        if s == 1 {
            self.gather_stride1(input, out_shape, acc);
            // Undo the x-mirroring of the accumulator (see gather_stride1)
            // while storing channel-major and adding the bias.
            let out_w = out_shape.width;
            for (oc, &b) in self.bias.iter().enumerate() {
                let ch = out.channel_mut(oc);
                for (arow, orow) in acc
                    .chunks_exact(out_w * noc)
                    .zip(ch.chunks_exact_mut(out_w))
                {
                    for (ox, ov) in orow.iter_mut().enumerate() {
                        *ov = b + arow[(out_w - 1 - ox) * noc + oc];
                    }
                }
            }
        } else {
            self.gather_strided(input, out_shape, acc);
            for (oc, &b) in self.bias.iter().enumerate() {
                for (pos, ov) in out.channel_mut(oc).iter_mut().enumerate() {
                    *ov = b + acc[pos * noc + oc];
                }
            }
        }
        out
    }

    /// Stride-1 gather: the hot case (every conv-head suffix layer in the
    /// zoo).
    ///
    /// Two structural tricks keep the inner loop wide and branch-free:
    ///
    /// * Valid `ky`/`kx` windows are interval arithmetic per non-zero
    ///   (`oy = iy + p − ky` must land in `[0, H_out)`), not per kernel
    ///   position, and entries are walked per input row so the row/`ky`
    ///   work hoists out of the per-entry loop — no division or modulo
    ///   anywhere in the scan.
    /// * The accumulator stores each output row **x-mirrored**
    ///   (`acc[(oy·W + (W−1−ox))·C_out + oc]`). Ascending `kx` walks weight
    ///   rows forward but output columns *backward* (`ox = x + p − kx`);
    ///   mirroring makes both ascend, so each (non-zero, `ky`) pair becomes
    ///   ONE contiguous `nkx·C_out`-wide AXPY over the transposed weights
    ///   instead of `nkx` short reversed segments. The store pass un-mirrors.
    fn gather_stride1(&self, input: &SparseActivation, out_shape: Shape3, acc: &mut [f32]) {
        let k = self.geom.kernel;
        let p = self.geom.padding;
        let noc = self.out_channels;
        let (out_h, out_w) = (out_shape.height, out_shape.width);
        let w_in = input.shape().width;
        for ic in 0..self.in_channels {
            let entries = input.channel(ic);
            let mut i = 0;
            while i < entries.len() {
                // One input row's worth of entries: positions are strictly
                // ascending, so the group is a contiguous run.
                let iy = entries[i].0 as usize / w_in;
                let row_end = ((iy + 1) * w_in) as u32;
                let mut j = i;
                while j < entries.len() && entries[j].0 < row_end {
                    j += 1;
                }
                let ynum = iy + p;
                let ky_min = (ynum + 1).saturating_sub(out_h);
                let ky_max = ynum.min(k - 1);
                if ky_min <= ky_max {
                    for &(pos, v) in &entries[i..j] {
                        let xnum = pos as usize - iy * w_in + p;
                        let kx_min = (xnum + 1).saturating_sub(out_w);
                        let kx_max = xnum.min(k - 1);
                        if kx_min > kx_max {
                            continue;
                        }
                        let width = (kx_max - kx_min + 1) * noc;
                        // Mirrored column of the first (kx_min) segment;
                        // `kx_min ≥ xnum + 1 − out_w` keeps this in range.
                        let mcol = (out_w - 1 + kx_min) - xnum;
                        for ky in ky_min..=ky_max {
                            let oy = ynum - ky;
                            let w0 = ((ic * k + ky) * k + kx_min) * noc;
                            let a0 = (oy * out_w + mcol) * noc;
                            let wrun = &self.weights_t[w0..w0 + width];
                            let arun = &mut acc[a0..a0 + width];
                            for (av, wv) in arun.iter_mut().zip(wrun) {
                                *av += v * wv;
                            }
                        }
                    }
                }
                i = j;
            }
        }
    }

    /// General strided gather (stride > 1): same accumulation, with the
    /// per-kernel-position divisibility checks the stride demands.
    fn gather_strided(&self, input: &SparseActivation, out_shape: Shape3, acc: &mut [f32]) {
        let k = self.geom.kernel;
        let s = self.geom.stride;
        let p = self.geom.padding;
        let noc = self.out_channels;
        for (ic, iy, ix, v) in input.iter_coords() {
            for ky in 0..k {
                // iy = oy*s - p + ky  ⇒  oy = (iy + p - ky) / s.
                let oy_num = iy + p;
                if oy_num < ky {
                    break; // ky increases: later kernel rows can't match either
                }
                let oy_off = oy_num - ky;
                if !oy_off.is_multiple_of(s) {
                    continue;
                }
                let oy = oy_off / s;
                if oy >= out_shape.height {
                    continue;
                }
                for kx in 0..k {
                    let ox_num = ix + p;
                    if ox_num < kx {
                        break;
                    }
                    let ox_off = ox_num - kx;
                    if !ox_off.is_multiple_of(s) {
                        continue;
                    }
                    let ox = ox_off / s;
                    if ox >= out_shape.width {
                        continue;
                    }
                    let w0 = ((ic * k) + ky) * k + kx;
                    let o0 = oy * out_shape.width + ox;
                    gemm::axpy(
                        v,
                        &self.weights_t[w0 * noc..(w0 + 1) * noc],
                        &mut acc[o0 * noc..(o0 + 1) * noc],
                    );
                }
            }
        }
    }

    /// The pre-gather scalar scatter implementation, kept as an independent
    /// oracle for the sparse-path equivalence tests and the bench that
    /// tracks the gather restructure's win.
    pub fn forward_sparse_scatter(&self, input: &SparseActivation) -> Tensor3 {
        self.check_input(input.shape());
        let out_shape = self.output_shape(input.shape());
        let k = self.geom.kernel;
        let s = self.geom.stride;
        let p = self.geom.padding;
        let mut out = Tensor3::zeros(out_shape);
        for oc in 0..self.out_channels {
            out.channel_mut(oc).fill(self.bias[oc]);
        }
        if out_shape.is_empty() {
            return out;
        }
        let w_stride = self.in_channels * k * k; // between consecutive oc
        let plane = out_shape.plane_len();
        for (ic, iy, ix, v) in input.iter_coords() {
            for ky in 0..k {
                let oy_num = iy + p;
                if oy_num < ky {
                    break;
                }
                let oy_off = oy_num - ky;
                if !oy_off.is_multiple_of(s) {
                    continue;
                }
                let oy = oy_off / s;
                if oy >= out_shape.height {
                    continue;
                }
                for kx in 0..k {
                    let ox_num = ix + p;
                    if ox_num < kx {
                        break;
                    }
                    let ox_off = ox_num - kx;
                    if !ox_off.is_multiple_of(s) {
                        continue;
                    }
                    let ox = ox_off / s;
                    if ox >= out_shape.width {
                        continue;
                    }
                    let w0 = ((ic * k) + ky) * k + kx;
                    let o0 = oy * out_shape.width + ox;
                    let out_buf = out.as_mut_slice();
                    for oc in 0..self.out_channels {
                        out_buf[oc * plane + o0] += self.weights[oc * w_stride + w0] * v;
                    }
                }
            }
        }
        out
    }
}

impl fmt::Debug for Conv2d {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Conv2d({}: {}→{}, k={}, s={}, p={})",
            self.name,
            self.in_channels,
            self.out_channels,
            self.geom.kernel,
            self.geom.stride,
            self.geom.padding
        )
    }
}

impl Layer for Conv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, input: Shape3) -> Shape3 {
        Shape3::new(
            self.out_channels,
            self.geom.output_len(input.height),
            self.geom.output_len(input.width),
        )
    }

    fn forward(&self, input: &Tensor3) -> Tensor3 {
        gemm::with_thread_scratch(|scratch| self.forward_scratch(input, scratch))
    }

    fn forward_scratch(&self, input: &Tensor3, scratch: &mut GemmScratch) -> Tensor3 {
        self.check_input(input.shape());
        gemm::conv2d_forward(
            input,
            &self.weights,
            &self.bias,
            self.out_channels,
            self.geom.kernel,
            self.geom.stride,
            self.geom.padding,
            scratch,
        )
    }

    fn forward_batch(&self, batch: Vec<Tensor3>, scratch: &mut GemmScratch) -> Vec<Tensor3> {
        if let Some(first) = batch.first() {
            self.check_input(first.shape());
        }
        gemm::conv2d_forward_batch(
            &batch,
            &self.weights,
            &self.bias,
            self.out_channels,
            self.geom.kernel,
            self.geom.stride,
            self.geom.padding,
            scratch,
        )
    }

    fn forward_sparse(
        &self,
        input: &SparseActivation,
        scratch: &mut GemmScratch,
    ) -> Option<Tensor3> {
        Some(self.forward_sparse_impl(input, scratch))
    }

    fn backward(&mut self, input: &Tensor3, grad_out: &Tensor3) -> Tensor3 {
        let out_shape = self.output_shape(input.shape());
        assert_eq!(grad_out.shape(), out_shape, "{}: grad shape", self.name);
        let weights = &self.weights;
        let grad_w = &mut self.grad_w;
        let grad_b = &mut self.grad_b;
        gemm::with_thread_scratch(|scratch| {
            gemm::conv2d_backward(
                input,
                weights,
                grad_out,
                self.out_channels,
                self.geom.kernel,
                self.geom.stride,
                self.geom.padding,
                scratch,
                grad_w,
                grad_b,
            )
        })
    }

    fn apply_grads(&mut self, lr: f32, batch: usize) {
        let scale = lr / batch.max(1) as f32;
        const MOMENTUM: f32 = 0.9;
        // Per-element gradient clipping guards against the dying-ReLU
        // collapse that unlucky shuffle orders can otherwise trigger with
        // per-sample momentum SGD.
        const CLIP: f32 = 4.0;
        for i in 0..self.weights.len() {
            let g = self.grad_w[i].clamp(-CLIP, CLIP);
            self.momentum_w[i] = MOMENTUM * self.momentum_w[i] + g;
            self.weights[i] -= scale * self.momentum_w[i];
            self.grad_w[i] = 0.0;
        }
        for i in 0..self.bias.len() {
            let g = self.grad_b[i].clamp(-CLIP, CLIP);
            self.momentum_b[i] = MOMENTUM * self.momentum_b[i] + g;
            self.bias[i] -= scale * self.momentum_b[i];
            self.grad_b[i] = 0.0;
        }
        self.sync_transpose();
    }

    fn geometry(&self) -> Option<LayerGeometry> {
        Some(self.geom)
    }

    fn macs(&self, input: Shape3) -> u64 {
        // outputs × MACs-per-output, exactly the paper's §IV-A formula:
        //   outputs = layer_width × layer_height × out_channels
        //   MACs/output = in_channels × filter_height × filter_width
        let out = self.output_shape(input);
        (out.len() as u64) * (self.in_channels * self.geom.kernel * self.geom.kernel) as u64
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn params(&self) -> Vec<f32> {
        let mut v = self.weights.clone();
        v.extend_from_slice(&self.bias);
        v
    }

    fn load_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.param_count(),
            "{}: param count",
            self.name
        );
        let (w, b) = params.split_at(self.weights.len());
        self.weights.copy_from_slice(w);
        self.bias.copy_from_slice(b);
        self.sync_transpose();
    }

    fn describe(&self) -> LayerInfo {
        let per_oc = self.in_channels * self.geom.kernel * self.geom.kernel;
        LayerInfo {
            name: self.name.clone(),
            kind: LayerKind::Conv {
                in_channels: self.in_channels,
                out_channels: self.out_channels,
            },
            geometry: Some(self.geom),
            channels: (0..self.out_channels)
                .map(|oc| {
                    ChannelStats::of(&self.weights[oc * per_oc..(oc + 1) * per_oc], self.bias[oc])
                })
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Max pooling
// ---------------------------------------------------------------------------

/// A 2-D max-pooling layer.
///
/// Max-pooling is the paper's canonical "condition 3" violator: it commutes
/// with stride-aligned translations but not with arbitrary ones (Fig 4e).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    name: String,
    geom: LayerGeometry,
}

impl MaxPool2d {
    /// Creates a pooling layer with square window `kernel` and `stride`.
    pub fn new(name: impl Into<String>, kernel: usize, stride: usize) -> Self {
        Self {
            name: name.into(),
            geom: LayerGeometry {
                kernel,
                stride,
                padding: 0,
            },
        }
    }
}

impl Layer for MaxPool2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, input: Shape3) -> Shape3 {
        Shape3::new(
            input.channels,
            self.geom.output_len(input.height),
            self.geom.output_len(input.width),
        )
    }

    fn forward(&self, input: &Tensor3) -> Tensor3 {
        let out_shape = self.output_shape(input.shape());
        let k = self.geom.kernel;
        let s = self.geom.stride;
        Tensor3::from_fn(out_shape, |c, oy, ox| {
            let mut m = f32::NEG_INFINITY;
            for ky in 0..k {
                for kx in 0..k {
                    m = m.max(input.get(c, oy * s + ky, ox * s + kx));
                }
            }
            m
        })
    }

    fn forward_batch(&self, batch: Vec<Tensor3>, _scratch: &mut GemmScratch) -> Vec<Tensor3> {
        // Row-slice pooling: same windows folded in the same (ky-outer,
        // kx-inner) order as `forward`, so every output bit matches — only
        // the per-element closure/indexing overhead of `from_fn` is gone.
        let k = self.geom.kernel;
        let s = self.geom.stride;
        batch
            .iter()
            .map(|input| {
                let in_shape = input.shape();
                let out_shape = self.output_shape(in_shape);
                let mut out = Vec::with_capacity(out_shape.len());
                for c in 0..out_shape.channels {
                    let plane = input.channel(c);
                    for oy in 0..out_shape.height {
                        for ox in 0..out_shape.width {
                            let mut m = f32::NEG_INFINITY;
                            for ky in 0..k {
                                let row = &plane[(oy * s + ky) * in_shape.width + ox * s..][..k];
                                for &v in row {
                                    m = m.max(v);
                                }
                            }
                            out.push(m);
                        }
                    }
                }
                Tensor3::from_vec(out_shape, out)
            })
            .collect()
    }

    fn backward(&mut self, input: &Tensor3, grad_out: &Tensor3) -> Tensor3 {
        let out_shape = self.output_shape(input.shape());
        assert_eq!(grad_out.shape(), out_shape, "{}: grad shape", self.name);
        let k = self.geom.kernel;
        let s = self.geom.stride;
        let mut grad_in = Tensor3::zeros(input.shape());
        for c in 0..out_shape.channels {
            for oy in 0..out_shape.height {
                for ox in 0..out_shape.width {
                    // Route the gradient to the argmax cell.
                    let mut best = (oy * s, ox * s);
                    let mut m = f32::NEG_INFINITY;
                    for ky in 0..k {
                        for kx in 0..k {
                            let v = input.get(c, oy * s + ky, ox * s + kx);
                            if v > m {
                                m = v;
                                best = (oy * s + ky, ox * s + kx);
                            }
                        }
                    }
                    grad_in.add_at(c, best.0, best.1, grad_out.get(c, oy, ox));
                }
            }
        }
        grad_in
    }

    fn apply_grads(&mut self, _lr: f32, _batch: usize) {}

    fn geometry(&self) -> Option<LayerGeometry> {
        Some(self.geom)
    }

    fn macs(&self, _input: Shape3) -> u64 {
        0
    }

    fn describe(&self) -> LayerInfo {
        LayerInfo {
            name: self.name.clone(),
            kind: LayerKind::Pool,
            geometry: Some(self.geom),
            channels: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Element-wise rectified linear unit.
///
/// ReLU also produces the activation sparsity ("most values in CNN weights
/// and activations are close to zero", §II-C2) that the EVA² run-length
/// activation store exploits.
#[derive(Debug, Clone)]
pub struct Relu {
    name: String,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl Layer for Relu {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, input: Shape3) -> Shape3 {
        input
    }

    fn forward(&self, input: &Tensor3) -> Tensor3 {
        input.map(|v| v.max(0.0))
    }

    fn forward_owned(&self, mut input: Tensor3, _scratch: &mut GemmScratch) -> Tensor3 {
        // The caller hands over the tensor, so rectify in place: no
        // allocation + copy, identical bits.
        for v in input.as_mut_slice() {
            *v = v.max(0.0);
        }
        input
    }

    fn forward_batch(&self, mut batch: Vec<Tensor3>, _scratch: &mut GemmScratch) -> Vec<Tensor3> {
        // The batch owns its tensors, so rectify in place: no per-frame
        // allocation + copy, identical bits.
        for t in &mut batch {
            for v in t.as_mut_slice() {
                *v = v.max(0.0);
            }
        }
        batch
    }

    fn backward(&mut self, input: &Tensor3, grad_out: &Tensor3) -> Tensor3 {
        input.zip_with(grad_out, |x, g| if x > 0.0 { g } else { 0.0 })
    }

    fn apply_grads(&mut self, _lr: f32, _batch: usize) {}

    fn geometry(&self) -> Option<LayerGeometry> {
        Some(LayerGeometry::IDENTITY)
    }

    fn macs(&self, _input: Shape3) -> u64 {
        0
    }

    fn describe(&self) -> LayerInfo {
        LayerInfo {
            name: self.name.clone(),
            kind: LayerKind::Relu,
            geometry: Some(LayerGeometry::IDENTITY),
            channels: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Fully connected
// ---------------------------------------------------------------------------

/// A fully-connected layer over the flattened input tensor.
///
/// Output shape is `out × 1 × 1`. Fully-connected layers have "no 2D spatial
/// structure and no meaningful relationship with motion in the input"
/// (§II-C5), so [`Layer::geometry`] returns `None` and AMC keeps them in the
/// suffix.
#[derive(Clone)]
pub struct FullyConnected {
    name: String,
    in_features: usize,
    out_features: usize,
    /// Row-major `[out][in]`.
    weights: Vec<f32>,
    /// Transposed copy `[in][out]`, kept in sync by [`FullyConnected::sync_transpose`].
    ///
    /// The sparse suffix path turns every non-zero input into one
    /// unit-stride AXPY over a row of this matrix, so skip-zero execution
    /// vectorizes as well as the dense path it replaces.
    weights_t: Vec<f32>,
    bias: Vec<f32>,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    momentum_w: Vec<f32>,
    momentum_b: Vec<f32>,
}

impl FullyConnected {
    /// Creates a fully-connected layer with He-initialised weights.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        rng: &mut ChaCha8Rng,
    ) -> Self {
        let n = in_features * out_features;
        let scale = (2.0 / in_features as f32).sqrt();
        let mut fc = Self {
            name: name.into(),
            in_features,
            out_features,
            weights: (0..n)
                .map(|_| rng.gen_range(-1.0f32..1.0) * scale)
                .collect(),
            weights_t: vec![0.0; n],
            bias: vec![0.0; out_features],
            grad_w: vec![0.0; n],
            grad_b: vec![0.0; out_features],
            momentum_w: vec![0.0; n],
            momentum_b: vec![0.0; out_features],
        };
        fc.sync_transpose();
        fc
    }

    /// Number of input features (flattened input length).
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Rebuilds the transposed weight copy after a weight mutation.
    ///
    /// Called automatically by [`Layer::apply_grads`] and
    /// [`Layer::load_params`]; tests poking `weights` directly must call it
    /// before exercising the sparse path.
    pub fn sync_transpose(&mut self) {
        for o in 0..self.out_features {
            for i in 0..self.in_features {
                self.weights_t[i * self.out_features + o] = self.weights[o * self.in_features + i];
            }
        }
    }
}

impl fmt::Debug for FullyConnected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FullyConnected({}: {}→{})",
            self.name, self.in_features, self.out_features
        )
    }
}

impl Layer for FullyConnected {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn output_shape(&self, input: Shape3) -> Shape3 {
        assert_eq!(
            input.len(),
            self.in_features,
            "{}: flattened input {} != in_features {}",
            self.name,
            input.len(),
            self.in_features
        );
        Shape3::new(self.out_features, 1, 1)
    }

    fn forward(&self, input: &Tensor3) -> Tensor3 {
        let out_shape = self.output_shape(input.shape());
        let x = input.as_slice();
        let mut out = Vec::with_capacity(self.out_features);
        for o in 0..self.out_features {
            let row = &self.weights[o * self.in_features..(o + 1) * self.in_features];
            let mut acc = self.bias[o];
            for (w, v) in row.iter().zip(x) {
                acc += w * v;
            }
            out.push(acc);
        }
        Tensor3::from_vec(out_shape, out)
    }

    fn forward_sparse(
        &self,
        input: &SparseActivation,
        _scratch: &mut GemmScratch,
    ) -> Option<Tensor3> {
        assert_eq!(
            input.shape().len(),
            self.in_features,
            "{}: flattened sparse input {} != in_features {}",
            self.name,
            input.shape().len(),
            self.in_features
        );
        // Each non-zero input contributes one vectorized AXPY over a row of
        // the transposed weights; zeros cost nothing (`O(nnz · out)` wide
        // ops vs the dense `O(in · out)`).
        let nout = self.out_features;
        let mut out = self.bias.clone();
        for (i, v) in input.iter_flat() {
            gemm::axpy(v, &self.weights_t[i * nout..(i + 1) * nout], &mut out);
        }
        Some(Tensor3::from_vec(Shape3::new(nout, 1, 1), out))
    }

    fn backward(&mut self, input: &Tensor3, grad_out: &Tensor3) -> Tensor3 {
        assert_eq!(grad_out.shape().len(), self.out_features);
        let x = input.as_slice();
        let g = grad_out.as_slice();
        let mut grad_in = vec![0.0f32; self.in_features];
        for (o, &go) in g.iter().enumerate().take(self.out_features) {
            if go == 0.0 {
                continue;
            }
            self.grad_b[o] += go;
            let row_base = o * self.in_features;
            for i in 0..self.in_features {
                self.grad_w[row_base + i] += go * x[i];
                grad_in[i] += go * self.weights[row_base + i];
            }
        }
        Tensor3::from_vec(input.shape(), grad_in)
    }

    fn apply_grads(&mut self, lr: f32, batch: usize) {
        let scale = lr / batch.max(1) as f32;
        const MOMENTUM: f32 = 0.9;
        // Per-element gradient clipping guards against the dying-ReLU
        // collapse that unlucky shuffle orders can otherwise trigger with
        // per-sample momentum SGD.
        const CLIP: f32 = 4.0;
        for i in 0..self.weights.len() {
            let g = self.grad_w[i].clamp(-CLIP, CLIP);
            self.momentum_w[i] = MOMENTUM * self.momentum_w[i] + g;
            self.weights[i] -= scale * self.momentum_w[i];
            self.grad_w[i] = 0.0;
        }
        for i in 0..self.bias.len() {
            let g = self.grad_b[i].clamp(-CLIP, CLIP);
            self.momentum_b[i] = MOMENTUM * self.momentum_b[i] + g;
            self.bias[i] -= scale * self.momentum_b[i];
            self.grad_b[i] = 0.0;
        }
        self.sync_transpose();
    }

    fn geometry(&self) -> Option<LayerGeometry> {
        None
    }

    fn macs(&self, _input: Shape3) -> u64 {
        (self.in_features * self.out_features) as u64
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn params(&self) -> Vec<f32> {
        let mut v = self.weights.clone();
        v.extend_from_slice(&self.bias);
        v
    }

    fn load_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.param_count(),
            "{}: param count",
            self.name
        );
        let (w, b) = params.split_at(self.weights.len());
        self.weights.copy_from_slice(w);
        self.bias.copy_from_slice(b);
        self.sync_transpose();
    }

    fn describe(&self) -> LayerInfo {
        LayerInfo {
            name: self.name.clone(),
            kind: LayerKind::FullyConnected {
                in_features: self.in_features,
                out_features: self.out_features,
            },
            geometry: None,
            channels: (0..self.out_features)
                .map(|o| {
                    ChannelStats::of(
                        &self.weights[o * self.in_features..(o + 1) * self.in_features],
                        self.bias[o],
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(1)
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        let mut conv = Conv2d::new("c", 1, 1, 3, 1, 1, &mut rng());
        for w in conv.weights_mut() {
            *w = 0.0;
        }
        conv.set_weight(0, 0, 1, 1, 1.0);
        let input = Tensor3::from_fn(Shape3::new(1, 4, 4), |_, y, x| (y * 4 + x) as f32);
        let out = conv.forward(&input);
        assert_eq!(out, input);
    }

    #[test]
    fn conv_paper_figure4_example() {
        // Fig 4a: 3x3 conv, stride 1, filter with a vertical bar of ones in
        // the middle column, applied to an image with ones in the left
        // column rows 0-1.
        let mut conv = Conv2d::new("c", 1, 1, 3, 1, 0, &mut rng());
        for w in conv.weights_mut() {
            *w = 0.0;
        }
        conv.set_weight(0, 0, 0, 1, 1.0);
        conv.set_weight(0, 0, 1, 1, 1.0);
        conv.set_weight(0, 0, 2, 1, 1.0);
        let mut img = Tensor3::zeros(Shape3::new(1, 5, 5));
        img.set(0, 0, 1, 1.0);
        img.set(0, 1, 1, 1.0);
        let out = conv.forward(&img);
        // Column of the bar aligns with input column 1 → output column 0.
        assert_eq!(out.get(0, 0, 0), 2.0);
        assert_eq!(out.get(0, 1, 0), 1.0); // windows rows 1..3 contain one 1
        assert_eq!(out.get(0, 0, 1), 0.0);
    }

    #[test]
    fn conv_output_shape_with_stride_and_padding() {
        let conv = Conv2d::new("c", 3, 8, 5, 2, 2, &mut rng());
        let s = conv.output_shape(Shape3::new(3, 32, 32));
        assert_eq!(s, Shape3::new(8, 16, 16));
    }

    #[test]
    fn conv_macs_match_formula() {
        let conv = Conv2d::new("c", 16, 32, 3, 1, 1, &mut rng());
        let input = Shape3::new(16, 8, 8);
        // outputs = 8*8*32, per-output = 16*3*3
        assert_eq!(conv.macs(input), 8 * 8 * 32 * 16 * 9);
    }

    #[test]
    fn conv_gradcheck() {
        // Numerical gradient check on a tiny conv.
        let mut conv = Conv2d::new("c", 1, 1, 3, 1, 1, &mut rng());
        let input = Tensor3::from_fn(Shape3::new(1, 4, 4), |_, y, x| ((y + x) as f32).sin());
        let out = conv.forward(&input);
        // Loss = sum of outputs; grad_out = ones.
        let grad_out = Tensor3::filled(out.shape(), 1.0);
        let grad_in = conv.backward(&input, &grad_out);
        let eps = 1e-3;
        for y in 0..4 {
            for x in 0..4 {
                let mut plus = input.clone();
                plus.set(0, y, x, input.get(0, y, x) + eps);
                let mut minus = input.clone();
                minus.set(0, y, x, input.get(0, y, x) - eps);
                let lp: f32 = conv.forward(&plus).iter().sum();
                let lm: f32 = conv.forward(&minus).iter().sum();
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grad_in.get(0, y, x);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "at ({y},{x}): numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn maxpool_forward_and_shape() {
        let pool = MaxPool2d::new("p", 2, 2);
        let input = Tensor3::from_fn(Shape3::new(1, 4, 4), |_, y, x| (y * 4 + x) as f32);
        let out = pool.forward(&input);
        assert_eq!(out.shape(), Shape3::new(1, 2, 2));
        assert_eq!(out.get(0, 0, 0), 5.0);
        assert_eq!(out.get(0, 1, 1), 15.0);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new("p", 2, 2);
        let input = Tensor3::from_fn(Shape3::new(1, 2, 2), |_, y, x| (y * 2 + x) as f32);
        let grad_out = Tensor3::filled(Shape3::new(1, 1, 1), 1.0);
        let grad_in = pool.backward(&input, &grad_out);
        assert_eq!(grad_in.get(0, 1, 1), 1.0);
        assert_eq!(grad_in.get(0, 0, 0), 0.0);
    }

    #[test]
    fn relu_clamps_and_masks() {
        let mut relu = Relu::new("r");
        let input = Tensor3::from_vec(Shape3::new(1, 1, 4), vec![-1.0, 0.0, 2.0, -3.0]);
        let out = relu.forward(&input);
        assert_eq!(out.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let g = Tensor3::filled(input.shape(), 1.0);
        let gi = relu.backward(&input, &g);
        assert_eq!(gi.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn fc_forward_matches_manual() {
        let mut fc = FullyConnected::new("f", 3, 2, &mut rng());
        fc.weights = vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5];
        fc.bias = vec![0.1, -0.1];
        let input = Tensor3::from_vec(Shape3::new(3, 1, 1), vec![2.0, 3.0, 4.0]);
        let out = fc.forward(&input);
        assert!((out.get(0, 0, 0) - (2.0 - 4.0 + 0.1)).abs() < 1e-6);
        assert!((out.get(1, 0, 0) - (4.5 - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn fc_gradcheck() {
        let mut fc = FullyConnected::new("f", 4, 3, &mut rng());
        let input = Tensor3::from_vec(Shape3::new(4, 1, 1), vec![0.5, -1.0, 2.0, 0.0]);
        let out = fc.forward(&input);
        let grad_out = Tensor3::filled(out.shape(), 1.0);
        let grad_in = fc.backward(&input, &grad_out);
        let eps = 1e-3;
        for i in 0..4 {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= eps;
            let lp: f32 = fc.forward(&plus).iter().sum();
            let lm: f32 = fc.forward(&minus).iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad_in.as_slice()[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn fc_is_not_spatial() {
        let fc = FullyConnected::new("f", 4, 2, &mut rng());
        assert!(!fc.is_spatial());
        assert!(Relu::new("r").is_spatial());
        assert!(MaxPool2d::new("p", 2, 2).is_spatial());
    }

    #[test]
    fn apply_grads_moves_weights_downhill() {
        let mut fc = FullyConnected::new("f", 2, 1, &mut rng());
        fc.weights = vec![1.0, 1.0];
        fc.bias = vec![0.0];
        let input = Tensor3::from_vec(Shape3::new(2, 1, 1), vec![1.0, 1.0]);
        // Loss = output; d(loss)/dw = input = 1, so weights must decrease.
        let grad_out = Tensor3::filled(Shape3::new(1, 1, 1), 1.0);
        fc.backward(&input, &grad_out);
        fc.apply_grads(0.1, 1);
        assert!(fc.weights[0] < 1.0);
        let out1 = fc.forward(&input).get(0, 0, 0);
        assert!(out1 < 2.0);
    }

    #[test]
    fn geometry_output_len() {
        let g = LayerGeometry {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        assert_eq!(g.output_len(32), 16);
        assert_eq!(g.output_len(2), 1);
        let small = LayerGeometry {
            kernel: 5,
            stride: 1,
            padding: 0,
        };
        assert_eq!(small.output_len(3), 0);
    }

    #[test]
    fn param_counts() {
        let conv = Conv2d::new("c", 2, 4, 3, 1, 1, &mut rng());
        assert_eq!(conv.param_count(), 2 * 4 * 9 + 4);
        let fc = FullyConnected::new("f", 10, 5, &mut rng());
        assert_eq!(fc.param_count(), 55);
        assert_eq!(Relu::new("r").param_count(), 0);
    }
}
