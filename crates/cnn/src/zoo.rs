//! The network zoo: scaled-down analogues of the paper's three workloads.
//!
//! | Paper network | Task | Analogue | Structure preserved |
//! |---|---|---|---|
//! | AlexNet (5 conv + 3 FC) | classification | [`tiny_alexnet`] | conv/pool prefix, FC suffix, moderate depth |
//! | Faster16 (VGG-16 based Faster R-CNN) | detection | [`tiny_faster16`] | *deep* prefix of stacked 3×3 convs in 3 pooling stages |
//! | FasterM (CNN-M based Faster R-CNN) | detection | [`tiny_fasterm`] | *shallow* prefix with a stride-2 first conv (CNN-M style) |
//!
//! The analogues keep everything AMC interacts with — receptive-field
//! geometry, spatial-vs-FC layer split, early/late target layers, relative
//! depth ordering (Faster16 ≫ FasterM > AlexNet prefix cost) — while being
//! small enough to train from scratch on the synthetic dataset in seconds.
//! Full-scale layer shapes (for the hardware cost model) live in `eva2-hw`.

use crate::layer::{Conv2d, FullyConnected, MaxPool2d, Relu};
use crate::network::Network;
use eva2_tensor::Shape3;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Number of object classes (matches `eva2_video::SpriteKind::COUNT`).
pub const NUM_CLASSES: usize = 8;

/// Channels in a detection head output: 4 bounding-box coordinates
/// (normalized cy, cx, h, w) followed by [`NUM_CLASSES`] class logits.
pub const DETECTION_OUTPUTS: usize = 4 + NUM_CLASSES;

/// The vision task a zoo network solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Frame classification (AlexNet's task; scored by top-1 accuracy).
    Classification,
    /// Single-object detection (Faster R-CNN's task; scored by mAP).
    Detection,
}

/// A zoo network plus the metadata AMC experiments need.
#[derive(Debug)]
pub struct ZooNet {
    /// The network itself.
    pub network: Network,
    /// The paper's "early" target layer: after the first pooling layer.
    pub early_target: usize,
    /// The paper's "late" (default) target layer: the last spatial layer.
    pub late_target: usize,
    /// The task this network solves.
    pub task: Task,
}

impl ZooNet {
    /// Frame size expected by the network.
    pub fn input_shape(&self) -> Shape3 {
        self.network.input_shape()
    }
}

/// Builds the AlexNet analogue: 3 conv stages, 32×32 input, classification.
pub fn tiny_alexnet(seed: u64) -> ZooNet {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net = Network::new("tiny-alexnet", Shape3::new(1, 32, 32));
    net.push(Box::new(Conv2d::new("conv1", 1, 8, 3, 1, 1, &mut rng))); // 0
    net.push(Box::new(Relu::new("relu1"))); // 1
    net.push(Box::new(MaxPool2d::new("pool1", 2, 2))); // 2 -> 8x16x16
    net.push(Box::new(Conv2d::new("conv2", 8, 16, 3, 1, 1, &mut rng))); // 3
    net.push(Box::new(Relu::new("relu2"))); // 4
    net.push(Box::new(MaxPool2d::new("pool2", 2, 2))); // 5 -> 16x8x8
    net.push(Box::new(Conv2d::new("conv3", 16, 32, 3, 1, 1, &mut rng))); // 6
    net.push(Box::new(Relu::new("relu3"))); // 7
    net.push(Box::new(MaxPool2d::new("pool3", 2, 2))); // 8 -> 32x4x4
    net.push(Box::new(FullyConnected::new(
        "fc1",
        32 * 4 * 4,
        48,
        &mut rng,
    ))); // 9
    net.push(Box::new(Relu::new("relu4"))); // 10
    net.push(Box::new(FullyConnected::new(
        "fc2",
        48,
        NUM_CLASSES,
        &mut rng,
    ))); // 11
    ZooNet {
        early_target: 2,
        late_target: 8,
        task: Task::Classification,
        network: net,
    }
}

/// Builds the Faster16 analogue: VGG-style stacked 3×3 convolutions in three
/// pooling stages, 48×48 input, detection head.
pub fn tiny_faster16(seed: u64) -> ZooNet {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net = Network::new("tiny-faster16", Shape3::new(1, 48, 48));
    net.push(Box::new(Conv2d::new("conv1_1", 1, 8, 3, 1, 1, &mut rng))); // 0
    net.push(Box::new(Relu::new("relu1_1"))); // 1
    net.push(Box::new(Conv2d::new("conv1_2", 8, 8, 3, 1, 1, &mut rng))); // 2
    net.push(Box::new(Relu::new("relu1_2"))); // 3
    net.push(Box::new(MaxPool2d::new("pool1", 2, 2))); // 4 -> 8x24x24
    net.push(Box::new(Conv2d::new("conv2_1", 8, 16, 3, 1, 1, &mut rng))); // 5
    net.push(Box::new(Relu::new("relu2_1"))); // 6
    net.push(Box::new(Conv2d::new("conv2_2", 16, 16, 3, 1, 1, &mut rng))); // 7
    net.push(Box::new(Relu::new("relu2_2"))); // 8
    net.push(Box::new(MaxPool2d::new("pool2", 2, 2))); // 9 -> 16x12x12
    net.push(Box::new(Conv2d::new("conv3_1", 16, 24, 3, 1, 1, &mut rng))); // 10
    net.push(Box::new(Relu::new("relu3_1"))); // 11
    net.push(Box::new(Conv2d::new("conv3_2", 24, 24, 3, 1, 1, &mut rng))); // 12
    net.push(Box::new(Relu::new("relu3_2"))); // 13
    net.push(Box::new(MaxPool2d::new("pool3", 2, 2))); // 14 -> 24x6x6
    net.push(Box::new(FullyConnected::new(
        "fc1",
        24 * 6 * 6,
        64,
        &mut rng,
    ))); // 15
    net.push(Box::new(Relu::new("relu_fc1"))); // 16
    net.push(Box::new(FullyConnected::new(
        "fc2",
        64,
        DETECTION_OUTPUTS,
        &mut rng,
    ))); // 17
    ZooNet {
        early_target: 4,
        late_target: 14,
        task: Task::Detection,
        network: net,
    }
}

/// Builds the FasterM analogue: CNN-M-style shallow prefix whose first
/// convolution has stride 2, 48×48 input, detection head.
pub fn tiny_fasterm(seed: u64) -> ZooNet {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net = Network::new("tiny-fasterm", Shape3::new(1, 48, 48));
    net.push(Box::new(Conv2d::new("conv1", 1, 8, 5, 2, 2, &mut rng))); // 0 -> 8x24x24
    net.push(Box::new(Relu::new("relu1"))); // 1
    net.push(Box::new(MaxPool2d::new("pool1", 2, 2))); // 2 -> 8x12x12
    net.push(Box::new(Conv2d::new("conv2", 8, 16, 3, 1, 1, &mut rng))); // 3
    net.push(Box::new(Relu::new("relu2"))); // 4
    net.push(Box::new(Conv2d::new("conv3", 16, 24, 3, 1, 1, &mut rng))); // 5
    net.push(Box::new(Relu::new("relu3"))); // 6
    net.push(Box::new(MaxPool2d::new("pool2", 2, 2))); // 7 -> 24x6x6
    net.push(Box::new(FullyConnected::new(
        "fc1",
        24 * 6 * 6,
        48,
        &mut rng,
    ))); // 8
    net.push(Box::new(Relu::new("relu_fc1"))); // 9
    net.push(Box::new(FullyConnected::new(
        "fc2",
        48,
        DETECTION_OUTPUTS,
        &mut rng,
    ))); // 10
    ZooNet {
        early_target: 2,
        late_target: 7,
        task: Task::Detection,
        network: net,
    }
}

/// Identifiers for the three workloads, used by experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// AlexNet analogue (classification).
    AlexNet,
    /// Faster16 analogue (deep detection).
    Faster16,
    /// FasterM analogue (shallow detection).
    FasterM,
}

impl Workload {
    /// All three paper workloads.
    pub const ALL: [Workload; 3] = [Workload::AlexNet, Workload::Faster16, Workload::FasterM];

    /// Builds the analogue network for this workload.
    pub fn build(self, seed: u64) -> ZooNet {
        match self {
            Workload::AlexNet => tiny_alexnet(seed),
            Workload::Faster16 => tiny_faster16(seed),
            Workload::FasterM => tiny_fasterm(seed),
        }
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Workload::AlexNet => "AlexNet",
            Workload::Faster16 => "Faster16",
            Workload::FasterM => "FasterM",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva2_tensor::Tensor3;

    #[test]
    fn alexnet_shapes() {
        let z = tiny_alexnet(0);
        assert_eq!(
            z.network.shape_after(z.early_target),
            Shape3::new(8, 16, 16)
        );
        assert_eq!(z.network.shape_after(z.late_target), Shape3::new(32, 4, 4));
        let out = z.network.forward(&Tensor3::zeros(z.input_shape()));
        assert_eq!(out.shape(), Shape3::new(NUM_CLASSES, 1, 1));
    }

    #[test]
    fn faster16_shapes() {
        let z = tiny_faster16(0);
        assert_eq!(z.network.shape_after(z.late_target), Shape3::new(24, 6, 6));
        let out = z.network.forward(&Tensor3::zeros(z.input_shape()));
        assert_eq!(out.shape(), Shape3::new(DETECTION_OUTPUTS, 1, 1));
    }

    #[test]
    fn fasterm_shapes() {
        let z = tiny_fasterm(0);
        assert_eq!(z.network.shape_after(0), Shape3::new(8, 24, 24));
        assert_eq!(z.network.shape_after(z.late_target), Shape3::new(24, 6, 6));
    }

    #[test]
    fn targets_match_network_introspection() {
        for w in Workload::ALL {
            let z = w.build(1);
            assert_eq!(
                z.network.first_pool_layer(),
                Some(z.early_target),
                "{}: early",
                w.name()
            );
            assert_eq!(
                z.network.last_spatial_layer(),
                Some(z.late_target),
                "{}: late",
                w.name()
            );
        }
    }

    #[test]
    fn prefix_cost_ordering_matches_paper() {
        // Faster16's prefix dominates FasterM's, which dominates AlexNet's —
        // the ordering behind the paper's energy ranking.
        let a = tiny_alexnet(0);
        let m = tiny_fasterm(0);
        let v = tiny_faster16(0);
        let am = a.network.prefix_macs(a.late_target);
        let mm = m.network.prefix_macs(m.late_target);
        let vm = v.network.prefix_macs(v.late_target);
        assert!(vm > mm, "faster16 {vm} <= fasterm {mm}");
        assert!(mm > am, "fasterm {mm} <= alexnet {am}");
    }

    #[test]
    fn receptive_fields_are_sane() {
        let z = tiny_faster16(0);
        let rf = z.network.receptive_field(z.late_target);
        assert_eq!(rf.stride, 8);
        assert!(rf.size > rf.stride, "RFBME needs overlapping fields");
        let z = tiny_fasterm(0);
        let rf = z.network.receptive_field(z.late_target);
        assert_eq!(rf.stride, 8);
    }

    #[test]
    fn networks_are_seed_deterministic() {
        let a = tiny_alexnet(7);
        let b = tiny_alexnet(7);
        let x = Tensor3::from_fn(a.input_shape(), |_, y, x| ((y ^ x) as f32) / 31.0);
        assert_eq!(a.network.forward(&x), b.network.forward(&x));
    }

    #[test]
    fn workload_names() {
        assert_eq!(Workload::AlexNet.name(), "AlexNet");
        assert_eq!(Workload::ALL.len(), 3);
    }
}
