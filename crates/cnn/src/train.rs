//! Training: SGD with momentum, softmax cross-entropy, detection loss.
//!
//! The paper trains its networks in Caffe with standard hyperparameters
//! (§IV-B); here the equivalent loop is implemented directly. Training also
//! backs the Table III experiment, which fine-tunes only the CNN *suffix* on
//! warped activation data (see [`crate::network::Network::backward_suffix`]).

use crate::network::Network;
use crate::zoo::{DETECTION_OUTPUTS, NUM_CLASSES};
use eva2_tensor::{Shape3, Tensor3};
use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;

/// Numerically stable softmax over a logit slice.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&v| (v - m).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter()
        .map(|&e| e / sum.max(f32::MIN_POSITIVE))
        .collect()
}

/// Cross-entropy loss and its gradient w.r.t. the logits.
///
/// Returns `(loss, grad)` where `grad[i] = softmax(logits)[i] - 1[i==label]`.
pub fn cross_entropy(logits: &[f32], label: usize) -> (f32, Vec<f32>) {
    let p = softmax(logits);
    let loss = -p[label].max(1e-12).ln();
    let grad = p
        .iter()
        .enumerate()
        .map(|(i, &pi)| if i == label { pi - 1.0 } else { pi })
        .collect();
    (loss, grad)
}

/// Smooth-L1 (Huber) loss and gradient for one scalar residual, the standard
/// bounding-box regression loss of Faster R-CNN.
pub fn smooth_l1(residual: f32) -> (f32, f32) {
    if residual.abs() < 1.0 {
        (0.5 * residual * residual, residual)
    } else {
        (residual.abs() - 0.5, residual.signum())
    }
}

/// A labelled classification sample.
#[derive(Debug, Clone)]
pub struct ClsSample {
    /// Input tensor (1 × H × W, pixel values in `[0, 1]`).
    pub input: Tensor3,
    /// Ground-truth class id.
    pub label: usize,
}

/// A labelled detection sample.
#[derive(Debug, Clone)]
pub struct DetSample {
    /// Input tensor (1 × H × W).
    pub input: Tensor3,
    /// Ground-truth class id.
    pub label: usize,
    /// Normalized bounding box `[cy/H, cx/W, h/H, w/W]`.
    pub bbox: [f32; 4],
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Multiplicative learning-rate decay per epoch.
    pub lr_decay: f32,
    /// Weight on the bounding-box regression term of the detection loss.
    pub bbox_weight: f32,
    /// Shuffling / ordering seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            lr: 0.01,
            lr_decay: 0.85,
            bbox_weight: 2.0,
            seed: 0,
        }
    }
}

/// Trains a classifier in place; returns the mean loss of the final epoch.
pub fn train_classifier(net: &mut Network, samples: &[ClsSample], cfg: &TrainConfig) -> f32 {
    use rand::SeedableRng;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut lr = cfg.lr;
    let mut last_epoch_loss = 0.0;
    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0;
        for &i in &order {
            let s = &samples[i];
            let acts = net.forward_collect(&s.input);
            let logits = acts.last().expect("output");
            let (loss, grad) = cross_entropy(logits.as_slice(), s.label);
            loss_sum += loss;
            let grad_t = Tensor3::from_vec(logits.shape(), grad);
            net.backward(&acts, grad_t);
            net.apply_grads(lr, 1);
        }
        last_epoch_loss = loss_sum / samples.len().max(1) as f32;
        lr *= cfg.lr_decay;
    }
    last_epoch_loss
}

/// Detection loss on a raw network output: cross-entropy on the class logits
/// plus weighted smooth-L1 on the box coordinates.
///
/// Returns `(loss, grad)` with `grad` shaped like the network output.
pub fn detection_loss(
    output: &Tensor3,
    label: usize,
    bbox: &[f32; 4],
    bbox_weight: f32,
) -> (f32, Tensor3) {
    let o = output.as_slice();
    assert_eq!(o.len(), DETECTION_OUTPUTS, "detection head size");
    let mut grad = vec![0.0f32; DETECTION_OUTPUTS];
    let mut loss = 0.0;
    for k in 0..4 {
        let (l, g) = smooth_l1(o[k] - bbox[k]);
        loss += bbox_weight * l;
        grad[k] = bbox_weight * g;
    }
    let (ce, ce_grad) = cross_entropy(&o[4..], label);
    loss += ce;
    grad[4..].copy_from_slice(&ce_grad);
    (loss, Tensor3::from_vec(output.shape(), grad))
}

/// Trains a detector in place; returns the mean loss of the final epoch.
pub fn train_detector(net: &mut Network, samples: &[DetSample], cfg: &TrainConfig) -> f32 {
    use rand::SeedableRng;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut lr = cfg.lr;
    let mut last_epoch_loss = 0.0;
    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0;
        for &i in &order {
            let s = &samples[i];
            let acts = net.forward_collect(&s.input);
            let output = acts.last().expect("output");
            let (loss, grad) = detection_loss(output, s.label, &s.bbox, cfg.bbox_weight);
            loss_sum += loss;
            net.backward(&acts, grad);
            net.apply_grads(lr, 1);
        }
        last_epoch_loss = loss_sum / samples.len().max(1) as f32;
        lr *= cfg.lr_decay;
    }
    last_epoch_loss
}

/// Fine-tunes only the suffix (layers after `target`) on pre-computed target
/// activations — the Table III "training on warped activation data"
/// experiment. Classification variant.
pub fn finetune_suffix_classifier(
    net: &mut Network,
    target: usize,
    samples: &[(Tensor3, usize)],
    cfg: &TrainConfig,
) -> f32 {
    use rand::SeedableRng;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut lr = cfg.lr;
    let mut last = 0.0;
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0;
        for &i in &order {
            let (act, label) = &samples[i];
            let acts = net.forward_suffix_collect(act, target);
            let logits = acts.last().expect("output");
            let (loss, grad) = cross_entropy(logits.as_slice(), *label);
            loss_sum += loss;
            net.backward_suffix(target, &acts, Tensor3::from_vec(logits.shape(), grad));
            net.apply_grads(lr, 1);
        }
        last = loss_sum / samples.len().max(1) as f32;
        lr *= cfg.lr_decay;
    }
    last
}

/// Fine-tunes only the suffix on (activation, label, bbox) detection samples.
pub fn finetune_suffix_detector(
    net: &mut Network,
    target: usize,
    samples: &[(Tensor3, usize, [f32; 4])],
    cfg: &TrainConfig,
) -> f32 {
    use rand::SeedableRng;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut lr = cfg.lr;
    let mut last = 0.0;
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0;
        for &i in &order {
            let (act, label, bbox) = &samples[i];
            let acts = net.forward_suffix_collect(act, target);
            let output = acts.last().expect("output");
            let (loss, grad) = detection_loss(output, *label, bbox, cfg.bbox_weight);
            loss_sum += loss;
            net.backward_suffix(target, &acts, grad);
            net.apply_grads(lr, 1);
        }
        last = loss_sum / samples.len().max(1) as f32;
        lr *= cfg.lr_decay;
    }
    last
}

/// Builds a one-hot logit check helper used in tests: returns the predicted
/// class of a classification output tensor.
pub fn predicted_class(logits: &Tensor3) -> usize {
    logits.argmax()
}

/// Extracts the class prediction from a detection output (argmax over the
/// class logits, skipping the 4 box channels).
pub fn predicted_detection_class(output: &Tensor3) -> usize {
    let o = output.as_slice();
    o[4..]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Dummy shape helper for tests: a `NUM_CLASSES × 1 × 1` logits shape.
pub fn logits_shape() -> Shape3 {
    Shape3::new(NUM_CLASSES, 1, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{tiny_alexnet, tiny_fasterm};
    use rand::{Rng, SeedableRng};

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_direction() {
        let (loss, grad) = cross_entropy(&[0.0, 0.0, 0.0], 1);
        assert!(loss > 0.0);
        assert!(grad[1] < 0.0, "true-class gradient must be negative");
        assert!(grad[0] > 0.0 && grad[2] > 0.0);
        let total: f32 = grad.iter().sum();
        assert!(total.abs() < 1e-6, "CE grad sums to zero");
    }

    #[test]
    fn smooth_l1_branches() {
        let (l, g) = smooth_l1(0.5);
        assert!((l - 0.125).abs() < 1e-6);
        assert!((g - 0.5).abs() < 1e-6);
        let (l, g) = smooth_l1(-3.0);
        assert!((l - 2.5).abs() < 1e-6);
        assert_eq!(g, -1.0);
    }

    /// The central training sanity check: a classifier must fit a small
    /// synthetic set far above chance.
    #[test]
    fn classifier_learns_separable_patterns() {
        let mut zoo = tiny_alexnet(1);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        // Synthetic "class = bright quadrant" task on 32x32 inputs.
        let make = |label: usize, rng: &mut ChaCha8Rng| {
            let (qy, qx) = ((label / 2) % 2, label % 2);
            let input = Tensor3::from_fn(Shape3::new(1, 32, 32), |_, y, x| {
                let inside = (y / 16 == qy) && (x / 16 == qx);
                let base = if inside { 0.8 } else { 0.1 };
                base + rng.gen_range(-0.05..0.05)
            });
            ClsSample { input, label }
        };
        let samples: Vec<ClsSample> = (0..48).map(|i| make(i % 4, &mut rng)).collect();
        let cfg = TrainConfig {
            epochs: 8,
            lr: 0.005,
            ..TrainConfig::default()
        };
        train_classifier(&mut zoo.network, &samples, &cfg);
        let correct = samples
            .iter()
            .filter(|s| predicted_class(&zoo.network.forward(&s.input)) == s.label)
            .count();
        assert!(
            correct as f32 / samples.len() as f32 > 0.75,
            "only {correct}/{} correct",
            samples.len()
        );
    }

    #[test]
    fn detector_loss_decreases() {
        let mut zoo = tiny_fasterm(2);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let samples: Vec<DetSample> = (0..16)
            .map(|i| {
                let label = i % 2;
                let cy = if label == 0 { 0.3 } else { 0.7 };
                let input = Tensor3::from_fn(Shape3::new(1, 48, 48), |_, y, x| {
                    let d = (y as f32 / 48.0 - cy).abs() + (x as f32 / 48.0 - 0.5).abs();
                    if d < 0.2 {
                        0.9
                    } else {
                        0.1 + rng.gen_range(0.0..0.02)
                    }
                });
                DetSample {
                    input,
                    label,
                    bbox: [cy, 0.5, 0.3, 0.3],
                }
            })
            .collect();
        let cfg = TrainConfig {
            epochs: 1,
            lr: 0.01,
            ..TrainConfig::default()
        };
        let first = train_detector(&mut zoo.network, &samples, &cfg);
        let later = train_detector(&mut zoo.network, &samples, &cfg);
        assert!(later < first, "loss did not decrease: {first} -> {later}");
    }

    #[test]
    fn detection_loss_gradient_shape() {
        let out = Tensor3::from_vec(
            Shape3::new(DETECTION_OUTPUTS, 1, 1),
            vec![0.1; DETECTION_OUTPUTS],
        );
        let (loss, grad) = detection_loss(&out, 3, &[0.5, 0.5, 0.2, 0.2], 2.0);
        assert!(loss > 0.0);
        assert_eq!(grad.shape(), out.shape());
        // Class gradient for the true class is negative.
        assert!(grad.as_slice()[4 + 3] < 0.0);
    }

    #[test]
    fn suffix_finetune_only_changes_suffix() {
        let mut zoo = tiny_alexnet(4);
        let target = zoo.late_target;
        let input = Tensor3::filled(Shape3::new(1, 32, 32), 0.4);
        let act = zoo.network.forward_prefix(&input, target);
        let before_prefix = act.clone();
        let samples = vec![(act, 2usize)];
        let cfg = TrainConfig {
            epochs: 2,
            lr: 0.05,
            ..TrainConfig::default()
        };
        finetune_suffix_classifier(&mut zoo.network, target, &samples, &cfg);
        let after_prefix = zoo.network.forward_prefix(&input, target);
        assert_eq!(before_prefix, after_prefix);
    }

    #[test]
    fn predicted_detection_class_skips_bbox_channels() {
        let mut v = vec![9.0, 9.0, 9.0, 9.0]; // large bbox values must be ignored
        v.extend(vec![0.0; NUM_CLASSES]);
        v[4 + 5] = 1.0;
        let out = Tensor3::from_vec(Shape3::new(DETECTION_OUTPUTS, 1, 1), v);
        assert_eq!(predicted_detection_class(&out), 5);
    }
}
