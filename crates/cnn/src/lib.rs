//! A from-scratch convolutional neural network library.
//!
//! The EVA² paper runs AMC against Caffe-trained AlexNet, Faster16
//! (VGG-16-based Faster R-CNN), and FasterM (CNN-M-based). No Rust deep
//! learning substrate is assumed here (repro note: "DL ecosystem thin; must
//! bind or reimplement CNN"), so this crate *reimplements* the pieces AMC
//! touches:
//!
//! * [`layer`] — convolution, max-pooling, ReLU, and fully-connected layers
//!   with both forward and backward passes.
//! * [`network`] — sequential networks with prefix/suffix execution: AMC
//!   runs `forward` on key frames, but only [`Network::forward_suffix`] on
//!   predicted frames (Fig 1 of the paper).
//! * [`receptive`] — receptive-field arithmetic (size/stride/padding of the
//!   target layer as seen from the input), the geometry RFBME searches over.
//! * [`train`] — plain SGD with momentum, softmax cross-entropy, and a
//!   detection loss; enough to train the scaled-down network zoo and to
//!   reproduce the suffix-retraining ablation (Table III).
//! * [`zoo`] — `TinyAlexNet`, `TinyFaster16`, `TinyFasterM`: scaled-down
//!   analogues preserving the *structure* the paper relies on (conv/pool
//!   prefix, fully-connected suffix, early/late spatial target layers).
//! * [`metrics`] — top-1 accuracy and single-object mean average precision.
//! * [`delta`] — the delta-network baseline the paper argues against (§II),
//!   implemented for the ablation benches.
//!
//! # Example
//!
//! ```
//! use eva2_cnn::zoo;
//! use eva2_tensor::{Shape3, Tensor3};
//!
//! let net = zoo::tiny_alexnet(42);
//! let input = Tensor3::zeros(Shape3::new(1, 32, 32));
//! let logits = net.network.forward(&input);
//! assert_eq!(logits.shape().channels, zoo::NUM_CLASSES);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod delta;
pub mod describe;
pub mod layer;
pub mod metrics;
pub mod network;
pub mod receptive;
pub mod train;
pub mod zoo;

pub use describe::{ChannelStats, LayerInfo, LayerKind};
pub use layer::{Conv2d, FullyConnected, Layer, LayerGeometry, MaxPool2d, Relu};
pub use network::Network;
pub use receptive::ReceptiveField;
