//! Receptive field block motion estimation (RFBME).
//!
//! RFBME (§III-A of the paper) estimates one motion vector per *receptive
//! field* of the AMC target layer — exactly the granularity activation
//! warping can use. It exploits two properties of receptive fields:
//!
//! 1. Their size is typically much larger than their stride, so adjacent
//!    fields overlap heavily and **tile-level differences can be reused**.
//! 2. Padding makes edge receptive fields extend out of bounds, where
//!    comparisons are unnecessary.
//!
//! The implementation mirrors the hardware microarchitecture:
//! [`DiffTileProducer`] performs a subsampled exhaustive search per
//! `stride × stride` tile (Fig 6's "diff tile producer"), and
//! [`DiffTileConsumer`] coalesces tile differences into receptive-field
//! differences with rolling column add/subtract reuse and a min-check
//! register per field (Fig 8). Both stages count their arithmetic
//! operations, which backs the §IV-A first-order comparison against the CNN
//! prefix cost.
//!
//! # The fast path: hierarchical bounds, best-first
//!
//! [`Rfbme::estimate`] computes the *same result* as the two-stage hardware
//! model ([`Rfbme::estimate_reference`]) through a best-first
//! branch-and-bound search over admissible SAD lower bounds. All bounds are
//! instances of one inequality — for any partition of a tile into bands,
//! `Σ_bands |Σ new_band − Σ key_band| ≤ SAD` by the triangle inequality —
//! evaluated in O(1) per band from two [`IntegralImage`]s built once per
//! estimate:
//!
//! * **Level 0** is the one-band (whole-tile) bound `|Σ new − Σ key|`. A
//!   pre-pass aggregates it per receptive field for *every* candidate
//!   offset (rolling column reuse, exactly the hardware consumer's walk)
//!   and scores each offset by its total aggregated bound.
//! * **Best-first order**: offsets are then visited in ascending score
//!   order, so the offset most likely to hold the true minimum is refined
//!   first and the per-field running minima are tight almost immediately —
//!   after which level 0 alone rejects most remaining (offset, field)
//!   pairs without touching any pixel.
//! * **Level 1** re-bounds the survivors per tile with the strictly
//!   tighter per-column-strip and per-row partial-sum bounds
//!   ([`sad_lower_bound_cols`](crate::sad::sad_lower_bound_cols) /
//!   [`sad_lower_bound_rows`](crate::sad::sad_lower_bound_rows), O(stride)
//!   each, no per-pixel work). Only tiles of fields that survive level 1
//!   reach the exact chunked SAD kernels.
//!
//! Because every bound is a true lower bound, skipping is exact; and the
//! min-check keeps the lexicographic minimum of `(error, |offset|²,
//! row-major offset index)`, which reproduces the reference's tie-breaking
//! under *any* visit order (the reference visits row-major and updates on
//! strictly-smaller `(error, |offset|²)`, i.e. it also keeps exactly that
//! lexicographic minimum). Results are therefore bit-identical to the
//! reference; only the operation counts — and the [`SearchStats`] pruning
//! counters — differ. The PR-2 single-level, ascending-magnitude search
//! survives as [`Rfbme::estimate_onelevel`], the measured baseline for the
//! `rfbme_twolevel_over_onelevel` trajectory ratio.

// lint: hot-path

use crate::field::{MotionVector, VectorField};
use crate::sad::{sad_lower_bound_cols, sad_lower_bound_rows, sad_window, IntegralImage};
use crate::{MotionEstimator, MotionResult};
use eva2_tensor::GrayImage;
use serde::{Deserialize, Serialize};

/// Receptive-field geometry as seen from the input image.
///
/// Mirrors `eva2_cnn::ReceptiveField` (duplicated here so the motion crate
/// depends only on the tensor substrate; `eva2-core` converts between the
/// two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RfGeometry {
    /// Receptive-field side length in pixels.
    pub size: usize,
    /// Pixel distance between adjacent receptive fields.
    pub stride: usize,
    /// Offset of the first receptive field's origin above/left of the image
    /// origin.
    pub padding: usize,
}

impl RfGeometry {
    /// Number of receptive fields along an image dimension of `n` pixels
    /// (the spatial extent of the target activation).
    pub fn grid_len(&self, n: usize) -> usize {
        let padded = n + 2 * self.padding;
        if padded < self.size {
            0
        } else {
            (padded - self.size) / self.stride + 1
        }
    }
}

/// Block-matching search window parameters.
///
/// The producer "considers all locations in the key frame that are aligned
/// with the search stride and are within the search radius" (§III-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SearchParams {
    /// Maximum displacement searched in each direction, in pixels.
    pub radius: usize,
    /// Search stride: only offsets that are multiples of `step` are
    /// examined. 1 = full search.
    pub step: usize,
}

impl SearchParams {
    /// The search offsets along one axis: `-radius..=radius` step `step`.
    pub fn offsets(&self) -> Vec<isize> {
        let step = self.step.max(1) as isize;
        let r = self.radius as isize;
        let mut v = Vec::new();
        let mut o = -r;
        while o <= r {
            v.push(o);
            o += step;
        }
        v
    }

    /// Number of candidate offsets in the 2-D search window.
    pub fn window_len(&self) -> usize {
        let n = self.offsets().len();
        n * n
    }
}

/// Marker for a tile difference that could not be computed because the
/// candidate window leaves the key frame.
const INVALID: u32 = u32::MAX;

/// Tile-level absolute differences for every search offset.
///
/// `diffs[o][ty * tiles_x + tx]` is the sum of absolute differences between
/// the new frame's tile `(ty, tx)` and the key frame at that tile's origin
/// displaced by `offsets[o]`, or [`INVALID`] when that window is out of
/// bounds.
#[derive(Debug, Clone)]
pub struct TileDiffs {
    /// Tile grid height.
    pub tiles_y: usize,
    /// Tile grid width.
    pub tiles_x: usize,
    /// The (dy, dx) search offsets, row-major over the search window.
    pub offsets: Vec<(isize, isize)>,
    /// Per-offset tile difference planes.
    pub diffs: Vec<Vec<u32>>,
    /// Adds performed while producing the differences.
    pub ops: u64,
}

/// The diff tile producer: subsampled exhaustive search per tile (§III-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffTileProducer {
    /// Tile side length — equal to the receptive-field stride.
    pub tile: usize,
    /// Search window parameters.
    pub params: SearchParams,
}

impl DiffTileProducer {
    /// Computes tile differences between `new` (current frame tiles) and
    /// `key` (search windows).
    ///
    /// # Panics
    ///
    /// Panics when the two frames differ in size.
    pub fn produce(&self, key: &GrayImage, new: &GrayImage) -> TileDiffs {
        assert_eq!(
            (key.height(), key.width()),
            (new.height(), new.width()),
            "frame size mismatch"
        );
        let s = self.tile.max(1);
        let tiles_y = new.height() / s;
        let tiles_x = new.width() / s;
        let axis = self.params.offsets();
        let mut offsets = Vec::with_capacity(axis.len() * axis.len());
        for &dy in &axis {
            for &dx in &axis {
                offsets.push((dy, dx));
            }
        }
        let mut diffs = vec![vec![INVALID; tiles_y * tiles_x]; offsets.len()];
        let mut ops: u64 = 0;
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                let oy = (ty * s) as isize;
                let ox = (tx * s) as isize;
                for (oi, &(dy, dx)) in offsets.iter().enumerate() {
                    let ky = oy + dy;
                    let kx = ox + dx;
                    // Only fully in-bounds key windows are valid candidates.
                    if ky < 0
                        || kx < 0
                        || ky + s as isize > key.height() as isize
                        || kx + s as isize > key.width() as isize
                    {
                        continue;
                    }
                    let mut sad: u32 = 0;
                    for py in 0..s {
                        for px in 0..s {
                            let a = new.get(oy as usize + py, ox as usize + px) as i32;
                            let b = key.get((ky as usize) + py, (kx as usize) + px) as i32;
                            sad += (a - b).unsigned_abs();
                        }
                    }
                    ops += (s * s) as u64;
                    diffs[oi][ty * tiles_x + tx] = sad;
                }
            }
        }
        TileDiffs {
            tiles_y,
            tiles_x,
            offsets,
            diffs,
            ops,
        }
    }
}

/// Per-receptive-field output of the consumer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfMatch {
    /// Best-match displacement (pixels, gather convention).
    pub vector: MotionVector,
    /// Minimum receptive-field difference (the block error fed to the
    /// key-frame choice module).
    pub error: u32,
    /// Number of pixels that contributed to `error` (for normalisation).
    pub pixels: u32,
}

/// The diff tile consumer: aggregates tile differences into receptive-field
/// differences with rolling reuse, and finds each field's best offset
/// (§III-A2, Fig 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffTileConsumer {
    /// Receptive-field geometry.
    pub rf: RfGeometry,
}

impl DiffTileConsumer {
    /// Tile index range `[t0, t1)` covered by the receptive field starting
    /// at activation coordinate `a` along one axis, restricted to whole
    /// tiles inside the frame ("RFBME ignores partial tiles", §III-A).
    fn tile_range(&self, a: usize, tiles: usize) -> (usize, usize) {
        let s = self.rf.stride as isize;
        let origin = a as isize * s - self.rf.padding as isize;
        let end = origin + self.rf.size as isize;
        // First whole tile at or after origin; last whole tile ending at or
        // before end.
        let t0 = origin.div_euclid(s) + if origin.rem_euclid(s) != 0 { 1 } else { 0 };
        let t1 = end.div_euclid(s);
        let t0 = t0.max(0) as usize;
        let t1 = t1.max(0) as usize;
        (t0.min(tiles), t1.min(tiles))
    }

    /// Consumes tile differences, producing one [`RfMatch`] per receptive
    /// field plus the consumer's operation count.
    pub fn consume(&self, tiles: &TileDiffs, grid_h: usize, grid_w: usize) -> (Vec<RfMatch>, u64) {
        let s2 = (self.rf.stride * self.rf.stride) as u32;
        let mut best: Vec<RfMatch> = vec![
            RfMatch {
                vector: MotionVector::ZERO,
                error: u32::MAX,
                pixels: 0,
            };
            grid_h * grid_w
        ];
        let mut ops: u64 = 0;
        let mut colsum = vec![0u64; tiles.tiles_x];
        let mut colvalid = vec![true; tiles.tiles_x];
        for (oi, plane) in tiles.diffs.iter().enumerate() {
            let (ody, odx) = tiles.offsets[oi];
            for ay in 0..grid_h {
                let (ty0, ty1) = self.tile_range(ay, tiles.tiles_y);
                if ty0 >= ty1 {
                    continue;
                }
                // Column sums over the tile rows of this receptive-field row
                // (the "previous block sum memory" granularity in hardware).
                for tx in 0..tiles.tiles_x {
                    let mut sum = 0u64;
                    let mut valid = true;
                    for ty in ty0..ty1 {
                        let d = plane[ty * tiles.tiles_x + tx];
                        if d == INVALID {
                            valid = false;
                            break;
                        }
                        sum += d as u64;
                    }
                    ops += (ty1 - ty0) as u64;
                    colsum[tx] = sum;
                    colvalid[tx] = valid;
                }
                // Slide the window across activation columns with rolling
                // add/subtract.
                let mut window: Option<(u64, usize, usize)> = None; // (sum, tx0, tx1)
                for ax in 0..grid_w {
                    let (tx0, tx1) = self.tile_range(ax, tiles.tiles_x);
                    if tx0 >= tx1 {
                        window = None;
                        continue;
                    }
                    let sum = match window {
                        // Rolling update only valid when the window width is
                        // unchanged and slid by exactly the reuse pattern.
                        Some((prev, p0, p1)) if tx1 - tx0 == p1 - p0 && tx0 >= p0 && tx0 <= p1 => {
                            let mut sum = prev;
                            for &col in &colsum[p0..tx0] {
                                sum -= col;
                                ops += 1;
                            }
                            for &col in &colsum[p1..tx1] {
                                sum += col;
                                ops += 1;
                            }
                            sum
                        }
                        _ => {
                            let mut sum = 0u64;
                            for &col in &colsum[tx0..tx1] {
                                sum += col;
                                ops += 1;
                            }
                            sum
                        }
                    };
                    window = Some((sum, tx0, tx1));
                    // Any invalid column invalidates this offset for the RF.
                    if colvalid[tx0..tx1].iter().any(|&v| !v) {
                        continue;
                    }
                    let n_tiles = ((ty1 - ty0) * (tx1 - tx0)) as u32;
                    let err = sum.min(u32::MAX as u64 - 1) as u32;
                    let b = &mut best[ay * grid_w + ax];
                    // Min-check register: strictly-smaller error wins; ties
                    // prefer the smaller displacement (stability).
                    let cand_mag = (ody * ody + odx * odx) as f32;
                    let best_mag = b.vector.dy * b.vector.dy + b.vector.dx * b.vector.dx;
                    if err < b.error || (err == b.error && cand_mag < best_mag) {
                        *b = RfMatch {
                            vector: MotionVector::new(ody as f32, odx as f32),
                            error: err,
                            pixels: n_tiles * s2,
                        };
                    }
                }
            }
        }
        // Receptive fields that never saw a valid offset keep the
        // `u32::MAX` sentinel; `Rfbme::result_from_matches` maps them to
        // zero motion / zero error (no evidence either way).
        (best, ops)
    }
}

/// Pruning counters of one fast-path estimate (zero for the reference
/// model, which prunes nothing).
///
/// A *candidate* is one valid (offset, receptive field) pair — an offset
/// whose search windows stay in bounds for every tile the field covers.
/// Every candidate is accounted for exactly once:
/// `candidates == rejected_level0 + rejected_level1 + refined`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Valid (offset, receptive field) pairs examined.
    pub candidates: u64,
    /// Candidates rejected by the aggregated whole-tile (level-0) bound.
    pub rejected_level0: u64,
    /// Candidates rejected by the per-row / per-column-strip (level-1)
    /// bound after surviving level 0.
    pub rejected_level1: u64,
    /// Candidates fully refined with exact SAD aggregation.
    pub refined: u64,
}

/// Full RFBME result.
#[derive(Debug, Clone)]
pub struct RfbmeResult {
    /// Motion vector per receptive field (pixel units, cell = RF stride).
    pub field: VectorField,
    /// Per-field minimum block error.
    pub errors: Vec<u32>,
    /// Sum of per-field minimum errors — the pixel-compensation-error
    /// signal for adaptive key-frame selection.
    pub total_error: u64,
    /// Total pixels compared across all fields' best matches (receptive
    /// fields overlap, so this exceeds the frame size). Normalising
    /// `total_error` by this gives a resolution-independent per-pixel
    /// error.
    pub total_pixels: u64,
    /// Producer adds.
    pub producer_ops: u64,
    /// Consumer adds/subtracts.
    pub consumer_ops: u64,
    /// Pruning counters (all zero for [`Rfbme::estimate_reference`]).
    pub search: SearchStats,
}

impl RfbmeResult {
    /// Total arithmetic operations.
    pub fn ops(&self) -> u64 {
        self.producer_ops + self.consumer_ops
    }
}

/// One candidate offset of the best-first search.
#[derive(Debug, Clone, Copy, Default)]
struct Cand {
    dy: isize,
    dx: isize,
    /// Row-major index in the reference's visit order — the final
    /// tie-break component.
    rm: u32,
    /// Squared displacement magnitude — the second tie-break component.
    mag: u64,
    /// Best-first priority: total aggregated level-0 bound over all
    /// receptive fields (invalid fields contribute a large constant).
    score: u64,
    /// Minimum level-0 tile bound over this offset's valid tiles
    /// (`u64::MAX` when none are valid) — powers the offset-level quick
    /// reject before any per-tile work in the main loop.
    min_lb: u64,
}

/// Per-receptive-field min-check register of the best-first search: the
/// lexicographic minimum of `(err, mag, rm)` seen so far, plus the data
/// needed to finalise the match.
#[derive(Debug, Clone, Copy)]
struct BestCell {
    err: u32,
    mag: u64,
    rm: u32,
    dy: isize,
    dx: isize,
    pixels: u32,
}

impl BestCell {
    const EMPTY: BestCell = BestCell {
        err: u32::MAX,
        mag: u64::MAX,
        rm: u32::MAX,
        dy: 0,
        dx: 0,
        pixels: 0,
    };

    /// Whether a candidate with lower bound `bound` could still replace
    /// this register, i.e. whether `(err ≥ bound, mag, rm)` could be
    /// lexicographically smaller than `(self.err, self.mag, self.rm)`.
    /// Bounds saturate exactly like errors so the comparison stays exact
    /// even at the `u32` ceiling.
    #[inline]
    fn improvable_by(&self, bound: u64, mag: u64, rm: u32) -> bool {
        let lb = bound.min(u32::MAX as u64 - 1) as u32;
        lb < self.err || (lb == self.err && (mag, rm) < (self.mag, self.rm))
    }
}

/// Contiguous range `[lo, hi)` of tile indices along one axis whose search
/// windows stay inside the key frame at offset `d`: `t·s + d ≥ 0` and
/// `t·s + d + s ≤ n`. Validity is separable per axis (a tile is valid iff
/// its row *and* column are), which is what makes per-offset validity O(1)
/// instead of per-tile.
#[inline]
fn valid_tile_range(tiles: usize, s: usize, d: isize, n: usize) -> (usize, usize) {
    let s_i = s as isize;
    let lo = (-d).div_euclid(s_i) + if (-d).rem_euclid(s_i) != 0 { 1 } else { 0 };
    let lo = lo.max(0) as usize;
    let hi_num = n as isize - s_i - d;
    if hi_num < 0 {
        return (tiles, tiles); // empty
    }
    let hi = ((hi_num.div_euclid(s_i) + 1) as usize).min(tiles);
    (lo.min(hi), hi)
}

/// Reusable buffers for [`Rfbme::estimate_with`] (and the retained
/// single-level baseline [`Rfbme::estimate_onelevel_with`]).
///
/// One estimate needs two integral images plus a dozen per-tile /
/// per-receptive-field work vectors; a frame-loop caller (the AMC
/// executor's session state, the pipelined executor's `rfbme-worker`
/// thread) holds one scratch so steady-state estimation allocates nothing
/// but the returned [`RfbmeResult`]. Buffer contents never influence
/// results — every value is rewritten (or reset here) before use — so
/// sharing a scratch across streams, or none at all, is purely a
/// performance choice.
#[derive(Debug, Clone, Default)]
pub struct RfbmeScratch {
    key_sat: IntegralImage,
    new_sat: IntegralImage,
    offsets: Vec<(isize, isize)>,
    row_range: Vec<(usize, usize)>,
    col_range: Vec<(usize, usize)>,
    new_sums: Vec<u64>,
    best: Vec<RfMatch>,
    lb: Vec<u64>,
    tile_valid: Vec<bool>,
    exact: Vec<u32>,
    needed: Vec<bool>,
    improvable: Vec<usize>,
    colsum: Vec<u64>,
    colvalid: Vec<bool>,
    // Best-first two-level search state (estimate_with only).
    cand: Vec<Cand>,
    order: Vec<u32>,
    key_box: Vec<u64>,
    best_bf: Vec<BestCell>,
    l1: Vec<u64>,
    l1_stamp: Vec<u32>,
    exact_stamp: Vec<u32>,
}

impl RfbmeScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes of heap memory this scratch holds (allocated capacities) —
    /// the serving engine's per-session memory audit. Buffers grow to
    /// their steady-state size on the first estimate, so a session's
    /// footprint is stable after its first predicted frame.
    pub fn heap_bytes(&self) -> usize {
        fn vec_bytes<T>(v: &Vec<T>) -> usize {
            v.capacity() * std::mem::size_of::<T>()
        }
        self.key_sat.heap_bytes()
            + self.new_sat.heap_bytes()
            + vec_bytes(&self.offsets)
            + vec_bytes(&self.row_range)
            + vec_bytes(&self.col_range)
            + vec_bytes(&self.new_sums)
            + vec_bytes(&self.best)
            + vec_bytes(&self.lb)
            + vec_bytes(&self.tile_valid)
            + vec_bytes(&self.exact)
            + vec_bytes(&self.needed)
            + vec_bytes(&self.improvable)
            + vec_bytes(&self.colsum)
            + vec_bytes(&self.colvalid)
            + vec_bytes(&self.cand)
            + vec_bytes(&self.order)
            + vec_bytes(&self.key_box)
            + vec_bytes(&self.best_bf)
            + vec_bytes(&self.l1)
            + vec_bytes(&self.l1_stamp)
            + vec_bytes(&self.exact_stamp)
    }
}

/// Shared search geometry derived once per estimate, used by both the
/// two-level fast path and the retained single-level baseline.
#[derive(Debug, Clone, Copy)]
struct SearchGeometry {
    s: usize,
    h: usize,
    w: usize,
    tiles_y: usize,
    tiles_x: usize,
    n_tiles: usize,
    grid_h: usize,
    grid_w: usize,
    n_rf: usize,
}

/// The setup prologue both fast paths share: derives the geometry, fills
/// the per-axis receptive-field tile ranges, rebuilds both integral images
/// (returning their op count as the initial `producer_ops`), and computes
/// every new-frame tile sum. Keeping it in one place means a geometry or
/// ops-accounting change cannot silently diverge between the two-level
/// search and the single-level oracle that validates it — only the search
/// logic itself stays independent.
#[allow(clippy::too_many_arguments)] // one slot per reused scratch buffer
fn prepare_search(
    rf: RfGeometry,
    key: &GrayImage,
    new: &GrayImage,
    key_sat: &mut IntegralImage,
    new_sat: &mut IntegralImage,
    row_range: &mut Vec<(usize, usize)>,
    col_range: &mut Vec<(usize, usize)>,
    new_sums: &mut Vec<u64>,
) -> (SearchGeometry, u64) {
    let s = rf.stride.max(1);
    let (h, w) = (new.height(), new.width());
    let g = SearchGeometry {
        s,
        h,
        w,
        tiles_y: h / s,
        tiles_x: w / s,
        n_tiles: (h / s) * (w / s),
        grid_h: rf.grid_len(h),
        grid_w: rf.grid_len(w),
        n_rf: rf.grid_len(h) * rf.grid_len(w),
    };
    let consumer = DiffTileConsumer { rf };
    row_range.clear();
    row_range.extend((0..g.grid_h).map(|a| consumer.tile_range(a, g.tiles_y)));
    col_range.clear();
    col_range.extend((0..g.grid_w).map(|a| consumer.tile_range(a, g.tiles_x)));
    // O(1) window sums over both frames; one pass over the pixels each.
    key_sat.recompute(key);
    new_sat.recompute(new);
    let producer_ops = 2 * (h * w) as u64;
    new_sums.resize(g.n_tiles, 0);
    for ty in 0..g.tiles_y {
        for tx in 0..g.tiles_x {
            new_sums[ty * g.tiles_x + tx] = new_sat.window_sum(ty * s, tx * s, s, s);
        }
    }
    (g, producer_ops)
}

/// The complete RFBME estimator: producer + consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rfbme {
    rf: RfGeometry,
    params: SearchParams,
}

impl Rfbme {
    /// Creates an estimator for the given receptive-field geometry and
    /// search window.
    pub fn new(rf: RfGeometry, params: SearchParams) -> Self {
        Self { rf, params }
    }

    /// The receptive-field geometry being matched.
    pub fn rf(&self) -> RfGeometry {
        self.rf
    }

    /// Runs RFBME from `key` to `new` through the two-stage hardware
    /// reference model ([`DiffTileProducer`] + [`DiffTileConsumer`]), with
    /// no early exit: every in-bounds `(tile, offset)` SAD is computed.
    ///
    /// This is the bit-faithful model of Fig 6/Fig 8 and the golden
    /// reference the fast path ([`Rfbme::estimate`]) is tested against.
    pub fn estimate_reference(&self, key: &GrayImage, new: &GrayImage) -> RfbmeResult {
        let producer = DiffTileProducer {
            tile: self.rf.stride,
            params: self.params,
        };
        let tiles = producer.produce(key, new);
        let grid_h = self.rf.grid_len(new.height());
        let grid_w = self.rf.grid_len(new.width());
        let consumer = DiffTileConsumer { rf: self.rf };
        let (matches, consumer_ops) = consumer.consume(&tiles, grid_h, grid_w);
        Self::result_from_matches(
            self.rf,
            &matches,
            grid_h,
            grid_w,
            tiles.ops,
            consumer_ops,
            SearchStats::default(),
        )
    }

    /// Runs RFBME from `key` to `new` on the fast path: best-first
    /// branch-and-bound over the two-level hierarchy of admissible SAD
    /// lower bounds (see the [module docs](self)).
    ///
    /// A pre-pass aggregates the whole-tile level-0 bound
    /// (`|Σ new_tile − Σ key_window|`, two O(1) [`IntegralImage`] window
    /// sums) per receptive field for every candidate offset, with the same
    /// rolling column reuse as the hardware consumer, and scores each
    /// offset by its total bound. Offsets are then visited best-first
    /// (ascending score): the first offsets refined are the ones most
    /// likely to hold each field's true minimum, so the running minima
    /// tighten almost immediately and level 0 alone rejects most of the
    /// remaining (offset, field) pairs from the stored aggregates — no
    /// pixel or tile work at all. Survivors are re-bounded per tile with
    /// the strictly tighter level-1 per-column-strip and per-row bounds
    /// (O(stride) each, still no pixel reads), and only tiles of fields
    /// that survive level 1 reach the exact chunked SAD kernels from
    /// [`crate::sad`].
    ///
    /// Because every bound is a true lower bound, skipping is *exact*: the
    /// returned per-field minimum error equals the exhaustive search's
    /// (and therefore so do `errors`, `total_error`, and `total_pixels`).
    /// The min-check register keeps the lexicographic minimum of
    /// `(error, |offset|², row-major offset index)` — exactly the candidate
    /// the reference's row-major visit order with its
    /// smaller-displacement-on-ties rule retains — so the vectors match
    /// [`Rfbme::estimate_reference`] bit for bit under the best-first
    /// order too. Only the operation counts and [`SearchStats`] differ —
    /// they *are* the pruning savings.
    ///
    /// # Panics
    ///
    /// Panics when the two frames differ in size.
    pub fn estimate(&self, key: &GrayImage, new: &GrayImage) -> RfbmeResult {
        self.estimate_with(key, new, &mut RfbmeScratch::new())
    }

    /// [`Rfbme::estimate`] reusing caller-owned scratch buffers, so a
    /// frame-loop caller performs no per-estimate allocation. Results are
    /// identical to [`Rfbme::estimate`] — the scratch only carries
    /// capacity, never values, between calls.
    ///
    /// # Panics
    ///
    /// Panics when the two frames differ in size.
    pub fn estimate_with(
        &self,
        key: &GrayImage,
        new: &GrayImage,
        scratch: &mut RfbmeScratch,
    ) -> RfbmeResult {
        assert_eq!(
            (key.height(), key.width()),
            (new.height(), new.width()),
            "frame size mismatch"
        );
        let RfbmeScratch {
            key_sat,
            new_sat,
            row_range,
            col_range,
            new_sums,
            best,
            lb,
            exact,
            colsum,
            cand,
            order,
            key_box,
            best_bf,
            l1,
            l1_stamp,
            exact_stamp,
            ..
        } = scratch;
        let (g, mut producer_ops) = prepare_search(
            self.rf, key, new, key_sat, new_sat, row_range, col_range, new_sums,
        );
        let SearchGeometry {
            s,
            h,
            w,
            tiles_y,
            tiles_x,
            n_tiles,
            grid_h,
            grid_w,
            n_rf,
        } = g;

        // Candidate offsets in the reference's row-major order, annotated
        // with the two tie-break components. Iterated arithmetically (not
        // via `SearchParams::offsets`) so a warmed scratch makes this whole
        // estimate allocate nothing but the returned result — the property
        // the serving engine's alloc audit pins.
        let step = self.params.step.max(1) as isize;
        let radius = self.params.radius as isize;
        cand.clear();
        let mut dy = -radius;
        while dy <= radius {
            let mut dx = -radius;
            while dx <= radius {
                cand.push(Cand {
                    dy,
                    dx,
                    rm: cand.len() as u32,
                    mag: (dy * dy + dx * dx) as u64,
                    score: 0,
                    min_lb: u64::MAX,
                });
                dx += step;
            }
            dy += step;
        }

        let mut consumer_ops: u64 = 0;
        let mut search = SearchStats::default();

        let s2 = (s * s) as u32;
        best_bf.clear();
        best_bf.resize(n_rf, BestCell::EMPTY);
        lb.resize(n_tiles, 0);
        exact.resize(n_tiles, 0);
        l1.resize(n_tiles, 0);
        // Stamps must start below every serial used this estimate.
        l1_stamp.clear();
        l1_stamp.resize(n_tiles, 0);
        exact_stamp.clear();
        exact_stamp.resize(n_tiles, 0);
        colsum.resize(tiles_x, 0);

        // Box-filter the key frame once: every s×s key window sum any
        // offset can probe, so the per-(tile, offset) level-0 bound below
        // is ONE load instead of four summed-area lookups. (The search
        // probes each box position ~window_len/step² times.)
        let (box_h, box_w) = if h >= s && w >= s {
            (h - s + 1, w - s + 1)
        } else {
            (0, 0)
        };
        key_box.resize(box_h * box_w, 0);
        for y in 0..box_h {
            for x in 0..box_w {
                key_box[y * box_w + x] = key_sat.window_sum(y, x, s, s);
            }
        }
        consumer_ops += (box_h * box_w) as u64;

        // Pass 1: score every offset by its total level-0 tile bound over
        // the valid tile rectangle (out-of-bounds tiles are penalised so
        // fully in-bounds offsets sort first). Scores only steer the visit
        // order — correctness never depends on them.
        const OOB_PENALTY: u64 = u32::MAX as u64;
        for c in cand.iter_mut() {
            let (ty_lo, ty_hi) = valid_tile_range(tiles_y, s, c.dy, h);
            let (tx_lo, tx_hi) = valid_tile_range(tiles_x, s, c.dx, w);
            let n_valid = (ty_hi - ty_lo) * (tx_hi - tx_lo);
            let mut score = (n_tiles - n_valid) as u64 * OOB_PENALTY;
            let mut min_lb = u64::MAX;
            for ty in ty_lo..ty_hi {
                let row = (((ty * s) as isize + c.dy) as usize) * box_w;
                for tx in tx_lo..tx_hi {
                    let kx = ((tx * s) as isize + c.dx) as usize;
                    let v = new_sums[ty * tiles_x + tx].abs_diff(key_box[row + kx]);
                    score += v;
                    min_lb = min_lb.min(v);
                }
            }
            consumer_ops += n_valid as u64;
            c.score = score;
            c.min_lb = min_lb;
        }

        // Best-first visit order: ascending total bound; rm makes the sort
        // key unique, so the order is fully deterministic.
        order.clear();
        order.extend(0..cand.len() as u32);
        order.sort_unstable_by_key(|&i| (cand[i as usize].score, cand[i as usize].rm));

        // Pass 2, best-first: per offset, rebuild the level-0 tile bounds
        // (one box load each), reject whole offsets whose *minimum* tile
        // bound already exceeds every field's running minimum, aggregate
        // the rest per receptive field (rolling column reuse), re-bound
        // survivors at level 1 (cached per offset via stamps, shared by
        // overlapping fields), and run exact SADs only on what remains.
        // The smallest tile footprint of any (nonempty) receptive field —
        // every field's level-0 bound sums at least this many tile bounds,
        // which strengthens the offset-level quick reject below.
        let min_band_h = row_range
            .iter()
            .filter(|&&(t0, t1)| t0 < t1)
            .map(|&(t0, t1)| t1 - t0)
            .min()
            .unwrap_or(1) as u64;
        let min_band_w = col_range
            .iter()
            .filter(|&&(t0, t1)| t0 < t1)
            .map(|&(t0, t1)| t1 - t0)
            .min()
            .unwrap_or(1) as u64;
        let min_rf_tiles = min_band_h * min_band_w;
        let mut max_best = u64::MAX; // max running minimum over live fields
        for (serial, &oi) in order.iter().enumerate() {
            let serial = serial as u32 + 1;
            let c = cand[oi as usize];
            let (ty_lo, ty_hi) = valid_tile_range(tiles_y, s, c.dy, h);
            let (tx_lo, tx_hi) = valid_tile_range(tiles_x, s, c.dx, w);
            if ty_lo >= ty_hi || tx_lo >= tx_hi {
                continue; // no valid tiles ⇒ no candidates at this offset
            }
            let n_ax_valid = col_range
                .iter()
                .filter(|&&(t0, t1)| t0 < t1 && t0 >= tx_lo && t1 <= tx_hi)
                .count() as u64;
            if n_ax_valid == 0 {
                continue;
            }
            // Offset-level quick reject, BEFORE any per-tile work: a
            // field's bound sums ≥ min_rf_tiles tile bounds, each ≥ the
            // offset's minimum tile bound (recorded by pass 1), so if that
            // product already strictly exceeds every live field's running
            // minimum, no field can improve here — skip the offset without
            // rebuilding a single tile bound.
            if c.min_lb.saturating_mul(min_rf_tiles) > max_best {
                let n_ay = row_range
                    .iter()
                    .filter(|&&(t0, t1)| t0 < t1 && t0 >= ty_lo && t1 <= ty_hi)
                    .count() as u64;
                search.candidates += n_ay * n_ax_valid;
                search.rejected_level0 += n_ay * n_ax_valid;
                continue;
            }
            // Level-0 tile bounds over the valid rectangle.
            for ty in ty_lo..ty_hi {
                let row = (((ty * s) as isize + c.dy) as usize) * box_w;
                for tx in tx_lo..tx_hi {
                    let t = ty * tiles_x + tx;
                    let kx = ((tx * s) as isize + c.dx) as usize;
                    lb[t] = new_sums[t].abs_diff(key_box[row + kx]);
                }
            }
            consumer_ops += ((ty_hi - ty_lo) * (tx_hi - tx_lo)) as u64;
            let mut updated = false;
            for (ay, &(ty0, ty1)) in row_range.iter().enumerate() {
                if ty0 >= ty1 || ty0 < ty_lo || ty1 > ty_hi {
                    continue;
                }
                let mut band_min = u64::MAX;
                for tx in tx_lo..tx_hi {
                    let mut sum = 0u64;
                    for ty in ty0..ty1 {
                        sum += lb[ty * tiles_x + tx];
                    }
                    colsum[tx] = sum;
                    band_min = band_min.min(sum);
                }
                consumer_ops += ((ty1 - ty0) * (tx_hi - tx_lo)) as u64;
                // Row-band quick reject: every field in this activation row
                // covers ≥ min_band_w of these column sums, each ≥
                // band_min — same argument as above, one band down.
                if band_min.saturating_mul(min_band_w) > max_best {
                    search.candidates += n_ax_valid;
                    search.rejected_level0 += n_ax_valid;
                    continue;
                }
                for (ax, &(tx0, tx1)) in col_range.iter().enumerate() {
                    if tx0 >= tx1 || tx0 < tx_lo || tx1 > tx_hi {
                        continue;
                    }
                    let mut lb_sum = 0u64;
                    for &cs in &colsum[tx0..tx1] {
                        lb_sum += cs;
                    }
                    consumer_ops += (tx1 - tx0) as u64;
                    let idx = ay * grid_w + ax;
                    search.candidates += 1;
                    let b = best_bf[idx];
                    if !b.improvable_by(lb_sum, c.mag, c.rm) {
                        search.rejected_level0 += 1;
                        continue;
                    }
                    // Level 1: tighter per-tile bounds, computed at most
                    // once per (tile, offset).
                    let mut l1_sum = 0u64;
                    for ty in ty0..ty1 {
                        for tx in tx0..tx1 {
                            let t = ty * tiles_x + tx;
                            if l1_stamp[t] != serial {
                                l1_stamp[t] = serial;
                                let na = (ty * s, tx * s);
                                let ka = (
                                    ((ty * s) as isize + c.dy) as usize,
                                    ((tx * s) as isize + c.dx) as usize,
                                );
                                let cols = sad_lower_bound_cols(new_sat, key_sat, na, ka, s, s);
                                let rows = sad_lower_bound_rows(new_sat, key_sat, na, ka, s, s);
                                l1[t] = cols.max(rows);
                                consumer_ops += 2 * s as u64;
                            }
                            l1_sum += l1[t];
                        }
                    }
                    if !b.improvable_by(l1_sum, c.mag, c.rm) {
                        search.rejected_level1 += 1;
                        continue;
                    }
                    // Exact refinement (also cached per (tile, offset)).
                    let mut sum = 0u64;
                    for ty in ty0..ty1 {
                        for tx in tx0..tx1 {
                            let t = ty * tiles_x + tx;
                            if exact_stamp[t] != serial {
                                exact_stamp[t] = serial;
                                let ky = ((ty * s) as isize + c.dy) as usize;
                                let kx = ((tx * s) as isize + c.dx) as usize;
                                exact[t] = sad_window(new, key, (ty * s, tx * s), (ky, kx), s, s);
                                producer_ops += s2 as u64;
                            }
                            sum += exact[t] as u64;
                        }
                    }
                    let n = ((ty1 - ty0) * (tx1 - tx0)) as u64;
                    consumer_ops += n;
                    search.refined += 1;
                    let err = sum.min(u32::MAX as u64 - 1) as u32;
                    if (err, c.mag, c.rm) < (b.err, b.mag, b.rm) {
                        best_bf[idx] = BestCell {
                            err,
                            mag: c.mag,
                            rm: c.rm,
                            dy: c.dy,
                            dx: c.dx,
                            pixels: n as u32 * s2,
                        };
                        updated = true;
                    }
                }
            }
            if updated {
                // Refresh the quick-reject threshold: the max running
                // minimum over fields that exist (nonempty tile ranges).
                // Fields still at the u32::MAX sentinel keep it disabled.
                max_best = 0;
                for (idx, b) in best_bf.iter().enumerate() {
                    let (ty0, ty1) = row_range[idx / grid_w];
                    let (tx0, tx1) = col_range[idx % grid_w];
                    if ty0 < ty1 && tx0 < tx1 {
                        max_best = max_best.max(b.err as u64);
                    }
                }
            }
        }

        best.clear();
        best.extend(best_bf.iter().map(|b| RfMatch {
            vector: MotionVector::new(b.dy as f32, b.dx as f32),
            error: b.err,
            pixels: b.pixels,
        }));
        Self::result_from_matches(
            self.rf,
            best,
            grid_h,
            grid_w,
            producer_ops,
            consumer_ops,
            search,
        )
    }

    /// Sound static upper bound on [`RfbmeResult::ops`] for one
    /// [`Rfbme::estimate`]/[`Rfbme::estimate_with`] call over `h`×`w`
    /// frames — the motion-estimation term of `eva2-analysis`'s
    /// predicted-frame cost model.
    ///
    /// The bound charges every pruning opportunity as if it never fired,
    /// so it holds for *any* frame contents:
    ///
    /// * producer: two summed-area rebuilds (`2·h·w`) plus one exact
    ///   `s²`-pixel SAD per (tile, offset) — the exact-refinement cache
    ///   admits at most one per offset serial;
    /// * consumer: the `(h−s+1)·(w−s+1) ≤ h·w` key box filter, then per
    ///   offset: pass-1 scoring and the level-0 rebuild (`≤ n_tiles`
    ///   each), the level-1 strip bounds (`2·s` per tile, cached once per
    ///   offset), per-row-band column sums (`≤ grid_h·band·tiles_x`), and
    ///   per-field aggregation (`≤ n_rf·band` column adds plus
    ///   `≤ n_rf·band²` exact-tile adds), where `band = ⌊size/stride⌋` is
    ///   the most whole tiles one receptive field can cover per axis.
    ///
    /// Saturating arithmetic keeps degenerate geometries from wrapping.
    pub fn ops_bound(&self, h: usize, w: usize) -> u64 {
        let s = self.rf.stride.max(1) as u64;
        let (h64, w64) = (h as u64, w as u64);
        let (tiles_y, tiles_x) = (h64 / s, w64 / s);
        let n_tiles = tiles_y * tiles_x;
        let grid_h = self.rf.grid_len(h) as u64;
        let grid_w = self.rf.grid_len(w) as u64;
        let n_rf = grid_h * grid_w;
        let band = ((self.rf.size as u64) / s).max(1);
        let window = self.params.window_len() as u64;
        let fixed = 3u64.saturating_mul(h64.saturating_mul(w64));
        let per_offset = n_tiles
            .saturating_mul(s * s)
            .saturating_add(2 * n_tiles)
            .saturating_add(2 * s * n_tiles)
            .saturating_add(grid_h.saturating_mul(band).saturating_mul(tiles_x))
            .saturating_add(n_rf.saturating_mul(band))
            .saturating_add(n_rf.saturating_mul(band * band));
        fixed.saturating_add(window.saturating_mul(per_offset))
    }

    /// Static upper bound on [`RfbmeScratch::heap_bytes`] after any number
    /// of [`Rfbme::estimate_with`] calls over `h`×`w` frames — the
    /// motion-scratch term of the serving engine's per-session memory
    /// bound.
    ///
    /// Every buffer the two-level search touches is sized exactly by the
    /// geometry (`resize`/`extend` from a known length allocates precisely
    /// that), except `cand`, which is push-grown and therefore rounds up
    /// to the next power of two. Buffers only the retained single-level
    /// baseline uses stay empty on this path and are not charged.
    pub fn scratch_bytes_bound(&self, h: usize, w: usize) -> usize {
        use std::mem::size_of;
        fn npot(n: usize) -> usize {
            n.next_power_of_two().max(4)
        }
        let s = self.rf.stride.max(1);
        let (tiles_y, tiles_x) = (h / s, w / s);
        let n_tiles = tiles_y * tiles_x;
        let grid_h = self.rf.grid_len(h);
        let grid_w = self.rf.grid_len(w);
        let n_rf = grid_h * grid_w;
        let window = self.params.window_len();
        let sat = (h + 1) * (w + 1) * size_of::<u64>();
        let box_len = if h >= s && w >= s {
            (h - s + 1) * (w - s + 1)
        } else {
            0
        };
        2 * sat // key_sat + new_sat
            + (grid_h + grid_w) * size_of::<(usize, usize)>() // row/col_range
            + n_tiles * size_of::<u64>() // new_sums
            + n_rf * size_of::<RfMatch>() // best
            + n_tiles * size_of::<u64>() // lb
            + n_tiles * size_of::<u32>() // exact
            + n_tiles * size_of::<u64>() // l1
            + 2 * n_tiles * size_of::<u32>() // l1_stamp + exact_stamp
            + tiles_x * size_of::<u64>() // colsum
            + npot(window) * size_of::<Cand>() // cand (push-grown)
            + window * size_of::<u32>() // order
            + box_len * size_of::<u64>() // key_box
            + n_rf * size_of::<BestCell>() // best_bf
    }

    /// The retained PR-2 single-level fast path: fused producer/consumer
    /// with the whole-tile (level-0) bound only, visiting offsets in
    /// ascending-magnitude order. Results are identical to
    /// [`Rfbme::estimate`] and [`Rfbme::estimate_reference`]; kept as the
    /// measured baseline for the `rfbme_twolevel_over_onelevel` trajectory
    /// ratio and as an independent implementation for equivalence tests.
    ///
    /// # Panics
    ///
    /// Panics when the two frames differ in size.
    pub fn estimate_onelevel(&self, key: &GrayImage, new: &GrayImage) -> RfbmeResult {
        self.estimate_onelevel_with(key, new, &mut RfbmeScratch::new())
    }

    /// [`Rfbme::estimate_onelevel`] reusing caller-owned scratch buffers.
    ///
    /// # Panics
    ///
    /// Panics when the two frames differ in size.
    pub fn estimate_onelevel_with(
        &self,
        key: &GrayImage,
        new: &GrayImage,
        scratch: &mut RfbmeScratch,
    ) -> RfbmeResult {
        assert_eq!(
            (key.height(), key.width()),
            (new.height(), new.width()),
            "frame size mismatch"
        );
        let RfbmeScratch {
            key_sat,
            new_sat,
            offsets,
            row_range,
            col_range,
            new_sums,
            best,
            lb,
            tile_valid,
            exact,
            needed,
            improvable,
            colsum,
            colvalid,
            ..
        } = scratch;
        let (g, mut producer_ops) = prepare_search(
            self.rf, key, new, key_sat, new_sat, row_range, col_range, new_sums,
        );
        let SearchGeometry {
            s,
            h,
            w,
            tiles_y,
            tiles_x,
            n_tiles,
            grid_h,
            grid_w,
            n_rf,
        } = g;

        // Ascending-magnitude visit order, stable within equal magnitude
        // (preserves row-major order there, matching the reference
        // tie-break as described above).
        let axis = self.params.offsets();
        offsets.clear();
        for &dy in &axis {
            for &dx in &axis {
                offsets.push((dy, dx));
            }
        }
        offsets.sort_by_key(|&(dy, dx)| dy * dy + dx * dx);

        let mut consumer_ops: u64 = 0;
        let mut search = SearchStats::default();

        let s2 = (s * s) as u32;
        best.clear();
        best.resize(
            n_rf,
            RfMatch {
                vector: MotionVector::ZERO,
                error: u32::MAX,
                pixels: 0,
            },
        );
        // `lb`/`tile_valid`/`exact` are (re)written before every read at
        // each offset; `needed` must start all-false.
        lb.resize(n_tiles, 0);
        tile_valid.resize(n_tiles, false);
        exact.resize(n_tiles, 0);
        needed.clear();
        needed.resize(n_tiles, false);
        colsum.resize(tiles_x, 0);
        colvalid.resize(tiles_x, true);

        for &(dy, dx) in offsets.iter() {
            // Stage 1: per-tile validity + SAD lower bound (O(1) per tile).
            for ty in 0..tiles_y {
                let ky = (ty * s) as isize + dy;
                let row_ok = ky >= 0 && ky + s as isize <= h as isize;
                for tx in 0..tiles_x {
                    let t = ty * tiles_x + tx;
                    let kx = (tx * s) as isize + dx;
                    if !row_ok || kx < 0 || kx + s as isize > w as isize {
                        tile_valid[t] = false;
                        continue;
                    }
                    tile_valid[t] = true;
                    let key_sum = key_sat.window_sum(ky as usize, kx as usize, s, s);
                    lb[t] = new_sums[t].abs_diff(key_sum);
                }
            }
            consumer_ops += n_tiles as u64;

            // Stage 2: aggregate bounds per receptive field (rolling column
            // reuse, as in the hardware consumer) and collect the fields
            // this offset could still improve.
            improvable.clear();
            let mut any_needed = false;
            for (ay, &(ty0, ty1)) in row_range.iter().enumerate() {
                if ty0 >= ty1 {
                    continue;
                }
                for tx in 0..tiles_x {
                    let mut sum = 0u64;
                    let mut valid = true;
                    for ty in ty0..ty1 {
                        let t = ty * tiles_x + tx;
                        if !tile_valid[t] {
                            valid = false;
                            break;
                        }
                        sum += lb[t];
                    }
                    consumer_ops += (ty1 - ty0) as u64;
                    colsum[tx] = sum;
                    colvalid[tx] = valid;
                }
                for (ax, &(tx0, tx1)) in col_range.iter().enumerate() {
                    if tx0 >= tx1 || colvalid[tx0..tx1].iter().any(|&v| !v) {
                        continue;
                    }
                    let mut lb_sum = 0u64;
                    for &c in &colsum[tx0..tx1] {
                        lb_sum += c;
                    }
                    consumer_ops += (tx1 - tx0) as u64;
                    let idx = ay * grid_w + ax;
                    search.candidates += 1;
                    if lb_sum < best[idx].error as u64 {
                        improvable.push(idx);
                        for ty in ty0..ty1 {
                            for tx in tx0..tx1 {
                                needed[ty * tiles_x + tx] = true;
                            }
                        }
                        any_needed = true;
                    } else {
                        search.rejected_level0 += 1;
                    }
                }
            }
            if !any_needed {
                continue; // diff-tile early exit: no field can improve here
            }

            // Stage 3: SAD refinement, only for tiles a still-improvable
            // field covers.
            for ty in 0..tiles_y {
                for tx in 0..tiles_x {
                    let t = ty * tiles_x + tx;
                    if !needed[t] {
                        continue;
                    }
                    needed[t] = false;
                    let ky = ((ty * s) as isize + dy) as usize;
                    let kx = ((tx * s) as isize + dx) as usize;
                    exact[t] = sad_window(new, key, (ty * s, tx * s), (ky, kx), s, s);
                    producer_ops += s2 as u64;
                }
            }

            // Stage 4: exact aggregation + min-check update (strictly
            // smaller wins; visit order provides the tie-break).
            for &idx in improvable.iter() {
                let (ty0, ty1) = row_range[idx / grid_w.max(1)];
                let (tx0, tx1) = col_range[idx % grid_w.max(1)];
                let mut sum = 0u64;
                for ty in ty0..ty1 {
                    for tx in tx0..tx1 {
                        sum += exact[ty * tiles_x + tx] as u64;
                    }
                }
                let n = ((ty1 - ty0) * (tx1 - tx0)) as u64;
                consumer_ops += n;
                search.refined += 1;
                let err = sum.min(u32::MAX as u64 - 1) as u32;
                let b = &mut best[idx];
                if err < b.error {
                    *b = RfMatch {
                        vector: MotionVector::new(dy as f32, dx as f32),
                        error: err,
                        pixels: n as u32 * s2,
                    };
                }
            }
        }

        Self::result_from_matches(
            self.rf,
            best,
            grid_h,
            grid_w,
            producer_ops,
            consumer_ops,
            search,
        )
    }

    /// Finalises per-field matches into an [`RfbmeResult`], mapping fields
    /// that never saw a valid offset to zero motion / zero error.
    fn result_from_matches(
        rf: RfGeometry,
        matches: &[RfMatch],
        grid_h: usize,
        grid_w: usize,
        producer_ops: u64,
        consumer_ops: u64,
        search: SearchStats,
    ) -> RfbmeResult {
        let mut field = VectorField::zeros(grid_h, grid_w, rf.stride);
        let mut errors = Vec::with_capacity(matches.len());
        let mut total: u64 = 0;
        let mut total_pixels: u64 = 0;
        for (i, m) in matches.iter().enumerate() {
            let m = if m.error == u32::MAX {
                RfMatch {
                    vector: MotionVector::ZERO,
                    error: 0,
                    pixels: 0,
                }
            } else {
                *m
            };
            field.set(i / grid_w.max(1), i % grid_w.max(1), m.vector);
            errors.push(m.error);
            total += m.error as u64;
            total_pixels += m.pixels as u64;
        }
        RfbmeResult {
            field,
            errors,
            total_error: total,
            total_pixels,
            producer_ops,
            consumer_ops,
            search,
        }
    }
}

impl MotionEstimator for Rfbme {
    fn name(&self) -> &str {
        "RFBME"
    }

    fn estimate(&self, key: &GrayImage, new: &GrayImage) -> MotionResult {
        let r = Rfbme::estimate(self, key, new);
        MotionResult {
            ops: r.ops(),
            total_error: Some(r.total_error),
            field: r.field,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(h: usize, w: usize) -> GrayImage {
        GrayImage::from_fn(h, w, |y, x| (((y * 31 + x * 17) ^ (y * x / 3)) % 251) as u8)
    }

    fn rf_844() -> RfGeometry {
        RfGeometry {
            size: 8,
            stride: 4,
            padding: 0,
        }
    }

    #[test]
    fn search_offsets_respect_step() {
        let p = SearchParams { radius: 4, step: 2 };
        assert_eq!(p.offsets(), vec![-4, -2, 0, 2, 4]);
        assert_eq!(p.window_len(), 25);
    }

    #[test]
    fn ops_bound_dominates_measured_ops() {
        // The static bound must hold for any frame contents: frames where
        // pruning is perfect (identical), typical (translation), and poor
        // (uncorrelated noise) — across geometries with and without padding.
        let geoms = [
            (rf_844(), SearchParams { radius: 4, step: 1 }),
            (
                RfGeometry {
                    size: 6,
                    stride: 3,
                    padding: 2,
                },
                SearchParams { radius: 3, step: 2 },
            ),
        ];
        let key = textured(40, 40);
        let shifted = key.translate(2, 3, 0);
        let noise = GrayImage::from_fn(40, 40, |y, x| ((y * 97 + x * 41 + 13) % 256) as u8);
        for (rf, params) in geoms {
            let rfbme = Rfbme::new(rf, params);
            let bound = rfbme.ops_bound(40, 40);
            for new in [&key, &shifted, &noise] {
                let r = rfbme.estimate(&key, new);
                assert!(
                    r.ops() <= bound,
                    "measured {} > bound {bound} for rf {rf:?} params {params:?}",
                    r.ops()
                );
            }
        }
    }

    #[test]
    fn scratch_bytes_bound_dominates_warmed_heap_bytes() {
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 4, step: 1 });
        let key = textured(48, 48);
        let new = key.translate(2, 1, 0);
        let mut scratch = RfbmeScratch::new();
        for _ in 0..3 {
            let _ = rfbme.estimate_with(&key, &new, &mut scratch);
        }
        let used = scratch.heap_bytes();
        let bound = rfbme.scratch_bytes_bound(48, 48);
        assert!(used <= bound, "warmed scratch {used} B > bound {bound} B");
        // Tightness: almost every buffer is sized exactly by the geometry,
        // so the bound should be close — a big gap means the model and the
        // implementation have drifted apart.
        assert!(
            bound <= used * 2,
            "bound {bound} B is >2x warmed scratch {used} B"
        );
    }

    #[test]
    fn warmed_estimate_reuses_scratch_without_growth() {
        // The serving engine's alloc audit relies on this: once warmed for
        // a frame size, further estimates leave the scratch heap unchanged.
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 4, step: 1 });
        let key = textured(48, 48);
        let mut scratch = RfbmeScratch::new();
        let _ = rfbme.estimate_with(&key, &key.translate(1, 0, 0), &mut scratch);
        let warmed = scratch.heap_bytes();
        for dx in 0..4 {
            let _ = rfbme.estimate_with(&key, &key.translate(0, dx, 0), &mut scratch);
            assert_eq!(scratch.heap_bytes(), warmed, "scratch grew at dx={dx}");
        }
    }

    #[test]
    fn identical_frames_give_zero_vectors_and_zero_error() {
        let img = textured(32, 32);
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 4, step: 1 });
        let r = rfbme.estimate(&img, &img);
        assert_eq!(r.total_error, 0);
        assert!(r.field.iter().all(|v| *v == MotionVector::ZERO));
    }

    #[test]
    fn global_translation_is_recovered() {
        let key = textured(40, 40);
        // New frame: content moved right by 3 pixels → best match for a new
        // block at p is at p + v with v = (0, -3).
        let new = key.translate(0, 3, 0);
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 4, step: 1 });
        let r = rfbme.estimate(&key, &new);
        let mut hits = 0;
        let mut total = 0;
        for gy in 0..r.field.grid_h() {
            for gx in 2..r.field.grid_w() {
                // skip leftmost columns polluted by the translation fill
                total += 1;
                if r.field.get(gy, gx) == MotionVector::new(0.0, -3.0) {
                    hits += 1;
                }
            }
        }
        assert!(hits * 10 >= total * 8, "only {hits}/{total} fields correct");
    }

    #[test]
    fn vertical_translation_sign() {
        let key = textured(40, 40);
        let new = key.translate(2, 0, 0); // content moved down
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 4, step: 1 });
        let r = rfbme.estimate(&key, &new);
        let center = r.field.get(r.field.grid_h() / 2, r.field.grid_w() / 2);
        assert_eq!(center, MotionVector::new(-2.0, 0.0));
    }

    #[test]
    fn consumer_matches_brute_force_sums() {
        // The rolling-window consumer must agree with a brute-force
        // recomputation of every receptive-field difference.
        let key = textured(32, 32);
        let new = key.translate(1, 2, 7);
        let rf = rf_844();
        let params = SearchParams { radius: 2, step: 1 };
        let producer = DiffTileProducer {
            tile: rf.stride,
            params,
        };
        let tiles = producer.produce(&key, &new);
        let grid = rf.grid_len(32);
        let consumer = DiffTileConsumer { rf };
        let (matches, _) = consumer.consume(&tiles, grid, grid);
        // Brute force.
        for ay in 0..grid {
            for ax in 0..grid {
                let (ty0, ty1) = consumer.tile_range(ay, tiles.tiles_y);
                let (tx0, tx1) = consumer.tile_range(ax, tiles.tiles_x);
                let mut best_err = u32::MAX;
                for (oi, _) in tiles.offsets.iter().enumerate() {
                    let mut sum: u64 = 0;
                    let mut valid = true;
                    for ty in ty0..ty1 {
                        for tx in tx0..tx1 {
                            let d = tiles.diffs[oi][ty * tiles.tiles_x + tx];
                            if d == INVALID {
                                valid = false;
                            } else {
                                sum += d as u64;
                            }
                        }
                    }
                    if valid {
                        best_err = best_err.min(sum as u32);
                    }
                }
                // Never-valid fields keep the sentinel here; the result
                // finaliser maps them to zero.
                let got = matches[ay * grid + ax].error;
                assert_eq!(got, best_err, "rf ({ay},{ax})");
            }
        }
    }

    #[test]
    fn padding_shrinks_valid_tile_range_at_edges() {
        let rf = RfGeometry {
            size: 6,
            stride: 2,
            padding: 2,
        };
        let consumer = DiffTileConsumer { rf };
        // Fig 7a: the first receptive field starts at -2; only tiles 0 and 1
        // (pixels 0..4) are fully inside it.
        assert_eq!(consumer.tile_range(0, 10), (0, 2));
        // Fig 7b: second receptive field covers pixels 0..6 → tiles 0..3.
        assert_eq!(consumer.tile_range(1, 10), (0, 3));
    }

    #[test]
    fn producer_skips_out_of_bounds_windows() {
        let img = textured(16, 16);
        let producer = DiffTileProducer {
            tile: 4,
            params: SearchParams { radius: 8, step: 4 },
        };
        let tiles = producer.produce(&img, &img);
        // Corner tile (0,0) cannot match at offset (-8,-8).
        let oi = tiles
            .offsets
            .iter()
            .position(|&o| o == (-8, -8))
            .expect("offset present");
        assert_eq!(tiles.diffs[oi][0], INVALID);
        // But it can match at (0, 0).
        let oi0 = tiles.offsets.iter().position(|&o| o == (0, 0)).unwrap();
        assert_eq!(tiles.diffs[oi0][0], 0);
    }

    #[test]
    fn ops_are_far_below_unoptimized_for_large_strides() {
        // §IV-A: reuse gains scale with stride². With rf 16/8, the optimized
        // op count must be well under the unoptimized rf_size² per offset.
        let key = textured(64, 64);
        let new = key.translate(1, 1, 0);
        let rf = RfGeometry {
            size: 16,
            stride: 8,
            padding: 0,
        };
        let rfbme = Rfbme::new(rf, SearchParams { radius: 8, step: 2 });
        let r = rfbme.estimate(&key, &new);
        let grid = rf.grid_len(64);
        let window = SearchParams { radius: 8, step: 2 }.window_len() as u64;
        let unoptimized = (grid * grid) as u64 * window * (rf.size * rf.size) as u64;
        assert!(
            r.ops() * 2 < unoptimized,
            "ops {} not far below unoptimized {unoptimized}",
            r.ops()
        );
    }

    #[test]
    fn occlusion_raises_block_error() {
        let key = textured(32, 32);
        let mut new = key.clone();
        // Paint a block of "new pixels" (de-occlusion).
        for y in 8..20 {
            for x in 8..20 {
                new.set(y, x, 255);
            }
        }
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 4, step: 1 });
        let clean = rfbme.estimate(&key, &key).total_error;
        let occluded = rfbme.estimate(&key, &new).total_error;
        assert!(occluded > clean + 1000, "occluded {occluded} clean {clean}");
    }

    #[test]
    fn grid_len_matches_conv_arithmetic() {
        let rf = RfGeometry {
            size: 8,
            stride: 4,
            padding: 2,
        };
        // (32 + 4 - 8)/4 + 1 = 8
        assert_eq!(rf.grid_len(32), 8);
        assert_eq!(rf_844().grid_len(32), 7);
    }

    fn assert_same_result(fast: &RfbmeResult, reference: &RfbmeResult, label: &str) {
        assert_eq!(fast.errors, reference.errors, "{label}: errors differ");
        assert_eq!(
            fast.total_error, reference.total_error,
            "{label}: total_error differs"
        );
        assert_eq!(
            fast.total_pixels, reference.total_pixels,
            "{label}: total_pixels differs"
        );
        assert_eq!(fast.field, reference.field, "{label}: vector fields differ");
    }

    #[test]
    fn fast_path_matches_reference_on_translations() {
        let key = textured(48, 48);
        let rfs = [
            rf_844(),
            RfGeometry {
                size: 16,
                stride: 8,
                padding: 0,
            },
            RfGeometry {
                size: 27,
                stride: 8,
                padding: 10,
            },
        ];
        for rf in rfs {
            let rfbme = Rfbme::new(rf, SearchParams { radius: 6, step: 1 });
            for (dy, dx) in [(0isize, 0isize), (0, 1), (2, -3), (-5, 4), (8, 8)] {
                let new = key.translate(dy, dx, 31);
                let fast = rfbme.estimate(&key, &new);
                let reference = rfbme.estimate_reference(&key, &new);
                assert_same_result(&fast, &reference, &format!("rf {rf:?} shift ({dy},{dx})"));
            }
        }
    }

    #[test]
    fn fast_path_matches_reference_on_occlusion_and_noise() {
        let key = textured(40, 40);
        let mut new = key.translate(1, 1, 0);
        for y in 10..22 {
            for x in 14..26 {
                new.set(y, x, 240);
            }
        }
        for step in [1usize, 2, 3] {
            let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 5, step });
            let fast = rfbme.estimate(&key, &new);
            let reference = rfbme.estimate_reference(&key, &new);
            assert_same_result(&fast, &reference, &format!("step {step}"));
        }
    }

    #[test]
    fn scratch_reuse_across_sizes_and_geometries_is_identical() {
        // One scratch driven across shrinking/growing frames and changing
        // geometries must reproduce fresh-scratch results exactly — the
        // worker thread and every session reuse one scratch for life.
        let mut scratch = RfbmeScratch::new();
        let cases = [
            (48usize, rf_844(), 4usize, (2isize, -3isize)),
            (
                32,
                RfGeometry {
                    size: 16,
                    stride: 8,
                    padding: 0,
                },
                6,
                (0, 1),
            ),
            (48, rf_844(), 3, (-5, 4)),
            (
                64,
                RfGeometry {
                    size: 27,
                    stride: 8,
                    padding: 10,
                },
                5,
                (8, 8),
            ),
        ];
        for (dim, rf, radius, (dy, dx)) in cases {
            let key = textured(dim, dim);
            let new = key.translate(dy, dx, 17);
            let rfbme = Rfbme::new(rf, SearchParams { radius, step: 1 });
            let reused = rfbme.estimate_with(&key, &new, &mut scratch);
            let fresh = rfbme.estimate(&key, &new);
            assert_same_result(&reused, &fresh, &format!("dim {dim} rf {rf:?}"));
            assert_eq!(reused.producer_ops, fresh.producer_ops, "producer ops");
            assert_eq!(reused.consumer_ops, fresh.consumer_ops, "consumer ops");
        }
    }

    #[test]
    fn fast_path_early_exit_skips_refinement_on_static_scenes() {
        // An identical frame pair: the zero offset matches exactly, so every
        // other candidate's SAD refinement must be pruned and the producer
        // op count collapses toward a single pass (plus the O(pixels)
        // window-sum precomputation).
        let img = textured(64, 64);
        let rf = RfGeometry {
            size: 16,
            stride: 8,
            padding: 0,
        };
        let rfbme = Rfbme::new(rf, SearchParams { radius: 8, step: 1 });
        let fast = rfbme.estimate(&img, &img);
        let reference = rfbme.estimate_reference(&img, &img);
        assert_same_result(&fast, &reference, "static scene");
        assert!(
            fast.producer_ops * 4 < reference.producer_ops,
            "early exit should skip most SAD work: fast {} vs reference {}",
            fast.producer_ops,
            reference.producer_ops
        );
    }

    #[test]
    fn onelevel_and_twolevel_agree_with_reference() {
        // Three independent implementations of the same search must agree
        // exactly — vectors included (the tie-break contract).
        let key = textured(48, 48);
        for (dy, dx) in [(0isize, 0isize), (1, 1), (3, -2), (-6, 5), (8, 8)] {
            let new = key.translate(dy, dx, 19);
            for rf in [
                rf_844(),
                RfGeometry {
                    size: 27,
                    stride: 8,
                    padding: 10,
                },
            ] {
                let rfbme = Rfbme::new(rf, SearchParams { radius: 6, step: 1 });
                let two = rfbme.estimate(&key, &new);
                let one = rfbme.estimate_onelevel(&key, &new);
                let reference = rfbme.estimate_reference(&key, &new);
                assert_same_result(&two, &reference, &format!("two-level ({dy},{dx})"));
                assert_same_result(&one, &reference, &format!("one-level ({dy},{dx})"));
            }
        }
    }

    #[test]
    fn search_stats_account_for_every_candidate() {
        let key = textured(48, 48);
        let new = key.translate(2, -3, 41);
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 5, step: 1 });
        let r = rfbme.estimate(&key, &new);
        let s = r.search;
        assert!(s.candidates > 0);
        assert_eq!(
            s.candidates,
            s.rejected_level0 + s.rejected_level1 + s.refined,
            "counters must partition the candidates: {s:?}"
        );
        // The one-level baseline refines strictly more (level 1 only ever
        // removes refinements) and never rejects at level 1.
        let one = rfbme.estimate_onelevel(&key, &new).search;
        assert_eq!(one.rejected_level1, 0);
        assert_eq!(one.candidates, s.candidates, "same valid pairs");
        assert!(
            s.refined <= one.refined,
            "two-level refined {} > one-level {}",
            s.refined,
            one.refined
        );
        // The reference prunes nothing and reports nothing.
        let reference = rfbme.estimate_reference(&key, &new).search;
        assert_eq!(reference, SearchStats::default());
    }

    #[test]
    fn two_level_pruning_rejects_most_candidates_on_small_motion() {
        // The steady-state serving case: small inter-frame motion. After
        // the best-first order lands on the true offset, bounds must reject
        // the overwhelming majority of the remaining candidates before SAD.
        let key = textured(48, 48);
        let new = key.translate(1, 1, 7);
        let rfbme = Rfbme::new(
            RfGeometry {
                size: 16,
                stride: 8,
                padding: 0,
            },
            SearchParams { radius: 8, step: 1 },
        );
        let s = rfbme.estimate(&key, &new).search;
        assert!(
            s.refined * 5 < s.candidates,
            "expected >80% pruning, got {} refined of {}",
            s.refined,
            s.candidates
        );
        // And level 1 must actually contribute beyond level 0.
        assert!(s.rejected_level1 > 0, "level-1 bound never fired: {s:?}");
    }

    #[test]
    fn estimator_trait_reports_error() {
        let img = textured(24, 24);
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 2, step: 1 });
        let res = MotionEstimator::estimate(&rfbme, &img, &img);
        assert_eq!(res.total_error, Some(0));
        assert_eq!(MotionEstimator::name(&rfbme), "RFBME");
        assert!(res.ops > 0);
    }
}
