//! Receptive field block motion estimation (RFBME).
//!
//! RFBME (§III-A of the paper) estimates one motion vector per *receptive
//! field* of the AMC target layer — exactly the granularity activation
//! warping can use. It exploits two properties of receptive fields:
//!
//! 1. Their size is typically much larger than their stride, so adjacent
//!    fields overlap heavily and **tile-level differences can be reused**.
//! 2. Padding makes edge receptive fields extend out of bounds, where
//!    comparisons are unnecessary.
//!
//! The implementation mirrors the hardware microarchitecture:
//! [`DiffTileProducer`] performs a subsampled exhaustive search per
//! `stride × stride` tile (Fig 6's "diff tile producer"), and
//! [`DiffTileConsumer`] coalesces tile differences into receptive-field
//! differences with rolling column add/subtract reuse and a min-check
//! register per field (Fig 8). Both stages count their arithmetic
//! operations, which backs the §IV-A first-order comparison against the CNN
//! prefix cost.

use crate::field::{MotionVector, VectorField};
use crate::{MotionEstimator, MotionResult};
use eva2_tensor::GrayImage;
use serde::{Deserialize, Serialize};

/// Receptive-field geometry as seen from the input image.
///
/// Mirrors `eva2_cnn::ReceptiveField` (duplicated here so the motion crate
/// depends only on the tensor substrate; `eva2-core` converts between the
/// two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RfGeometry {
    /// Receptive-field side length in pixels.
    pub size: usize,
    /// Pixel distance between adjacent receptive fields.
    pub stride: usize,
    /// Offset of the first receptive field's origin above/left of the image
    /// origin.
    pub padding: usize,
}

impl RfGeometry {
    /// Number of receptive fields along an image dimension of `n` pixels
    /// (the spatial extent of the target activation).
    pub fn grid_len(&self, n: usize) -> usize {
        let padded = n + 2 * self.padding;
        if padded < self.size {
            0
        } else {
            (padded - self.size) / self.stride + 1
        }
    }
}

/// Block-matching search window parameters.
///
/// The producer "considers all locations in the key frame that are aligned
/// with the search stride and are within the search radius" (§III-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SearchParams {
    /// Maximum displacement searched in each direction, in pixels.
    pub radius: usize,
    /// Search stride: only offsets that are multiples of `step` are
    /// examined. 1 = full search.
    pub step: usize,
}

impl SearchParams {
    /// The search offsets along one axis: `-radius..=radius` step `step`.
    pub fn offsets(&self) -> Vec<isize> {
        let step = self.step.max(1) as isize;
        let r = self.radius as isize;
        let mut v = Vec::new();
        let mut o = -r;
        while o <= r {
            v.push(o);
            o += step;
        }
        v
    }

    /// Number of candidate offsets in the 2-D search window.
    pub fn window_len(&self) -> usize {
        let n = self.offsets().len();
        n * n
    }
}

/// Marker for a tile difference that could not be computed because the
/// candidate window leaves the key frame.
const INVALID: u32 = u32::MAX;

/// Tile-level absolute differences for every search offset.
///
/// `diffs[o][ty * tiles_x + tx]` is the sum of absolute differences between
/// the new frame's tile `(ty, tx)` and the key frame at that tile's origin
/// displaced by `offsets[o]`, or [`INVALID`] when that window is out of
/// bounds.
#[derive(Debug, Clone)]
pub struct TileDiffs {
    /// Tile grid height.
    pub tiles_y: usize,
    /// Tile grid width.
    pub tiles_x: usize,
    /// The (dy, dx) search offsets, row-major over the search window.
    pub offsets: Vec<(isize, isize)>,
    /// Per-offset tile difference planes.
    pub diffs: Vec<Vec<u32>>,
    /// Adds performed while producing the differences.
    pub ops: u64,
}

/// The diff tile producer: subsampled exhaustive search per tile (§III-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffTileProducer {
    /// Tile side length — equal to the receptive-field stride.
    pub tile: usize,
    /// Search window parameters.
    pub params: SearchParams,
}

impl DiffTileProducer {
    /// Computes tile differences between `new` (current frame tiles) and
    /// `key` (search windows).
    ///
    /// # Panics
    ///
    /// Panics when the two frames differ in size.
    pub fn produce(&self, key: &GrayImage, new: &GrayImage) -> TileDiffs {
        assert_eq!(
            (key.height(), key.width()),
            (new.height(), new.width()),
            "frame size mismatch"
        );
        let s = self.tile.max(1);
        let tiles_y = new.height() / s;
        let tiles_x = new.width() / s;
        let axis = self.params.offsets();
        let mut offsets = Vec::with_capacity(axis.len() * axis.len());
        for &dy in &axis {
            for &dx in &axis {
                offsets.push((dy, dx));
            }
        }
        let mut diffs = vec![vec![INVALID; tiles_y * tiles_x]; offsets.len()];
        let mut ops: u64 = 0;
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                let oy = (ty * s) as isize;
                let ox = (tx * s) as isize;
                for (oi, &(dy, dx)) in offsets.iter().enumerate() {
                    let ky = oy + dy;
                    let kx = ox + dx;
                    // Only fully in-bounds key windows are valid candidates.
                    if ky < 0
                        || kx < 0
                        || ky + s as isize > key.height() as isize
                        || kx + s as isize > key.width() as isize
                    {
                        continue;
                    }
                    let mut sad: u32 = 0;
                    for py in 0..s {
                        for px in 0..s {
                            let a = new.get(oy as usize + py, ox as usize + px) as i32;
                            let b = key.get((ky as usize) + py, (kx as usize) + px) as i32;
                            sad += (a - b).unsigned_abs();
                        }
                    }
                    ops += (s * s) as u64;
                    diffs[oi][ty * tiles_x + tx] = sad;
                }
            }
        }
        TileDiffs {
            tiles_y,
            tiles_x,
            offsets,
            diffs,
            ops,
        }
    }
}

/// Per-receptive-field output of the consumer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfMatch {
    /// Best-match displacement (pixels, gather convention).
    pub vector: MotionVector,
    /// Minimum receptive-field difference (the block error fed to the
    /// key-frame choice module).
    pub error: u32,
    /// Number of pixels that contributed to `error` (for normalisation).
    pub pixels: u32,
}

/// The diff tile consumer: aggregates tile differences into receptive-field
/// differences with rolling reuse, and finds each field's best offset
/// (§III-A2, Fig 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffTileConsumer {
    /// Receptive-field geometry.
    pub rf: RfGeometry,
}

impl DiffTileConsumer {
    /// Tile index range `[t0, t1)` covered by the receptive field starting
    /// at activation coordinate `a` along one axis, restricted to whole
    /// tiles inside the frame ("RFBME ignores partial tiles", §III-A).
    fn tile_range(&self, a: usize, tiles: usize) -> (usize, usize) {
        let s = self.rf.stride as isize;
        let origin = a as isize * s - self.rf.padding as isize;
        let end = origin + self.rf.size as isize;
        // First whole tile at or after origin; last whole tile ending at or
        // before end.
        let t0 = origin.div_euclid(s) + if origin.rem_euclid(s) != 0 { 1 } else { 0 };
        let t1 = end.div_euclid(s);
        let t0 = t0.max(0) as usize;
        let t1 = t1.max(0) as usize;
        (t0.min(tiles), t1.min(tiles))
    }

    /// Consumes tile differences, producing one [`RfMatch`] per receptive
    /// field plus the consumer's operation count.
    pub fn consume(&self, tiles: &TileDiffs, grid_h: usize, grid_w: usize) -> (Vec<RfMatch>, u64) {
        let s2 = (self.rf.stride * self.rf.stride) as u32;
        let mut best: Vec<RfMatch> = vec![
            RfMatch {
                vector: MotionVector::ZERO,
                error: u32::MAX,
                pixels: 0,
            };
            grid_h * grid_w
        ];
        let mut ops: u64 = 0;
        let mut colsum = vec![0u64; tiles.tiles_x];
        let mut colvalid = vec![true; tiles.tiles_x];
        for (oi, plane) in tiles.diffs.iter().enumerate() {
            let (ody, odx) = tiles.offsets[oi];
            for ay in 0..grid_h {
                let (ty0, ty1) = self.tile_range(ay, tiles.tiles_y);
                if ty0 >= ty1 {
                    continue;
                }
                // Column sums over the tile rows of this receptive-field row
                // (the "previous block sum memory" granularity in hardware).
                for tx in 0..tiles.tiles_x {
                    let mut sum = 0u64;
                    let mut valid = true;
                    for ty in ty0..ty1 {
                        let d = plane[ty * tiles.tiles_x + tx];
                        if d == INVALID {
                            valid = false;
                            break;
                        }
                        sum += d as u64;
                    }
                    ops += (ty1 - ty0) as u64;
                    colsum[tx] = sum;
                    colvalid[tx] = valid;
                }
                // Slide the window across activation columns with rolling
                // add/subtract.
                let mut window: Option<(u64, usize, usize)> = None; // (sum, tx0, tx1)
                for ax in 0..grid_w {
                    let (tx0, tx1) = self.tile_range(ax, tiles.tiles_x);
                    if tx0 >= tx1 {
                        window = None;
                        continue;
                    }
                    let sum = match window {
                        // Rolling update only valid when the window width is
                        // unchanged and slid by exactly the reuse pattern.
                        Some((prev, p0, p1)) if tx1 - tx0 == p1 - p0 && tx0 >= p0 && tx0 <= p1 => {
                            let mut sum = prev;
                            for &col in &colsum[p0..tx0] {
                                sum -= col;
                                ops += 1;
                            }
                            for &col in &colsum[p1..tx1] {
                                sum += col;
                                ops += 1;
                            }
                            sum
                        }
                        _ => {
                            let mut sum = 0u64;
                            for &col in &colsum[tx0..tx1] {
                                sum += col;
                                ops += 1;
                            }
                            sum
                        }
                    };
                    window = Some((sum, tx0, tx1));
                    // Any invalid column invalidates this offset for the RF.
                    if colvalid[tx0..tx1].iter().any(|&v| !v) {
                        continue;
                    }
                    let n_tiles = ((ty1 - ty0) * (tx1 - tx0)) as u32;
                    let err = sum.min(u32::MAX as u64 - 1) as u32;
                    let b = &mut best[ay * grid_w + ax];
                    // Min-check register: strictly-smaller error wins; ties
                    // prefer the smaller displacement (stability).
                    let cand_mag = (ody * ody + odx * odx) as f32;
                    let best_mag = b.vector.dy * b.vector.dy + b.vector.dx * b.vector.dx;
                    if err < b.error || (err == b.error && cand_mag < best_mag) {
                        *b = RfMatch {
                            vector: MotionVector::new(ody as f32, odx as f32),
                            error: err,
                            pixels: n_tiles * s2,
                        };
                    }
                }
            }
        }
        // Receptive fields that never saw a valid offset report zero motion
        // and zero error (no evidence either way).
        for b in &mut best {
            if b.error == u32::MAX {
                *b = RfMatch {
                    vector: MotionVector::ZERO,
                    error: 0,
                    pixels: 0,
                };
            }
        }
        (best, ops)
    }
}

/// Full RFBME result.
#[derive(Debug, Clone)]
pub struct RfbmeResult {
    /// Motion vector per receptive field (pixel units, cell = RF stride).
    pub field: VectorField,
    /// Per-field minimum block error.
    pub errors: Vec<u32>,
    /// Sum of per-field minimum errors — the pixel-compensation-error
    /// signal for adaptive key-frame selection.
    pub total_error: u64,
    /// Total pixels compared across all fields' best matches (receptive
    /// fields overlap, so this exceeds the frame size). Normalising
    /// `total_error` by this gives a resolution-independent per-pixel
    /// error.
    pub total_pixels: u64,
    /// Producer adds.
    pub producer_ops: u64,
    /// Consumer adds/subtracts.
    pub consumer_ops: u64,
}

impl RfbmeResult {
    /// Total arithmetic operations.
    pub fn ops(&self) -> u64 {
        self.producer_ops + self.consumer_ops
    }
}

/// The complete RFBME estimator: producer + consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rfbme {
    rf: RfGeometry,
    params: SearchParams,
}

impl Rfbme {
    /// Creates an estimator for the given receptive-field geometry and
    /// search window.
    pub fn new(rf: RfGeometry, params: SearchParams) -> Self {
        Self { rf, params }
    }

    /// The receptive-field geometry being matched.
    pub fn rf(&self) -> RfGeometry {
        self.rf
    }

    /// Runs RFBME from `key` to `new`.
    pub fn estimate(&self, key: &GrayImage, new: &GrayImage) -> RfbmeResult {
        let producer = DiffTileProducer {
            tile: self.rf.stride,
            params: self.params,
        };
        let tiles = producer.produce(key, new);
        let grid_h = self.rf.grid_len(new.height());
        let grid_w = self.rf.grid_len(new.width());
        let consumer = DiffTileConsumer { rf: self.rf };
        let (matches, consumer_ops) = consumer.consume(&tiles, grid_h, grid_w);
        let mut field = VectorField::zeros(grid_h, grid_w, self.rf.stride);
        let mut errors = Vec::with_capacity(matches.len());
        let mut total: u64 = 0;
        let mut total_pixels: u64 = 0;
        for (i, m) in matches.iter().enumerate() {
            field.set(i / grid_w.max(1), i % grid_w.max(1), m.vector);
            errors.push(m.error);
            total += m.error as u64;
            total_pixels += m.pixels as u64;
        }
        RfbmeResult {
            field,
            errors,
            total_error: total,
            total_pixels,
            producer_ops: tiles.ops,
            consumer_ops,
        }
    }
}

impl MotionEstimator for Rfbme {
    fn name(&self) -> &str {
        "RFBME"
    }

    fn estimate(&self, key: &GrayImage, new: &GrayImage) -> MotionResult {
        let r = Rfbme::estimate(self, key, new);
        MotionResult {
            ops: r.ops(),
            total_error: Some(r.total_error),
            field: r.field,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(h: usize, w: usize) -> GrayImage {
        GrayImage::from_fn(h, w, |y, x| (((y * 31 + x * 17) ^ (y * x / 3)) % 251) as u8)
    }

    fn rf_844() -> RfGeometry {
        RfGeometry {
            size: 8,
            stride: 4,
            padding: 0,
        }
    }

    #[test]
    fn search_offsets_respect_step() {
        let p = SearchParams { radius: 4, step: 2 };
        assert_eq!(p.offsets(), vec![-4, -2, 0, 2, 4]);
        assert_eq!(p.window_len(), 25);
    }

    #[test]
    fn identical_frames_give_zero_vectors_and_zero_error() {
        let img = textured(32, 32);
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 4, step: 1 });
        let r = rfbme.estimate(&img, &img);
        assert_eq!(r.total_error, 0);
        assert!(r.field.iter().all(|v| *v == MotionVector::ZERO));
    }

    #[test]
    fn global_translation_is_recovered() {
        let key = textured(40, 40);
        // New frame: content moved right by 3 pixels → best match for a new
        // block at p is at p + v with v = (0, -3).
        let new = key.translate(0, 3, 0);
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 4, step: 1 });
        let r = rfbme.estimate(&key, &new);
        let mut hits = 0;
        let mut total = 0;
        for gy in 0..r.field.grid_h() {
            for gx in 2..r.field.grid_w() {
                // skip leftmost columns polluted by the translation fill
                total += 1;
                if r.field.get(gy, gx) == MotionVector::new(0.0, -3.0) {
                    hits += 1;
                }
            }
        }
        assert!(hits * 10 >= total * 8, "only {hits}/{total} fields correct");
    }

    #[test]
    fn vertical_translation_sign() {
        let key = textured(40, 40);
        let new = key.translate(2, 0, 0); // content moved down
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 4, step: 1 });
        let r = rfbme.estimate(&key, &new);
        let center = r.field.get(r.field.grid_h() / 2, r.field.grid_w() / 2);
        assert_eq!(center, MotionVector::new(-2.0, 0.0));
    }

    #[test]
    fn consumer_matches_brute_force_sums() {
        // The rolling-window consumer must agree with a brute-force
        // recomputation of every receptive-field difference.
        let key = textured(32, 32);
        let new = key.translate(1, 2, 7);
        let rf = rf_844();
        let params = SearchParams { radius: 2, step: 1 };
        let producer = DiffTileProducer {
            tile: rf.stride,
            params,
        };
        let tiles = producer.produce(&key, &new);
        let grid = rf.grid_len(32);
        let consumer = DiffTileConsumer { rf };
        let (matches, _) = consumer.consume(&tiles, grid, grid);
        // Brute force.
        for ay in 0..grid {
            for ax in 0..grid {
                let (ty0, ty1) = consumer.tile_range(ay, tiles.tiles_y);
                let (tx0, tx1) = consumer.tile_range(ax, tiles.tiles_x);
                let mut best_err = u32::MAX;
                for (oi, _) in tiles.offsets.iter().enumerate() {
                    let mut sum: u64 = 0;
                    let mut valid = true;
                    for ty in ty0..ty1 {
                        for tx in tx0..tx1 {
                            let d = tiles.diffs[oi][ty * tiles.tiles_x + tx];
                            if d == INVALID {
                                valid = false;
                            } else {
                                sum += d as u64;
                            }
                        }
                    }
                    if valid {
                        best_err = best_err.min(sum as u32);
                    }
                }
                let got = matches[ay * grid + ax].error;
                if best_err == u32::MAX {
                    assert_eq!(got, 0);
                } else {
                    assert_eq!(got, best_err, "rf ({ay},{ax})");
                }
            }
        }
    }

    #[test]
    fn padding_shrinks_valid_tile_range_at_edges() {
        let rf = RfGeometry {
            size: 6,
            stride: 2,
            padding: 2,
        };
        let consumer = DiffTileConsumer { rf };
        // Fig 7a: the first receptive field starts at -2; only tiles 0 and 1
        // (pixels 0..4) are fully inside it.
        assert_eq!(consumer.tile_range(0, 10), (0, 2));
        // Fig 7b: second receptive field covers pixels 0..6 → tiles 0..3.
        assert_eq!(consumer.tile_range(1, 10), (0, 3));
    }

    #[test]
    fn producer_skips_out_of_bounds_windows() {
        let img = textured(16, 16);
        let producer = DiffTileProducer {
            tile: 4,
            params: SearchParams { radius: 8, step: 4 },
        };
        let tiles = producer.produce(&img, &img);
        // Corner tile (0,0) cannot match at offset (-8,-8).
        let oi = tiles
            .offsets
            .iter()
            .position(|&o| o == (-8, -8))
            .expect("offset present");
        assert_eq!(tiles.diffs[oi][0], INVALID);
        // But it can match at (0, 0).
        let oi0 = tiles.offsets.iter().position(|&o| o == (0, 0)).unwrap();
        assert_eq!(tiles.diffs[oi0][0], 0);
    }

    #[test]
    fn ops_are_far_below_unoptimized_for_large_strides() {
        // §IV-A: reuse gains scale with stride². With rf 16/8, the optimized
        // op count must be well under the unoptimized rf_size² per offset.
        let key = textured(64, 64);
        let new = key.translate(1, 1, 0);
        let rf = RfGeometry {
            size: 16,
            stride: 8,
            padding: 0,
        };
        let rfbme = Rfbme::new(rf, SearchParams { radius: 8, step: 2 });
        let r = rfbme.estimate(&key, &new);
        let grid = rf.grid_len(64);
        let window = SearchParams { radius: 8, step: 2 }.window_len() as u64;
        let unoptimized = (grid * grid) as u64 * window * (rf.size * rf.size) as u64;
        assert!(
            r.ops() * 2 < unoptimized,
            "ops {} not far below unoptimized {unoptimized}",
            r.ops()
        );
    }

    #[test]
    fn occlusion_raises_block_error() {
        let key = textured(32, 32);
        let mut new = key.clone();
        // Paint a block of "new pixels" (de-occlusion).
        for y in 8..20 {
            for x in 8..20 {
                new.set(y, x, 255);
            }
        }
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 4, step: 1 });
        let clean = rfbme.estimate(&key, &key).total_error;
        let occluded = rfbme.estimate(&key, &new).total_error;
        assert!(occluded > clean + 1000, "occluded {occluded} clean {clean}");
    }

    #[test]
    fn grid_len_matches_conv_arithmetic() {
        let rf = RfGeometry {
            size: 8,
            stride: 4,
            padding: 2,
        };
        // (32 + 4 - 8)/4 + 1 = 8
        assert_eq!(rf.grid_len(32), 8);
        assert_eq!(rf_844().grid_len(32), 7);
    }

    #[test]
    fn estimator_trait_reports_error() {
        let img = textured(24, 24);
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 2, step: 1 });
        let res = MotionEstimator::estimate(&rfbme, &img, &img);
        assert_eq!(res.total_error, Some(0));
        assert_eq!(MotionEstimator::name(&rfbme), "RFBME");
        assert!(res.ops > 0);
    }
}
