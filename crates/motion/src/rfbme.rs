//! Receptive field block motion estimation (RFBME).
//!
//! RFBME (§III-A of the paper) estimates one motion vector per *receptive
//! field* of the AMC target layer — exactly the granularity activation
//! warping can use. It exploits two properties of receptive fields:
//!
//! 1. Their size is typically much larger than their stride, so adjacent
//!    fields overlap heavily and **tile-level differences can be reused**.
//! 2. Padding makes edge receptive fields extend out of bounds, where
//!    comparisons are unnecessary.
//!
//! The implementation mirrors the hardware microarchitecture:
//! [`DiffTileProducer`] performs a subsampled exhaustive search per
//! `stride × stride` tile (Fig 6's "diff tile producer"), and
//! [`DiffTileConsumer`] coalesces tile differences into receptive-field
//! differences with rolling column add/subtract reuse and a min-check
//! register per field (Fig 8). Both stages count their arithmetic
//! operations, which backs the §IV-A first-order comparison against the CNN
//! prefix cost.

use crate::field::{MotionVector, VectorField};
use crate::sad::{sad_window, IntegralImage};
use crate::{MotionEstimator, MotionResult};
use eva2_tensor::GrayImage;
use serde::{Deserialize, Serialize};

/// Receptive-field geometry as seen from the input image.
///
/// Mirrors `eva2_cnn::ReceptiveField` (duplicated here so the motion crate
/// depends only on the tensor substrate; `eva2-core` converts between the
/// two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RfGeometry {
    /// Receptive-field side length in pixels.
    pub size: usize,
    /// Pixel distance between adjacent receptive fields.
    pub stride: usize,
    /// Offset of the first receptive field's origin above/left of the image
    /// origin.
    pub padding: usize,
}

impl RfGeometry {
    /// Number of receptive fields along an image dimension of `n` pixels
    /// (the spatial extent of the target activation).
    pub fn grid_len(&self, n: usize) -> usize {
        let padded = n + 2 * self.padding;
        if padded < self.size {
            0
        } else {
            (padded - self.size) / self.stride + 1
        }
    }
}

/// Block-matching search window parameters.
///
/// The producer "considers all locations in the key frame that are aligned
/// with the search stride and are within the search radius" (§III-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SearchParams {
    /// Maximum displacement searched in each direction, in pixels.
    pub radius: usize,
    /// Search stride: only offsets that are multiples of `step` are
    /// examined. 1 = full search.
    pub step: usize,
}

impl SearchParams {
    /// The search offsets along one axis: `-radius..=radius` step `step`.
    pub fn offsets(&self) -> Vec<isize> {
        let step = self.step.max(1) as isize;
        let r = self.radius as isize;
        let mut v = Vec::new();
        let mut o = -r;
        while o <= r {
            v.push(o);
            o += step;
        }
        v
    }

    /// Number of candidate offsets in the 2-D search window.
    pub fn window_len(&self) -> usize {
        let n = self.offsets().len();
        n * n
    }
}

/// Marker for a tile difference that could not be computed because the
/// candidate window leaves the key frame.
const INVALID: u32 = u32::MAX;

/// Tile-level absolute differences for every search offset.
///
/// `diffs[o][ty * tiles_x + tx]` is the sum of absolute differences between
/// the new frame's tile `(ty, tx)` and the key frame at that tile's origin
/// displaced by `offsets[o]`, or [`INVALID`] when that window is out of
/// bounds.
#[derive(Debug, Clone)]
pub struct TileDiffs {
    /// Tile grid height.
    pub tiles_y: usize,
    /// Tile grid width.
    pub tiles_x: usize,
    /// The (dy, dx) search offsets, row-major over the search window.
    pub offsets: Vec<(isize, isize)>,
    /// Per-offset tile difference planes.
    pub diffs: Vec<Vec<u32>>,
    /// Adds performed while producing the differences.
    pub ops: u64,
}

/// The diff tile producer: subsampled exhaustive search per tile (§III-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffTileProducer {
    /// Tile side length — equal to the receptive-field stride.
    pub tile: usize,
    /// Search window parameters.
    pub params: SearchParams,
}

impl DiffTileProducer {
    /// Computes tile differences between `new` (current frame tiles) and
    /// `key` (search windows).
    ///
    /// # Panics
    ///
    /// Panics when the two frames differ in size.
    pub fn produce(&self, key: &GrayImage, new: &GrayImage) -> TileDiffs {
        assert_eq!(
            (key.height(), key.width()),
            (new.height(), new.width()),
            "frame size mismatch"
        );
        let s = self.tile.max(1);
        let tiles_y = new.height() / s;
        let tiles_x = new.width() / s;
        let axis = self.params.offsets();
        let mut offsets = Vec::with_capacity(axis.len() * axis.len());
        for &dy in &axis {
            for &dx in &axis {
                offsets.push((dy, dx));
            }
        }
        let mut diffs = vec![vec![INVALID; tiles_y * tiles_x]; offsets.len()];
        let mut ops: u64 = 0;
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                let oy = (ty * s) as isize;
                let ox = (tx * s) as isize;
                for (oi, &(dy, dx)) in offsets.iter().enumerate() {
                    let ky = oy + dy;
                    let kx = ox + dx;
                    // Only fully in-bounds key windows are valid candidates.
                    if ky < 0
                        || kx < 0
                        || ky + s as isize > key.height() as isize
                        || kx + s as isize > key.width() as isize
                    {
                        continue;
                    }
                    let mut sad: u32 = 0;
                    for py in 0..s {
                        for px in 0..s {
                            let a = new.get(oy as usize + py, ox as usize + px) as i32;
                            let b = key.get((ky as usize) + py, (kx as usize) + px) as i32;
                            sad += (a - b).unsigned_abs();
                        }
                    }
                    ops += (s * s) as u64;
                    diffs[oi][ty * tiles_x + tx] = sad;
                }
            }
        }
        TileDiffs {
            tiles_y,
            tiles_x,
            offsets,
            diffs,
            ops,
        }
    }
}

/// Per-receptive-field output of the consumer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfMatch {
    /// Best-match displacement (pixels, gather convention).
    pub vector: MotionVector,
    /// Minimum receptive-field difference (the block error fed to the
    /// key-frame choice module).
    pub error: u32,
    /// Number of pixels that contributed to `error` (for normalisation).
    pub pixels: u32,
}

/// The diff tile consumer: aggregates tile differences into receptive-field
/// differences with rolling reuse, and finds each field's best offset
/// (§III-A2, Fig 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffTileConsumer {
    /// Receptive-field geometry.
    pub rf: RfGeometry,
}

impl DiffTileConsumer {
    /// Tile index range `[t0, t1)` covered by the receptive field starting
    /// at activation coordinate `a` along one axis, restricted to whole
    /// tiles inside the frame ("RFBME ignores partial tiles", §III-A).
    fn tile_range(&self, a: usize, tiles: usize) -> (usize, usize) {
        let s = self.rf.stride as isize;
        let origin = a as isize * s - self.rf.padding as isize;
        let end = origin + self.rf.size as isize;
        // First whole tile at or after origin; last whole tile ending at or
        // before end.
        let t0 = origin.div_euclid(s) + if origin.rem_euclid(s) != 0 { 1 } else { 0 };
        let t1 = end.div_euclid(s);
        let t0 = t0.max(0) as usize;
        let t1 = t1.max(0) as usize;
        (t0.min(tiles), t1.min(tiles))
    }

    /// Consumes tile differences, producing one [`RfMatch`] per receptive
    /// field plus the consumer's operation count.
    pub fn consume(&self, tiles: &TileDiffs, grid_h: usize, grid_w: usize) -> (Vec<RfMatch>, u64) {
        let s2 = (self.rf.stride * self.rf.stride) as u32;
        let mut best: Vec<RfMatch> = vec![
            RfMatch {
                vector: MotionVector::ZERO,
                error: u32::MAX,
                pixels: 0,
            };
            grid_h * grid_w
        ];
        let mut ops: u64 = 0;
        let mut colsum = vec![0u64; tiles.tiles_x];
        let mut colvalid = vec![true; tiles.tiles_x];
        for (oi, plane) in tiles.diffs.iter().enumerate() {
            let (ody, odx) = tiles.offsets[oi];
            for ay in 0..grid_h {
                let (ty0, ty1) = self.tile_range(ay, tiles.tiles_y);
                if ty0 >= ty1 {
                    continue;
                }
                // Column sums over the tile rows of this receptive-field row
                // (the "previous block sum memory" granularity in hardware).
                for tx in 0..tiles.tiles_x {
                    let mut sum = 0u64;
                    let mut valid = true;
                    for ty in ty0..ty1 {
                        let d = plane[ty * tiles.tiles_x + tx];
                        if d == INVALID {
                            valid = false;
                            break;
                        }
                        sum += d as u64;
                    }
                    ops += (ty1 - ty0) as u64;
                    colsum[tx] = sum;
                    colvalid[tx] = valid;
                }
                // Slide the window across activation columns with rolling
                // add/subtract.
                let mut window: Option<(u64, usize, usize)> = None; // (sum, tx0, tx1)
                for ax in 0..grid_w {
                    let (tx0, tx1) = self.tile_range(ax, tiles.tiles_x);
                    if tx0 >= tx1 {
                        window = None;
                        continue;
                    }
                    let sum = match window {
                        // Rolling update only valid when the window width is
                        // unchanged and slid by exactly the reuse pattern.
                        Some((prev, p0, p1)) if tx1 - tx0 == p1 - p0 && tx0 >= p0 && tx0 <= p1 => {
                            let mut sum = prev;
                            for &col in &colsum[p0..tx0] {
                                sum -= col;
                                ops += 1;
                            }
                            for &col in &colsum[p1..tx1] {
                                sum += col;
                                ops += 1;
                            }
                            sum
                        }
                        _ => {
                            let mut sum = 0u64;
                            for &col in &colsum[tx0..tx1] {
                                sum += col;
                                ops += 1;
                            }
                            sum
                        }
                    };
                    window = Some((sum, tx0, tx1));
                    // Any invalid column invalidates this offset for the RF.
                    if colvalid[tx0..tx1].iter().any(|&v| !v) {
                        continue;
                    }
                    let n_tiles = ((ty1 - ty0) * (tx1 - tx0)) as u32;
                    let err = sum.min(u32::MAX as u64 - 1) as u32;
                    let b = &mut best[ay * grid_w + ax];
                    // Min-check register: strictly-smaller error wins; ties
                    // prefer the smaller displacement (stability).
                    let cand_mag = (ody * ody + odx * odx) as f32;
                    let best_mag = b.vector.dy * b.vector.dy + b.vector.dx * b.vector.dx;
                    if err < b.error || (err == b.error && cand_mag < best_mag) {
                        *b = RfMatch {
                            vector: MotionVector::new(ody as f32, odx as f32),
                            error: err,
                            pixels: n_tiles * s2,
                        };
                    }
                }
            }
        }
        // Receptive fields that never saw a valid offset keep the
        // `u32::MAX` sentinel; `Rfbme::result_from_matches` maps them to
        // zero motion / zero error (no evidence either way).
        (best, ops)
    }
}

/// Full RFBME result.
#[derive(Debug, Clone)]
pub struct RfbmeResult {
    /// Motion vector per receptive field (pixel units, cell = RF stride).
    pub field: VectorField,
    /// Per-field minimum block error.
    pub errors: Vec<u32>,
    /// Sum of per-field minimum errors — the pixel-compensation-error
    /// signal for adaptive key-frame selection.
    pub total_error: u64,
    /// Total pixels compared across all fields' best matches (receptive
    /// fields overlap, so this exceeds the frame size). Normalising
    /// `total_error` by this gives a resolution-independent per-pixel
    /// error.
    pub total_pixels: u64,
    /// Producer adds.
    pub producer_ops: u64,
    /// Consumer adds/subtracts.
    pub consumer_ops: u64,
}

impl RfbmeResult {
    /// Total arithmetic operations.
    pub fn ops(&self) -> u64 {
        self.producer_ops + self.consumer_ops
    }
}

/// Reusable buffers for [`Rfbme::estimate_with`].
///
/// One estimate needs two integral images plus a dozen per-tile /
/// per-receptive-field work vectors; a frame-loop caller (the AMC
/// executor's session state, the pipelined executor's `rfbme-worker`
/// thread) holds one scratch so steady-state estimation allocates nothing
/// but the returned [`RfbmeResult`]. Buffer contents never influence
/// results — every value is rewritten (or reset here) before use — so
/// sharing a scratch across streams, or none at all, is purely a
/// performance choice.
#[derive(Debug, Clone, Default)]
pub struct RfbmeScratch {
    key_sat: IntegralImage,
    new_sat: IntegralImage,
    offsets: Vec<(isize, isize)>,
    row_range: Vec<(usize, usize)>,
    col_range: Vec<(usize, usize)>,
    new_sums: Vec<u64>,
    best: Vec<RfMatch>,
    lb: Vec<u64>,
    tile_valid: Vec<bool>,
    exact: Vec<u32>,
    needed: Vec<bool>,
    improvable: Vec<usize>,
    colsum: Vec<u64>,
    colvalid: Vec<bool>,
}

impl RfbmeScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// The complete RFBME estimator: producer + consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rfbme {
    rf: RfGeometry,
    params: SearchParams,
}

impl Rfbme {
    /// Creates an estimator for the given receptive-field geometry and
    /// search window.
    pub fn new(rf: RfGeometry, params: SearchParams) -> Self {
        Self { rf, params }
    }

    /// The receptive-field geometry being matched.
    pub fn rf(&self) -> RfGeometry {
        self.rf
    }

    /// Runs RFBME from `key` to `new` through the two-stage hardware
    /// reference model ([`DiffTileProducer`] + [`DiffTileConsumer`]), with
    /// no early exit: every in-bounds `(tile, offset)` SAD is computed.
    ///
    /// This is the bit-faithful model of Fig 6/Fig 8 and the golden
    /// reference the fast path ([`Rfbme::estimate`]) is tested against.
    pub fn estimate_reference(&self, key: &GrayImage, new: &GrayImage) -> RfbmeResult {
        let producer = DiffTileProducer {
            tile: self.rf.stride,
            params: self.params,
        };
        let tiles = producer.produce(key, new);
        let grid_h = self.rf.grid_len(new.height());
        let grid_w = self.rf.grid_len(new.width());
        let consumer = DiffTileConsumer { rf: self.rf };
        let (matches, consumer_ops) = consumer.consume(&tiles, grid_h, grid_w);
        Self::result_from_matches(self.rf, &matches, grid_h, grid_w, tiles.ops, consumer_ops)
    }

    /// Runs RFBME from `key` to `new` on the fast path: fused
    /// producer/consumer with diff-tile early-exit and per-receptive-field
    /// running-minimum pruning.
    ///
    /// Candidate offsets are visited in order of ascending displacement
    /// magnitude (zero first). For each offset, every tile first gets a
    /// cheap *lower bound* on its SAD — `|Σ new_tile − Σ key_window|`, two
    /// O(1) window sums via [`IntegralImage`] — and the bounds are
    /// aggregated per receptive field with the same rolling column reuse as
    /// the hardware consumer. A receptive field whose aggregated bound
    /// already reaches its running-minimum error cannot improve at this
    /// offset, so the SAD refinement for its tiles is skipped; only tiles
    /// needed by a still-improvable field are refined (chunked kernels from
    /// [`crate::sad`]).
    ///
    /// Because the bound never exceeds the true SAD, skipping is *exact*:
    /// the returned per-field minimum error equals the exhaustive search's
    /// (and therefore so do `errors`, `total_error`, and `total_pixels`).
    /// The ascending-magnitude visit order with a strictly-smaller
    /// min-check update also reproduces the reference tie-break (ties in
    /// error keep the smaller displacement), so the vectors match
    /// [`Rfbme::estimate_reference`] exactly as well. Only the operation
    /// counts differ — they *are* the early-exit savings.
    ///
    /// # Panics
    ///
    /// Panics when the two frames differ in size.
    pub fn estimate(&self, key: &GrayImage, new: &GrayImage) -> RfbmeResult {
        self.estimate_with(key, new, &mut RfbmeScratch::new())
    }

    /// [`Rfbme::estimate`] reusing caller-owned scratch buffers, so a
    /// frame-loop caller performs no per-estimate allocation. Results are
    /// identical to [`Rfbme::estimate`] — the scratch only carries
    /// capacity, never values, between calls.
    ///
    /// # Panics
    ///
    /// Panics when the two frames differ in size.
    pub fn estimate_with(
        &self,
        key: &GrayImage,
        new: &GrayImage,
        scratch: &mut RfbmeScratch,
    ) -> RfbmeResult {
        assert_eq!(
            (key.height(), key.width()),
            (new.height(), new.width()),
            "frame size mismatch"
        );
        let RfbmeScratch {
            key_sat,
            new_sat,
            offsets,
            row_range,
            col_range,
            new_sums,
            best,
            lb,
            tile_valid,
            exact,
            needed,
            improvable,
            colsum,
            colvalid,
        } = scratch;
        let s = self.rf.stride.max(1);
        let (h, w) = (new.height(), new.width());
        let tiles_y = h / s;
        let tiles_x = w / s;
        let n_tiles = tiles_y * tiles_x;
        let grid_h = self.rf.grid_len(h);
        let grid_w = self.rf.grid_len(w);
        let n_rf = grid_h * grid_w;
        let consumer = DiffTileConsumer { rf: self.rf };
        row_range.clear();
        row_range.extend((0..grid_h).map(|a| consumer.tile_range(a, tiles_y)));
        col_range.clear();
        col_range.extend((0..grid_w).map(|a| consumer.tile_range(a, tiles_x)));

        // Ascending-magnitude visit order, stable within equal magnitude
        // (preserves row-major order there, matching the reference
        // tie-break as described above).
        let axis = self.params.offsets();
        offsets.clear();
        for &dy in &axis {
            for &dx in &axis {
                offsets.push((dy, dx));
            }
        }
        offsets.sort_by_key(|&(dy, dx)| dy * dy + dx * dx);

        let mut producer_ops: u64 = 0;
        let mut consumer_ops: u64 = 0;

        // O(1) window sums over the key frame; per-tile sums of the new
        // frame. Both are one pass over the pixels.
        key_sat.recompute(key);
        new_sat.recompute(new);
        producer_ops += 2 * (h * w) as u64;
        new_sums.resize(n_tiles, 0);
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                new_sums[ty * tiles_x + tx] = new_sat.window_sum(ty * s, tx * s, s, s);
            }
        }

        let s2 = (s * s) as u32;
        best.clear();
        best.resize(
            n_rf,
            RfMatch {
                vector: MotionVector::ZERO,
                error: u32::MAX,
                pixels: 0,
            },
        );
        // `lb`/`tile_valid`/`exact` are (re)written before every read at
        // each offset; `needed` must start all-false.
        lb.resize(n_tiles, 0);
        tile_valid.resize(n_tiles, false);
        exact.resize(n_tiles, 0);
        needed.clear();
        needed.resize(n_tiles, false);
        colsum.resize(tiles_x, 0);
        colvalid.resize(tiles_x, true);

        for &(dy, dx) in offsets.iter() {
            // Stage 1: per-tile validity + SAD lower bound (O(1) per tile).
            for ty in 0..tiles_y {
                let ky = (ty * s) as isize + dy;
                let row_ok = ky >= 0 && ky + s as isize <= h as isize;
                for tx in 0..tiles_x {
                    let t = ty * tiles_x + tx;
                    let kx = (tx * s) as isize + dx;
                    if !row_ok || kx < 0 || kx + s as isize > w as isize {
                        tile_valid[t] = false;
                        continue;
                    }
                    tile_valid[t] = true;
                    let key_sum = key_sat.window_sum(ky as usize, kx as usize, s, s);
                    lb[t] = new_sums[t].abs_diff(key_sum);
                }
            }
            consumer_ops += n_tiles as u64;

            // Stage 2: aggregate bounds per receptive field (rolling column
            // reuse, as in the hardware consumer) and collect the fields
            // this offset could still improve.
            improvable.clear();
            let mut any_needed = false;
            for (ay, &(ty0, ty1)) in row_range.iter().enumerate() {
                if ty0 >= ty1 {
                    continue;
                }
                for tx in 0..tiles_x {
                    let mut sum = 0u64;
                    let mut valid = true;
                    for ty in ty0..ty1 {
                        let t = ty * tiles_x + tx;
                        if !tile_valid[t] {
                            valid = false;
                            break;
                        }
                        sum += lb[t];
                    }
                    consumer_ops += (ty1 - ty0) as u64;
                    colsum[tx] = sum;
                    colvalid[tx] = valid;
                }
                for (ax, &(tx0, tx1)) in col_range.iter().enumerate() {
                    if tx0 >= tx1 || colvalid[tx0..tx1].iter().any(|&v| !v) {
                        continue;
                    }
                    let mut lb_sum = 0u64;
                    for &c in &colsum[tx0..tx1] {
                        lb_sum += c;
                    }
                    consumer_ops += (tx1 - tx0) as u64;
                    let idx = ay * grid_w + ax;
                    if lb_sum < best[idx].error as u64 {
                        improvable.push(idx);
                        for ty in ty0..ty1 {
                            for tx in tx0..tx1 {
                                needed[ty * tiles_x + tx] = true;
                            }
                        }
                        any_needed = true;
                    }
                }
            }
            if !any_needed {
                continue; // diff-tile early exit: no field can improve here
            }

            // Stage 3: SAD refinement, only for tiles a still-improvable
            // field covers.
            for ty in 0..tiles_y {
                for tx in 0..tiles_x {
                    let t = ty * tiles_x + tx;
                    if !needed[t] {
                        continue;
                    }
                    needed[t] = false;
                    let ky = ((ty * s) as isize + dy) as usize;
                    let kx = ((tx * s) as isize + dx) as usize;
                    exact[t] = sad_window(new, key, (ty * s, tx * s), (ky, kx), s, s);
                    producer_ops += s2 as u64;
                }
            }

            // Stage 4: exact aggregation + min-check update (strictly
            // smaller wins; visit order provides the tie-break).
            for &idx in improvable.iter() {
                let (ty0, ty1) = row_range[idx / grid_w.max(1)];
                let (tx0, tx1) = col_range[idx % grid_w.max(1)];
                let mut sum = 0u64;
                for ty in ty0..ty1 {
                    for tx in tx0..tx1 {
                        sum += exact[ty * tiles_x + tx] as u64;
                    }
                }
                let n = ((ty1 - ty0) * (tx1 - tx0)) as u64;
                consumer_ops += n;
                let err = sum.min(u32::MAX as u64 - 1) as u32;
                let b = &mut best[idx];
                if err < b.error {
                    *b = RfMatch {
                        vector: MotionVector::new(dy as f32, dx as f32),
                        error: err,
                        pixels: n as u32 * s2,
                    };
                }
            }
        }

        Self::result_from_matches(self.rf, best, grid_h, grid_w, producer_ops, consumer_ops)
    }

    /// Finalises per-field matches into an [`RfbmeResult`], mapping fields
    /// that never saw a valid offset to zero motion / zero error.
    fn result_from_matches(
        rf: RfGeometry,
        matches: &[RfMatch],
        grid_h: usize,
        grid_w: usize,
        producer_ops: u64,
        consumer_ops: u64,
    ) -> RfbmeResult {
        let mut field = VectorField::zeros(grid_h, grid_w, rf.stride);
        let mut errors = Vec::with_capacity(matches.len());
        let mut total: u64 = 0;
        let mut total_pixels: u64 = 0;
        for (i, m) in matches.iter().enumerate() {
            let m = if m.error == u32::MAX {
                RfMatch {
                    vector: MotionVector::ZERO,
                    error: 0,
                    pixels: 0,
                }
            } else {
                *m
            };
            field.set(i / grid_w.max(1), i % grid_w.max(1), m.vector);
            errors.push(m.error);
            total += m.error as u64;
            total_pixels += m.pixels as u64;
        }
        RfbmeResult {
            field,
            errors,
            total_error: total,
            total_pixels,
            producer_ops,
            consumer_ops,
        }
    }
}

impl MotionEstimator for Rfbme {
    fn name(&self) -> &str {
        "RFBME"
    }

    fn estimate(&self, key: &GrayImage, new: &GrayImage) -> MotionResult {
        let r = Rfbme::estimate(self, key, new);
        MotionResult {
            ops: r.ops(),
            total_error: Some(r.total_error),
            field: r.field,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(h: usize, w: usize) -> GrayImage {
        GrayImage::from_fn(h, w, |y, x| (((y * 31 + x * 17) ^ (y * x / 3)) % 251) as u8)
    }

    fn rf_844() -> RfGeometry {
        RfGeometry {
            size: 8,
            stride: 4,
            padding: 0,
        }
    }

    #[test]
    fn search_offsets_respect_step() {
        let p = SearchParams { radius: 4, step: 2 };
        assert_eq!(p.offsets(), vec![-4, -2, 0, 2, 4]);
        assert_eq!(p.window_len(), 25);
    }

    #[test]
    fn identical_frames_give_zero_vectors_and_zero_error() {
        let img = textured(32, 32);
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 4, step: 1 });
        let r = rfbme.estimate(&img, &img);
        assert_eq!(r.total_error, 0);
        assert!(r.field.iter().all(|v| *v == MotionVector::ZERO));
    }

    #[test]
    fn global_translation_is_recovered() {
        let key = textured(40, 40);
        // New frame: content moved right by 3 pixels → best match for a new
        // block at p is at p + v with v = (0, -3).
        let new = key.translate(0, 3, 0);
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 4, step: 1 });
        let r = rfbme.estimate(&key, &new);
        let mut hits = 0;
        let mut total = 0;
        for gy in 0..r.field.grid_h() {
            for gx in 2..r.field.grid_w() {
                // skip leftmost columns polluted by the translation fill
                total += 1;
                if r.field.get(gy, gx) == MotionVector::new(0.0, -3.0) {
                    hits += 1;
                }
            }
        }
        assert!(hits * 10 >= total * 8, "only {hits}/{total} fields correct");
    }

    #[test]
    fn vertical_translation_sign() {
        let key = textured(40, 40);
        let new = key.translate(2, 0, 0); // content moved down
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 4, step: 1 });
        let r = rfbme.estimate(&key, &new);
        let center = r.field.get(r.field.grid_h() / 2, r.field.grid_w() / 2);
        assert_eq!(center, MotionVector::new(-2.0, 0.0));
    }

    #[test]
    fn consumer_matches_brute_force_sums() {
        // The rolling-window consumer must agree with a brute-force
        // recomputation of every receptive-field difference.
        let key = textured(32, 32);
        let new = key.translate(1, 2, 7);
        let rf = rf_844();
        let params = SearchParams { radius: 2, step: 1 };
        let producer = DiffTileProducer {
            tile: rf.stride,
            params,
        };
        let tiles = producer.produce(&key, &new);
        let grid = rf.grid_len(32);
        let consumer = DiffTileConsumer { rf };
        let (matches, _) = consumer.consume(&tiles, grid, grid);
        // Brute force.
        for ay in 0..grid {
            for ax in 0..grid {
                let (ty0, ty1) = consumer.tile_range(ay, tiles.tiles_y);
                let (tx0, tx1) = consumer.tile_range(ax, tiles.tiles_x);
                let mut best_err = u32::MAX;
                for (oi, _) in tiles.offsets.iter().enumerate() {
                    let mut sum: u64 = 0;
                    let mut valid = true;
                    for ty in ty0..ty1 {
                        for tx in tx0..tx1 {
                            let d = tiles.diffs[oi][ty * tiles.tiles_x + tx];
                            if d == INVALID {
                                valid = false;
                            } else {
                                sum += d as u64;
                            }
                        }
                    }
                    if valid {
                        best_err = best_err.min(sum as u32);
                    }
                }
                // Never-valid fields keep the sentinel here; the result
                // finaliser maps them to zero.
                let got = matches[ay * grid + ax].error;
                assert_eq!(got, best_err, "rf ({ay},{ax})");
            }
        }
    }

    #[test]
    fn padding_shrinks_valid_tile_range_at_edges() {
        let rf = RfGeometry {
            size: 6,
            stride: 2,
            padding: 2,
        };
        let consumer = DiffTileConsumer { rf };
        // Fig 7a: the first receptive field starts at -2; only tiles 0 and 1
        // (pixels 0..4) are fully inside it.
        assert_eq!(consumer.tile_range(0, 10), (0, 2));
        // Fig 7b: second receptive field covers pixels 0..6 → tiles 0..3.
        assert_eq!(consumer.tile_range(1, 10), (0, 3));
    }

    #[test]
    fn producer_skips_out_of_bounds_windows() {
        let img = textured(16, 16);
        let producer = DiffTileProducer {
            tile: 4,
            params: SearchParams { radius: 8, step: 4 },
        };
        let tiles = producer.produce(&img, &img);
        // Corner tile (0,0) cannot match at offset (-8,-8).
        let oi = tiles
            .offsets
            .iter()
            .position(|&o| o == (-8, -8))
            .expect("offset present");
        assert_eq!(tiles.diffs[oi][0], INVALID);
        // But it can match at (0, 0).
        let oi0 = tiles.offsets.iter().position(|&o| o == (0, 0)).unwrap();
        assert_eq!(tiles.diffs[oi0][0], 0);
    }

    #[test]
    fn ops_are_far_below_unoptimized_for_large_strides() {
        // §IV-A: reuse gains scale with stride². With rf 16/8, the optimized
        // op count must be well under the unoptimized rf_size² per offset.
        let key = textured(64, 64);
        let new = key.translate(1, 1, 0);
        let rf = RfGeometry {
            size: 16,
            stride: 8,
            padding: 0,
        };
        let rfbme = Rfbme::new(rf, SearchParams { radius: 8, step: 2 });
        let r = rfbme.estimate(&key, &new);
        let grid = rf.grid_len(64);
        let window = SearchParams { radius: 8, step: 2 }.window_len() as u64;
        let unoptimized = (grid * grid) as u64 * window * (rf.size * rf.size) as u64;
        assert!(
            r.ops() * 2 < unoptimized,
            "ops {} not far below unoptimized {unoptimized}",
            r.ops()
        );
    }

    #[test]
    fn occlusion_raises_block_error() {
        let key = textured(32, 32);
        let mut new = key.clone();
        // Paint a block of "new pixels" (de-occlusion).
        for y in 8..20 {
            for x in 8..20 {
                new.set(y, x, 255);
            }
        }
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 4, step: 1 });
        let clean = rfbme.estimate(&key, &key).total_error;
        let occluded = rfbme.estimate(&key, &new).total_error;
        assert!(occluded > clean + 1000, "occluded {occluded} clean {clean}");
    }

    #[test]
    fn grid_len_matches_conv_arithmetic() {
        let rf = RfGeometry {
            size: 8,
            stride: 4,
            padding: 2,
        };
        // (32 + 4 - 8)/4 + 1 = 8
        assert_eq!(rf.grid_len(32), 8);
        assert_eq!(rf_844().grid_len(32), 7);
    }

    fn assert_same_result(fast: &RfbmeResult, reference: &RfbmeResult, label: &str) {
        assert_eq!(fast.errors, reference.errors, "{label}: errors differ");
        assert_eq!(
            fast.total_error, reference.total_error,
            "{label}: total_error differs"
        );
        assert_eq!(
            fast.total_pixels, reference.total_pixels,
            "{label}: total_pixels differs"
        );
        assert_eq!(fast.field, reference.field, "{label}: vector fields differ");
    }

    #[test]
    fn fast_path_matches_reference_on_translations() {
        let key = textured(48, 48);
        let rfs = [
            rf_844(),
            RfGeometry {
                size: 16,
                stride: 8,
                padding: 0,
            },
            RfGeometry {
                size: 27,
                stride: 8,
                padding: 10,
            },
        ];
        for rf in rfs {
            let rfbme = Rfbme::new(rf, SearchParams { radius: 6, step: 1 });
            for (dy, dx) in [(0isize, 0isize), (0, 1), (2, -3), (-5, 4), (8, 8)] {
                let new = key.translate(dy, dx, 31);
                let fast = rfbme.estimate(&key, &new);
                let reference = rfbme.estimate_reference(&key, &new);
                assert_same_result(&fast, &reference, &format!("rf {rf:?} shift ({dy},{dx})"));
            }
        }
    }

    #[test]
    fn fast_path_matches_reference_on_occlusion_and_noise() {
        let key = textured(40, 40);
        let mut new = key.translate(1, 1, 0);
        for y in 10..22 {
            for x in 14..26 {
                new.set(y, x, 240);
            }
        }
        for step in [1usize, 2, 3] {
            let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 5, step });
            let fast = rfbme.estimate(&key, &new);
            let reference = rfbme.estimate_reference(&key, &new);
            assert_same_result(&fast, &reference, &format!("step {step}"));
        }
    }

    #[test]
    fn scratch_reuse_across_sizes_and_geometries_is_identical() {
        // One scratch driven across shrinking/growing frames and changing
        // geometries must reproduce fresh-scratch results exactly — the
        // worker thread and every session reuse one scratch for life.
        let mut scratch = RfbmeScratch::new();
        let cases = [
            (48usize, rf_844(), 4usize, (2isize, -3isize)),
            (
                32,
                RfGeometry {
                    size: 16,
                    stride: 8,
                    padding: 0,
                },
                6,
                (0, 1),
            ),
            (48, rf_844(), 3, (-5, 4)),
            (
                64,
                RfGeometry {
                    size: 27,
                    stride: 8,
                    padding: 10,
                },
                5,
                (8, 8),
            ),
        ];
        for (dim, rf, radius, (dy, dx)) in cases {
            let key = textured(dim, dim);
            let new = key.translate(dy, dx, 17);
            let rfbme = Rfbme::new(rf, SearchParams { radius, step: 1 });
            let reused = rfbme.estimate_with(&key, &new, &mut scratch);
            let fresh = rfbme.estimate(&key, &new);
            assert_same_result(&reused, &fresh, &format!("dim {dim} rf {rf:?}"));
            assert_eq!(reused.producer_ops, fresh.producer_ops, "producer ops");
            assert_eq!(reused.consumer_ops, fresh.consumer_ops, "consumer ops");
        }
    }

    #[test]
    fn fast_path_early_exit_skips_refinement_on_static_scenes() {
        // An identical frame pair: the zero offset matches exactly, so every
        // other candidate's SAD refinement must be pruned and the producer
        // op count collapses toward a single pass (plus the O(pixels)
        // window-sum precomputation).
        let img = textured(64, 64);
        let rf = RfGeometry {
            size: 16,
            stride: 8,
            padding: 0,
        };
        let rfbme = Rfbme::new(rf, SearchParams { radius: 8, step: 1 });
        let fast = rfbme.estimate(&img, &img);
        let reference = rfbme.estimate_reference(&img, &img);
        assert_same_result(&fast, &reference, "static scene");
        assert!(
            fast.producer_ops * 4 < reference.producer_ops,
            "early exit should skip most SAD work: fast {} vs reference {}",
            fast.producer_ops,
            reference.producer_ops
        );
    }

    #[test]
    fn estimator_trait_reports_error() {
        let img = textured(24, 24);
        let rfbme = Rfbme::new(rf_844(), SearchParams { radius: 2, step: 1 });
        let res = MotionEstimator::estimate(&rfbme, &img, &img);
        assert_eq!(res.total_error, Some(0));
        assert_eq!(MotionEstimator::name(&rfbme), "RFBME");
        assert!(res.ops > 0);
    }
}
