//! Motion vectors and vector fields.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 2-D displacement in pixels.
///
/// Sign convention (*gather*): content now at position `p` in the current
/// frame came from `p + v` in the key frame. Warping therefore reads
/// `key[p + v]` to predict the current value at `p`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MotionVector {
    /// Vertical displacement (rows).
    pub dy: f32,
    /// Horizontal displacement (columns).
    pub dx: f32,
}

impl MotionVector {
    /// The zero vector.
    pub const ZERO: MotionVector = MotionVector { dy: 0.0, dx: 0.0 };

    /// Creates a vector.
    pub const fn new(dy: f32, dx: f32) -> Self {
        Self { dy, dx }
    }

    /// Euclidean magnitude.
    pub fn magnitude(&self) -> f32 {
        (self.dy * self.dy + self.dx * self.dx).sqrt()
    }

    /// Component-wise scaling (e.g. pixel → activation units).
    pub fn scaled(&self, factor: f32) -> Self {
        Self {
            dy: self.dy * factor,
            dx: self.dx * factor,
        }
    }
}

impl fmt::Display for MotionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+.2}, {:+.2})", self.dy, self.dx)
    }
}

/// A regular grid of motion vectors.
///
/// `cell` is the pixel pitch of the grid: vector `(gy, gx)` describes the
/// motion of the image region anchored at pixel `(gy * cell, gx * cell)`.
/// Dense optical flow uses `cell = 1`; RFBME uses `cell = receptive-field
/// stride`, so its grid coincides with the target activation's spatial grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorField {
    grid_h: usize,
    grid_w: usize,
    cell: usize,
    vectors: Vec<MotionVector>,
}

impl VectorField {
    /// Creates an all-zero field of `grid_h × grid_w` cells with pixel pitch
    /// `cell`.
    pub fn zeros(grid_h: usize, grid_w: usize, cell: usize) -> Self {
        Self {
            grid_h,
            grid_w,
            cell,
            vectors: vec![MotionVector::ZERO; grid_h * grid_w],
        }
    }

    /// Creates a field by evaluating `f(gy, gx)` on every cell.
    pub fn from_fn<F: FnMut(usize, usize) -> MotionVector>(
        grid_h: usize,
        grid_w: usize,
        cell: usize,
        mut f: F,
    ) -> Self {
        let mut vectors = Vec::with_capacity(grid_h * grid_w);
        for gy in 0..grid_h {
            for gx in 0..grid_w {
                vectors.push(f(gy, gx));
            }
        }
        Self {
            grid_h,
            grid_w,
            cell,
            vectors,
        }
    }

    /// Creates a uniform field (every cell carries `v`).
    pub fn uniform(grid_h: usize, grid_w: usize, cell: usize, v: MotionVector) -> Self {
        Self::from_fn(grid_h, grid_w, cell, |_, _| v)
    }

    /// Grid height in cells.
    pub fn grid_h(&self) -> usize {
        self.grid_h
    }

    /// Grid width in cells.
    pub fn grid_w(&self) -> usize {
        self.grid_w
    }

    /// Pixel pitch of one grid cell.
    pub fn cell(&self) -> usize {
        self.cell
    }

    /// Vector at cell `(gy, gx)`.
    #[inline]
    pub fn get(&self, gy: usize, gx: usize) -> MotionVector {
        debug_assert!(gy < self.grid_h && gx < self.grid_w);
        self.vectors[gy * self.grid_w + gx]
    }

    /// Writes the vector at cell `(gy, gx)`.
    #[inline]
    pub fn set(&mut self, gy: usize, gx: usize, v: MotionVector) {
        debug_assert!(gy < self.grid_h && gx < self.grid_w);
        self.vectors[gy * self.grid_w + gx] = v;
    }

    /// Iterator over all vectors, row-major.
    pub fn iter(&self) -> std::slice::Iter<'_, MotionVector> {
        self.vectors.iter()
    }

    /// Sum of vector magnitudes — the paper's *total motion magnitude*
    /// key-frame feature: "this simple strategy sums the magnitude of the
    /// vectors produced by motion estimation" (§II-C4).
    pub fn magnitude_sum(&self) -> f32 {
        self.vectors.iter().map(|v| v.magnitude()).sum()
    }

    /// Mean vector magnitude.
    pub fn magnitude_mean(&self) -> f32 {
        if self.vectors.is_empty() {
            0.0
        } else {
            self.magnitude_sum() / self.vectors.len() as f32
        }
    }

    /// Resamples the field onto a `new_h × new_w` grid with pixel pitch
    /// `new_cell` by averaging all source vectors whose anchor falls inside
    /// each destination cell.
    ///
    /// This is how pixel-level optical flow baselines are converted for
    /// activation warping: "to convert these to receptive-field-level
    /// fields, we take the average vector within each receptive field"
    /// (§IV-E2). Empty destination cells (possible when upsampling) take the
    /// nearest source vector.
    pub fn resample(&self, new_h: usize, new_w: usize, new_cell: usize) -> VectorField {
        let mut sums = vec![(0.0f32, 0.0f32, 0usize); new_h * new_w];
        for gy in 0..self.grid_h {
            for gx in 0..self.grid_w {
                let py = gy * self.cell;
                let px = gx * self.cell;
                let ny = (py / new_cell).min(new_h.saturating_sub(1));
                let nx = (px / new_cell).min(new_w.saturating_sub(1));
                let v = self.get(gy, gx);
                let s = &mut sums[ny * new_w + nx];
                s.0 += v.dy;
                s.1 += v.dx;
                s.2 += 1;
            }
        }
        VectorField::from_fn(new_h, new_w, new_cell, |ny, nx| {
            let (sy, sx, n) = sums[ny * new_w + nx];
            if n > 0 {
                MotionVector::new(sy / n as f32, sx / n as f32)
            } else {
                // Nearest source cell by anchor distance.
                let py = ny * new_cell;
                let px = nx * new_cell;
                let gy = (py / self.cell).min(self.grid_h.saturating_sub(1));
                let gx = (px / self.cell).min(self.grid_w.saturating_sub(1));
                self.get(gy, gx)
            }
        })
    }

    /// Converts pixel-space displacements to activation-space units by
    /// dividing by the receptive-field stride (the `δ → δ'` scaling of
    /// §II-B).
    pub fn to_activation_units(&self, rf_stride: usize) -> VectorField {
        let f = 1.0 / rf_stride as f32;
        VectorField {
            grid_h: self.grid_h,
            grid_w: self.grid_w,
            cell: self.cell,
            vectors: self.vectors.iter().map(|v| v.scaled(f)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude() {
        assert_eq!(MotionVector::new(3.0, 4.0).magnitude(), 5.0);
        assert_eq!(MotionVector::ZERO.magnitude(), 0.0);
    }

    #[test]
    fn scaled_vector() {
        let v = MotionVector::new(2.0, -4.0).scaled(0.5);
        assert_eq!((v.dy, v.dx), (1.0, -2.0));
    }

    #[test]
    fn field_get_set() {
        let mut f = VectorField::zeros(2, 3, 8);
        f.set(1, 2, MotionVector::new(1.0, 2.0));
        assert_eq!(f.get(1, 2), MotionVector::new(1.0, 2.0));
        assert_eq!(f.get(0, 0), MotionVector::ZERO);
        assert_eq!(f.cell(), 8);
    }

    #[test]
    fn magnitude_sum_counts_all_cells() {
        let f = VectorField::uniform(2, 2, 1, MotionVector::new(0.0, 2.0));
        assert_eq!(f.magnitude_sum(), 8.0);
        assert_eq!(f.magnitude_mean(), 2.0);
    }

    #[test]
    fn resample_averages_uniform_field_exactly() {
        // Dense 8x8 field of (1, -1) → 2x2 grid of cell 4: still (1, -1).
        let dense = VectorField::uniform(8, 8, 1, MotionVector::new(1.0, -1.0));
        let coarse = dense.resample(2, 2, 4);
        for gy in 0..2 {
            for gx in 0..2 {
                assert_eq!(coarse.get(gy, gx), MotionVector::new(1.0, -1.0));
            }
        }
    }

    #[test]
    fn resample_averages_mixed_cells() {
        // Top half moves +2 in x, bottom half 0. A single destination cell
        // covering everything averages to +1.
        let dense = VectorField::from_fn(4, 4, 1, |gy, _| {
            if gy < 2 {
                MotionVector::new(0.0, 2.0)
            } else {
                MotionVector::ZERO
            }
        });
        let one = dense.resample(1, 1, 4);
        assert_eq!(one.get(0, 0), MotionVector::new(0.0, 1.0));
    }

    #[test]
    fn resample_upsampling_fills_with_nearest() {
        let coarse = VectorField::uniform(1, 1, 8, MotionVector::new(3.0, 0.0));
        let fine = coarse.resample(2, 2, 4);
        for gy in 0..2 {
            for gx in 0..2 {
                assert_eq!(fine.get(gy, gx), MotionVector::new(3.0, 0.0));
            }
        }
    }

    #[test]
    fn activation_scaling_divides_by_stride() {
        let f = VectorField::uniform(2, 2, 8, MotionVector::new(8.0, -4.0));
        let a = f.to_activation_units(8);
        assert_eq!(a.get(0, 0), MotionVector::new(1.0, -0.5));
    }

    #[test]
    fn display_format() {
        assert_eq!(MotionVector::new(1.0, -2.5).to_string(), "(+1.00, -2.50)");
    }
}
