//! Chunked sum-of-absolute-difference kernels and window-sum precomputation.
//!
//! The RFBME diff tile producer's inner loop is a `u8` SAD over a
//! `stride × stride` window — the canonical block-matching kernel. The
//! original implementation read pixels one at a time through bounds-checked
//! accessors; the kernels here operate on row slices in fixed-width chunks so
//! the compiler can keep the accumulation in vector registers (with
//! `target-cpu=native` this lowers to `psadbw`-class code on x86-64).
//!
//! [`IntegralImage`] provides O(1) window sums, which the fast RFBME path
//! ([`crate::rfbme::Rfbme::estimate`]) uses to derive *lower bounds* on tile
//! SADs. The bounds form a hierarchy, all instances of one inequality: for
//! any partition of a window into bands, the triangle inequality gives
//!
//! ```text
//! Σ_bands |Σ new_band − Σ key_band|  ≤  SAD(new, key)
//! ```
//!
//! * **Level 0** ([`sad_lower_bound`]) uses the trivial one-band partition:
//!   `|Σ new − Σ key| ≤ SAD`. One subtraction from two O(1) window sums.
//! * **Level 1** ([`sad_lower_bound_rows`] / [`sad_lower_bound_cols`])
//!   partitions the window into single-pixel-high rows (or single-pixel-wide
//!   column strips). Each band sum is an O(1) summed-area-table band, so the
//!   whole bound is O(h) (or O(w)) — and because splitting a partition can
//!   only grow a sum of absolute values, every level-1 bound dominates the
//!   level-0 bound while still never exceeding the true SAD.
//!
//! A candidate offset whose aggregated bound already exceeds a receptive
//! field's running-minimum error cannot win, so its SAD refinement is
//! skipped entirely — the diff-tile early-exit, made hierarchical.

use eva2_tensor::GrayImage;

/// Sum of absolute differences between two equal-length byte rows.
///
/// Accumulates in 8-wide chunks (tiles are `stride` pixels wide — 8 on the
/// paper's geometries, 4 in the small test geometries) with a scalar tail.
#[inline]
pub fn sad_row(a: &[u8], b: &[u8]) -> u32 {
    debug_assert_eq!(a.len(), b.len(), "sad_row length mismatch");
    let mut acc = 0u32;
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (ka, kb) in (&mut ca).zip(&mut cb) {
        let mut s = 0u32;
        for i in 0..8 {
            s += (ka[i] as i32 - kb[i] as i32).unsigned_abs();
        }
        acc += s;
    }
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += (x as i32 - y as i32).unsigned_abs();
    }
    acc
}

/// SAD between an `h × w` window of `new` anchored at `(ny, nx)` and an
/// equally-sized window of `key` anchored at `(ky, kx)`.
///
/// Both windows must lie fully inside their frames (the caller performs the
/// bounds check once per candidate, not per pixel).
#[inline]
pub fn sad_window(
    new: &GrayImage,
    key: &GrayImage,
    (ny, nx): (usize, usize),
    (ky, kx): (usize, usize),
    h: usize,
    w: usize,
) -> u32 {
    debug_assert!(ny + h <= new.height() && nx + w <= new.width());
    debug_assert!(ky + h <= key.height() && kx + w <= key.width());
    let nw = new.width();
    let kw = key.width();
    let nd = new.as_slice();
    let kd = key.as_slice();
    let mut acc = 0u32;
    for row in 0..h {
        let no = (ny + row) * nw + nx;
        let ko = (ky + row) * kw + kx;
        acc += sad_row(&nd[no..no + w], &kd[ko..ko + w]);
    }
    acc
}

/// A summed-area table over a [`GrayImage`], giving O(1) window sums.
///
/// `sat[(y, x)]` holds the sum of all pixels above and left of `(y, x)`
/// exclusive, so a window sum is four lookups. Sums are `u64` so arbitrarily
/// large frames cannot overflow.
#[derive(Debug, Clone, Default)]
pub struct IntegralImage {
    width: usize,
    sat: Vec<u64>,
}

impl IntegralImage {
    /// Builds the table in one pass over the image.
    pub fn new(img: &GrayImage) -> Self {
        let mut sat = Self::default();
        sat.recompute(img);
        sat
    }

    /// Bytes of heap memory this table holds (allocated capacity) — the
    /// serving engine's per-session memory audit.
    pub fn heap_bytes(&self) -> usize {
        self.sat.capacity() * std::mem::size_of::<u64>()
    }

    /// Rebuilds the table for `img`, reusing this table's allocation — the
    /// frame-loop entry point (an RFBME estimate needs two tables per
    /// frame, and the worker thread runs one estimate per frame).
    pub fn recompute(&mut self, img: &GrayImage) {
        let (h, w) = (img.height(), img.width());
        let stride = w + 1;
        self.width = w;
        // Interior cells are all overwritten below; only the zero border
        // (row 0 and column 0) needs initialising.
        self.sat.resize((h + 1) * stride, 0);
        self.sat[..stride].fill(0);
        let data = img.as_slice();
        for y in 0..h {
            let mut row_sum = 0u64;
            let src = &data[y * w..(y + 1) * w];
            let (prev, cur) = self.sat.split_at_mut((y + 1) * stride);
            let prev = &prev[y * stride..];
            cur[0] = 0;
            for x in 0..w {
                row_sum += src[x] as u64;
                cur[x + 1] = prev[x + 1] + row_sum;
            }
        }
    }

    /// Sum of the `h × w` window anchored at `(y, x)` (must be in bounds).
    #[inline]
    pub fn window_sum(&self, y: usize, x: usize, h: usize, w: usize) -> u64 {
        let s = self.width + 1;
        let (y1, x1) = (y + h, x + w);
        self.sat[y1 * s + x1] + self.sat[y * s + x] - self.sat[y * s + x1] - self.sat[y1 * s + x]
    }

    /// Sum over rows `0..y` restricted to columns `x..x+w`. Consecutive `y`
    /// values differ by exactly one row band, which is how the row-band
    /// bound walks a window in O(h) lookups instead of O(h) window sums.
    #[inline]
    fn row_prefix(&self, y: usize, x: usize, w: usize) -> u64 {
        let s = self.width + 1;
        self.sat[y * s + x + w] - self.sat[y * s + x]
    }

    /// Sum over columns `0..x` restricted to rows `y..y+h` (the transposed
    /// companion of [`IntegralImage::row_prefix`]).
    #[inline]
    fn col_prefix(&self, y: usize, h: usize, x: usize) -> u64 {
        let s = self.width + 1;
        self.sat[(y + h) * s + x] - self.sat[y * s + x]
    }
}

/// Level-0 SAD lower bound: `|Σ new − Σ key|` over the two windows.
///
/// Admissible by the triangle inequality (`|Σ(a−b)| ≤ Σ|a−b|`); O(1).
#[inline]
pub fn sad_lower_bound(
    new_sat: &IntegralImage,
    key_sat: &IntegralImage,
    (ny, nx): (usize, usize),
    (ky, kx): (usize, usize),
    h: usize,
    w: usize,
) -> u64 {
    new_sat
        .window_sum(ny, nx, h, w)
        .abs_diff(key_sat.window_sum(ky, kx, h, w))
}

/// Level-1 per-row SAD lower bound: `Σ_r |Σ new_row_r − Σ key_row_r|`.
///
/// The rows partition the window, so the bound is admissible (each term is
/// ≤ that row's SAD) and dominates [`sad_lower_bound`] (splitting a sum
/// into absolute parts can only grow it). Costs O(h): one summed-area band
/// prefix per row boundary, no per-pixel work.
#[inline]
pub fn sad_lower_bound_rows(
    new_sat: &IntegralImage,
    key_sat: &IntegralImage,
    (ny, nx): (usize, usize),
    (ky, kx): (usize, usize),
    h: usize,
    w: usize,
) -> u64 {
    let mut acc = 0u64;
    let mut pn = new_sat.row_prefix(ny, nx, w);
    let mut pk = key_sat.row_prefix(ky, kx, w);
    for r in 1..=h {
        let cn = new_sat.row_prefix(ny + r, nx, w);
        let ck = key_sat.row_prefix(ky + r, kx, w);
        acc += (cn - pn).abs_diff(ck - pk);
        pn = cn;
        pk = ck;
    }
    acc
}

/// Level-1 per-column-strip SAD lower bound:
/// `Σ_c |Σ new_col_c − Σ key_col_c|` — [`sad_lower_bound_rows`] transposed,
/// O(w). Its band prefixes walk one summed-area row contiguously, so it is
/// the cheaper of the two level-1 bounds and is evaluated first.
#[inline]
pub fn sad_lower_bound_cols(
    new_sat: &IntegralImage,
    key_sat: &IntegralImage,
    (ny, nx): (usize, usize),
    (ky, kx): (usize, usize),
    h: usize,
    w: usize,
) -> u64 {
    let mut acc = 0u64;
    let mut pn = new_sat.col_prefix(ny, h, nx);
    let mut pk = key_sat.col_prefix(ky, h, kx);
    for c in 1..=w {
        let cn = new_sat.col_prefix(ny, h, nx + c);
        let ck = key_sat.col_prefix(ky, h, kx + c);
        acc += (cn - pn).abs_diff(ck - pk);
        pn = cn;
        pk = ck;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(h: usize, w: usize) -> GrayImage {
        GrayImage::from_fn(h, w, |y, x| (((y * 31 + x * 17) ^ (y + x * 3)) % 253) as u8)
    }

    fn sad_window_naive(
        new: &GrayImage,
        key: &GrayImage,
        (ny, nx): (usize, usize),
        (ky, kx): (usize, usize),
        h: usize,
        w: usize,
    ) -> u32 {
        let mut acc = 0u32;
        for y in 0..h {
            for x in 0..w {
                let a = new.get(ny + y, nx + x) as i32;
                let b = key.get(ky + y, kx + x) as i32;
                acc += (a - b).unsigned_abs();
            }
        }
        acc
    }

    #[test]
    fn sad_row_matches_scalar() {
        for len in [0usize, 1, 7, 8, 9, 16, 23] {
            let a: Vec<u8> = (0..len).map(|i| (i * 37 % 251) as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 91 % 251) as u8).collect();
            let expect: u32 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| (x as i32 - y as i32).unsigned_abs())
                .sum();
            assert_eq!(sad_row(&a, &b), expect, "len {len}");
        }
    }

    #[test]
    fn sad_window_matches_naive() {
        let new = textured(24, 20);
        let key = textured(24, 20).translate(1, 2, 9);
        for (anchor_n, anchor_k, h, w) in [
            ((0, 0), (0, 0), 8, 8),
            ((3, 5), (1, 2), 8, 8),
            ((10, 7), (12, 9), 4, 4),
            ((0, 0), (16, 12), 8, 7),
            ((5, 5), (5, 5), 1, 1),
        ] {
            assert_eq!(
                sad_window(&new, &key, anchor_n, anchor_k, h, w),
                sad_window_naive(&new, &key, anchor_n, anchor_k, h, w),
            );
        }
    }

    #[test]
    fn integral_image_window_sums() {
        let img = textured(13, 17);
        let sat = IntegralImage::new(&img);
        for (y, x, h, w) in [(0, 0, 13, 17), (0, 0, 1, 1), (5, 3, 4, 8), (12, 16, 1, 1)] {
            let mut expect = 0u64;
            for yy in y..y + h {
                for xx in x..x + w {
                    expect += img.get(yy, xx) as u64;
                }
            }
            assert_eq!(sat.window_sum(y, x, h, w), expect, "({y},{x},{h},{w})");
        }
    }

    #[test]
    fn lower_bound_property_holds() {
        // |Σa − Σb| ≤ SAD(a, b): the pruning invariant of the fast path.
        let new = textured(16, 16);
        let key = textured(16, 16).translate(2, 1, 100);
        let sat_new = IntegralImage::new(&new);
        let sat_key = IntegralImage::new(&key);
        for y in 0..8 {
            for x in 0..8 {
                let a = sat_new.window_sum(y, x, 8, 8);
                let b = sat_key.window_sum(y + 1, x + 1, 8, 8);
                let lb = a.abs_diff(b);
                let sad = sad_window(&new, &key, (y, x), (y + 1, x + 1), 8, 8) as u64;
                assert!(lb <= sad, "lb {lb} > sad {sad} at ({y},{x})");
                assert_eq!(
                    lb,
                    sad_lower_bound(&sat_new, &sat_key, (y, x), (y + 1, x + 1), 8, 8)
                );
            }
        }
    }

    #[test]
    fn level1_bounds_dominate_level0_and_stay_admissible() {
        // The bound hierarchy on every window shape, including ragged ones:
        //   level-0 ≤ level-1 (rows/cols) ≤ true SAD.
        let new = textured(20, 17);
        let key = textured(20, 17).translate(1, 2, 63);
        let sat_new = IntegralImage::new(&new);
        let sat_key = IntegralImage::new(&key);
        for &(na, ka, h, w) in &[
            ((0usize, 0usize), (0usize, 0usize), 8usize, 8usize),
            ((3, 5), (1, 2), 7, 5),
            ((10, 7), (12, 9), 1, 4),
            ((0, 0), (11, 8), 9, 1),
            ((5, 5), (5, 5), 3, 3),
        ] {
            let l0 = sad_lower_bound(&sat_new, &sat_key, na, ka, h, w);
            let rows = sad_lower_bound_rows(&sat_new, &sat_key, na, ka, h, w);
            let cols = sad_lower_bound_cols(&sat_new, &sat_key, na, ka, h, w);
            let sad = sad_window(&new, &key, na, ka, h, w) as u64;
            assert!(l0 <= rows && l0 <= cols, "level-1 must dominate level-0");
            assert!(rows <= sad, "rows bound {rows} > sad {sad}");
            assert!(cols <= sad, "cols bound {cols} > sad {sad}");
        }
    }

    #[test]
    fn level1_row_bound_exact_on_row_disjoint_difference() {
        // A frame pair differing by a constant per row: each row's |Δ| is
        // the row's exact SAD, so the per-row bound must be tight while
        // level-0 may cancel across rows.
        let key = GrayImage::filled(8, 8, 100);
        let new = GrayImage::from_fn(8, 8, |y, _| if y % 2 == 0 { 110 } else { 90 });
        let sat_new = IntegralImage::new(&new);
        let sat_key = IntegralImage::new(&key);
        let sad = sad_window(&new, &key, (0, 0), (0, 0), 8, 8) as u64;
        let rows = sad_lower_bound_rows(&sat_new, &sat_key, (0, 0), (0, 0), 8, 8);
        let l0 = sad_lower_bound(&sat_new, &sat_key, (0, 0), (0, 0), 8, 8);
        assert_eq!(rows, sad, "row bound is exact here");
        assert_eq!(l0, 0, "whole-window sums cancel");
    }
}
