//! Precomputed (codec-supplied) motion vectors.
//!
//! The paper's related-work and future-work sections point at reusing "the
//! motion vectors stored in compressed video data" (§II-C1, §VI, citing
//! Zhang & Sze's FAST [26]): when the camera pipeline already ran a video
//! encoder, its block motion vectors come for free and could replace RFBME.
//! [`PrecomputedField`] adapts such an externally-supplied field to the
//! [`MotionEstimator`] interface so the Fig 14 harness and the AMC executor
//! can consume codec vectors unchanged — with zero motion-estimation ops,
//! which is exactly the trade-off the paper sketches.

use crate::field::VectorField;
use crate::{MotionEstimator, MotionResult};
use eva2_tensor::GrayImage;

/// A motion "estimator" that replays an externally-computed vector field
/// (e.g. decoded from a video bitstream) instead of analysing pixels.
///
/// The wrapped field uses the same gather convention as the rest of the
/// crate. The optional `residual_error` models the codec's own residual
/// energy, which a key-frame policy can threshold exactly like RFBME's
/// block error.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecomputedField {
    field: VectorField,
    residual_error: Option<u64>,
}

impl PrecomputedField {
    /// Wraps a codec-supplied field.
    pub fn new(field: VectorField) -> Self {
        Self {
            field,
            residual_error: None,
        }
    }

    /// Attaches the codec's residual energy (sum of absolute residuals) so
    /// adaptive key-frame policies keep working.
    pub fn with_residual_error(mut self, residual: u64) -> Self {
        self.residual_error = Some(residual);
        self
    }

    /// The wrapped field.
    pub fn field(&self) -> &VectorField {
        &self.field
    }
}

impl MotionEstimator for PrecomputedField {
    fn name(&self) -> &str {
        "Precomputed (codec vectors)"
    }

    fn estimate(&self, _key: &GrayImage, _new: &GrayImage) -> MotionResult {
        MotionResult {
            field: self.field.clone(),
            // The whole point: the vectors are free at inference time.
            ops: 0,
            total_error: self.residual_error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::MotionVector;

    #[test]
    fn replays_field_with_zero_ops() {
        let field = VectorField::uniform(4, 4, 8, MotionVector::new(1.0, -2.0));
        let est = PrecomputedField::new(field.clone());
        let img = GrayImage::zeros(32, 32);
        let r = est.estimate(&img, &img);
        assert_eq!(r.field, field);
        assert_eq!(r.ops, 0);
        assert_eq!(r.total_error, None);
    }

    #[test]
    fn residual_error_feeds_policies() {
        let field = VectorField::zeros(2, 2, 8);
        let est = PrecomputedField::new(field).with_residual_error(1234);
        let img = GrayImage::zeros(16, 16);
        assert_eq!(est.estimate(&img, &img).total_error, Some(1234));
    }

    #[test]
    fn name_identifies_source() {
        let est = PrecomputedField::new(VectorField::zeros(1, 1, 1));
        assert!(est.name().contains("codec"));
    }

    /// Codec vectors drive the AMC warp path identically to RFBME vectors:
    /// a uniform stride-aligned codec field reproduces an exact activation
    /// translation.
    #[test]
    fn codec_vectors_warp_like_rfbme_vectors() {
        use crate::rfbme::{RfGeometry, Rfbme, SearchParams};
        let key = GrayImage::from_fn(40, 40, |y, x| {
            (120.0 + 60.0 * ((y as f32 * 0.33).sin() * (x as f32 * 0.27).cos())) as u8
        });
        let new = key.translate(0, 4, 0);
        let rf = RfGeometry {
            size: 8,
            stride: 4,
            padding: 0,
        };
        let rfbme = Rfbme::new(rf, SearchParams { radius: 4, step: 1 }).estimate(&key, &new);
        let g = rfbme.field.grid_h();
        let codec = PrecomputedField::new(VectorField::uniform(
            g,
            rfbme.field.grid_w(),
            4,
            MotionVector::new(0.0, -4.0),
        ));
        let replayed = codec.estimate(&key, &new);
        // Interior agreement between measured and codec-supplied vectors.
        for y in 1..g - 1 {
            for x in 2..g - 1 {
                assert_eq!(rfbme.field.get(y, x), replayed.field.get(y, x), "({y},{x})");
            }
        }
    }
}
