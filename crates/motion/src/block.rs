//! Classic block-matching motion estimation.
//!
//! These are the video-codec algorithms the paper builds on ("block matching
//! algorithms, often used in video codecs, work by taking a block of pixels
//! and comparing it to a window of nearby blocks in the reference frame",
//! §II-C1, citing [19, 20]):
//!
//! * [`SearchStrategy::Exhaustive`] — full search; with `block = rf.size`
//!   and anchors on the receptive-field grid this is the *unoptimized
//!   RFBME* variant of the §IV-A analysis (no tile reuse).
//! * [`SearchStrategy::ThreeStep`] — the three-step search of Li, Zeng &
//!   Liou [20].
//! * [`SearchStrategy::Diamond`] — the diamond search of Zhu & Ma [19].

use crate::field::{MotionVector, VectorField};
use crate::{MotionEstimator, MotionResult};
use eva2_tensor::GrayImage;

/// The search organisation used by a [`BlockMatcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchStrategy {
    /// Evaluate every offset in the window (optimal, most expensive).
    Exhaustive,
    /// Logarithmic three-step search.
    ThreeStep,
    /// Diamond search (large/small diamond pattern).
    Diamond,
}

/// Block-matching motion estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMatcher {
    /// Block side length in pixels.
    pub block: usize,
    /// Pixel distance between the anchors of adjacent blocks (the grid
    /// pitch of the output field). Usually equal to `block`; RFBME-style
    /// overlapping anchors use a smaller pitch.
    pub grid_stride: usize,
    /// Maximum displacement searched.
    pub radius: usize,
    /// Offset subsampling for the exhaustive strategy.
    pub step: usize,
    /// Search organisation.
    pub strategy: SearchStrategy,
}

struct SadCounter {
    ops: u64,
}

impl SadCounter {
    /// SAD between the block at `(by, bx)` in `new` and the block at
    /// `(by + dy, bx + dx)` in `key`; `None` when out of bounds.
    #[allow(clippy::too_many_arguments)] // block geometry spelled out
    fn sad(
        &mut self,
        key: &GrayImage,
        new: &GrayImage,
        block: usize,
        by: usize,
        bx: usize,
        dy: isize,
        dx: isize,
    ) -> Option<u64> {
        let ky = by as isize + dy;
        let kx = bx as isize + dx;
        if ky < 0
            || kx < 0
            || ky + block as isize > key.height() as isize
            || kx + block as isize > key.width() as isize
        {
            return None;
        }
        let mut sum = 0u64;
        for py in 0..block {
            for px in 0..block {
                let a = new.get(by + py, bx + px) as i32;
                let b = key.get(ky as usize + py, kx as usize + px) as i32;
                sum += (a - b).unsigned_abs() as u64;
            }
        }
        self.ops += (block * block) as u64;
        Some(sum)
    }
}

impl BlockMatcher {
    /// A codec-style matcher: non-overlapping blocks of side `block`.
    pub fn codec(block: usize, radius: usize, strategy: SearchStrategy) -> Self {
        Self {
            block,
            grid_stride: block,
            radius,
            step: 1,
            strategy,
        }
    }

    fn grid_len(&self, n: usize) -> usize {
        if n < self.block {
            0
        } else {
            (n - self.block) / self.grid_stride + 1
        }
    }

    fn search_block(
        &self,
        key: &GrayImage,
        new: &GrayImage,
        counter: &mut SadCounter,
        by: usize,
        bx: usize,
    ) -> (MotionVector, u64) {
        match self.strategy {
            SearchStrategy::Exhaustive => {
                let step = self.step.max(1) as isize;
                let r = self.radius as isize;
                let mut best = (MotionVector::ZERO, u64::MAX);
                let mut dy = -r;
                while dy <= r {
                    let mut dx = -r;
                    while dx <= r {
                        if let Some(s) = counter.sad(key, new, self.block, by, bx, dy, dx) {
                            let mag = (dy * dy + dx * dx) as f32;
                            let bm = best.0.dy * best.0.dy + best.0.dx * best.0.dx;
                            if s < best.1 || (s == best.1 && mag < bm) {
                                best = (MotionVector::new(dy as f32, dx as f32), s);
                            }
                        }
                        dx += step;
                    }
                    dy += step;
                }
                if best.1 == u64::MAX {
                    (MotionVector::ZERO, 0)
                } else {
                    best
                }
            }
            SearchStrategy::ThreeStep => self.three_step(key, new, counter, by, bx),
            SearchStrategy::Diamond => self.diamond(key, new, counter, by, bx),
        }
    }

    #[allow(clippy::too_many_arguments)] // block geometry spelled out
    fn eval_candidates(
        &self,
        key: &GrayImage,
        new: &GrayImage,
        counter: &mut SadCounter,
        by: usize,
        bx: usize,
        center: (isize, isize),
        pattern: &[(isize, isize)],
        best: &mut ((isize, isize), u64),
    ) {
        for &(py, px) in pattern {
            let dy = center.0 + py;
            let dx = center.1 + px;
            if dy.unsigned_abs() > self.radius || dx.unsigned_abs() > self.radius {
                continue;
            }
            if let Some(s) = counter.sad(key, new, self.block, by, bx, dy, dx) {
                if s < best.1 {
                    *best = ((dy, dx), s);
                }
            }
        }
    }

    fn three_step(
        &self,
        key: &GrayImage,
        new: &GrayImage,
        counter: &mut SadCounter,
        by: usize,
        bx: usize,
    ) -> (MotionVector, u64) {
        let mut best = ((0isize, 0isize), u64::MAX);
        if let Some(s) = counter.sad(key, new, self.block, by, bx, 0, 0) {
            best = ((0, 0), s);
        }
        let mut step = (self.radius.div_ceil(2)).max(1) as isize;
        let mut center = (0isize, 0isize);
        loop {
            let pattern: Vec<(isize, isize)> = (-1..=1)
                .flat_map(|a| (-1..=1).map(move |b| (a * step, b * step)))
                .filter(|&p| p != (0, 0))
                .collect();
            self.eval_candidates(key, new, counter, by, bx, center, &pattern, &mut best);
            center = best.0;
            if step == 1 {
                break;
            }
            step /= 2;
        }
        if best.1 == u64::MAX {
            (MotionVector::ZERO, 0)
        } else {
            (
                MotionVector::new(best.0 .0 as f32, best.0 .1 as f32),
                best.1,
            )
        }
    }

    fn diamond(
        &self,
        key: &GrayImage,
        new: &GrayImage,
        counter: &mut SadCounter,
        by: usize,
        bx: usize,
    ) -> (MotionVector, u64) {
        const LDSP: [(isize, isize); 8] = [
            (-2, 0),
            (-1, -1),
            (-1, 1),
            (0, -2),
            (0, 2),
            (1, -1),
            (1, 1),
            (2, 0),
        ];
        const SDSP: [(isize, isize); 4] = [(-1, 0), (0, -1), (0, 1), (1, 0)];
        let mut best = ((0isize, 0isize), u64::MAX);
        if let Some(s) = counter.sad(key, new, self.block, by, bx, 0, 0) {
            best = ((0, 0), s);
        }
        // Large diamond until the centre is best (bounded iterations).
        for _ in 0..(2 * self.radius + 1) {
            let center = best.0;
            self.eval_candidates(key, new, counter, by, bx, center, &LDSP, &mut best);
            if best.0 == center {
                break;
            }
        }
        // Final small diamond refinement.
        let center = best.0;
        self.eval_candidates(key, new, counter, by, bx, center, &SDSP, &mut best);
        if best.1 == u64::MAX {
            (MotionVector::ZERO, 0)
        } else {
            (
                MotionVector::new(best.0 .0 as f32, best.0 .1 as f32),
                best.1,
            )
        }
    }

    /// Runs block matching over the whole frame.
    pub fn run(&self, key: &GrayImage, new: &GrayImage) -> MotionResult {
        assert_eq!(
            (key.height(), key.width()),
            (new.height(), new.width()),
            "frame size mismatch"
        );
        let grid_h = self.grid_len(new.height());
        let grid_w = self.grid_len(new.width());
        let mut field = VectorField::zeros(grid_h, grid_w, self.grid_stride);
        let mut counter = SadCounter { ops: 0 };
        let mut total_error = 0u64;
        for gy in 0..grid_h {
            for gx in 0..grid_w {
                let (v, err) = self.search_block(
                    key,
                    new,
                    &mut counter,
                    gy * self.grid_stride,
                    gx * self.grid_stride,
                );
                field.set(gy, gx, v);
                total_error += err;
            }
        }
        MotionResult {
            field,
            ops: counter.ops,
            total_error: Some(total_error),
        }
    }
}

impl MotionEstimator for BlockMatcher {
    fn name(&self) -> &str {
        match self.strategy {
            SearchStrategy::Exhaustive => "BlockMatch-Exhaustive",
            SearchStrategy::ThreeStep => "BlockMatch-ThreeStep",
            SearchStrategy::Diamond => "BlockMatch-Diamond",
        }
    }

    fn estimate(&self, key: &GrayImage, new: &GrayImage) -> MotionResult {
        self.run(key, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smooth multi-frequency texture: fast searches (TSS, diamond) assume a
    /// roughly monotonic SAD surface, which noise-like textures violate.
    fn textured(h: usize, w: usize) -> GrayImage {
        GrayImage::from_fn(h, w, |y, x| {
            let v = (y as f32 * 0.30).sin()
                + (x as f32 * 0.22).cos()
                + ((y + 2 * x) as f32 * 0.13).sin();
            (127.0 + v * 40.0) as u8
        })
    }

    fn all_strategies() -> [SearchStrategy; 3] {
        [
            SearchStrategy::Exhaustive,
            SearchStrategy::ThreeStep,
            SearchStrategy::Diamond,
        ]
    }

    #[test]
    fn identical_frames_zero_motion_all_strategies() {
        let img = textured(32, 32);
        for strat in all_strategies() {
            let m = BlockMatcher::codec(8, 4, strat);
            let r = m.run(&img, &img);
            assert_eq!(r.total_error, Some(0), "{strat:?}");
            assert!(
                r.field.iter().all(|v| *v == MotionVector::ZERO),
                "{strat:?}"
            );
        }
    }

    #[test]
    fn translation_recovered_all_strategies() {
        let key = textured(48, 48);
        let new = key.translate(2, -3, 0);
        for strat in all_strategies() {
            let m = BlockMatcher::codec(8, 4, strat);
            let r = m.run(&key, &new);
            let center = r.field.get(2, 2);
            assert_eq!(
                center,
                MotionVector::new(-2.0, 3.0),
                "{strat:?} failed: {center:?}"
            );
        }
    }

    #[test]
    fn fast_searches_use_fewer_ops() {
        let key = textured(64, 64);
        let new = key.translate(1, 2, 0);
        let ex = BlockMatcher::codec(8, 7, SearchStrategy::Exhaustive).run(&key, &new);
        let ts = BlockMatcher::codec(8, 7, SearchStrategy::ThreeStep).run(&key, &new);
        let dm = BlockMatcher::codec(8, 7, SearchStrategy::Diamond).run(&key, &new);
        assert!(ts.ops < ex.ops / 3, "TSS {} vs EX {}", ts.ops, ex.ops);
        assert!(dm.ops < ex.ops / 3, "DS {} vs EX {}", dm.ops, ex.ops);
    }

    #[test]
    fn exhaustive_error_is_lower_bound() {
        // The exhaustive search finds the global SAD minimum, so its total
        // error can never exceed the fast searches'.
        let key = textured(48, 48);
        let mut new = key.translate(3, 1, 0);
        // Add a deformation the fast searches may mis-track.
        for y in 20..28 {
            for x in 20..28 {
                new.set(y, x, 255 - new.get(y, x));
            }
        }
        let ex = BlockMatcher::codec(8, 4, SearchStrategy::Exhaustive)
            .run(&key, &new)
            .total_error
            .unwrap();
        for strat in [SearchStrategy::ThreeStep, SearchStrategy::Diamond] {
            let e = BlockMatcher::codec(8, 4, strat)
                .run(&key, &new)
                .total_error
                .unwrap();
            assert!(ex <= e, "{strat:?}: exhaustive {ex} > {e}");
        }
    }

    #[test]
    fn overlapping_anchors_make_denser_fields() {
        let key = textured(32, 32);
        let dense = BlockMatcher {
            block: 8,
            grid_stride: 4,
            radius: 2,
            step: 1,
            strategy: SearchStrategy::Exhaustive,
        };
        let r = dense.run(&key, &key);
        assert_eq!(r.field.grid_h(), 7);
        let codec = BlockMatcher::codec(8, 2, SearchStrategy::Exhaustive).run(&key, &key);
        assert_eq!(codec.field.grid_h(), 4);
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = all_strategies()
            .iter()
            .map(|&s| {
                let m = BlockMatcher::codec(8, 4, s);
                // Leak is fine in a test; we only compare strings.
                Box::leak(Box::new(m)).name()
            })
            .collect();
        assert_eq!(names.len(), 3);
        assert_ne!(names[0], names[1]);
        assert_ne!(names[1], names[2]);
    }
}
