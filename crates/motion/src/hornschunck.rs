//! Horn–Schunck dense variational optical flow.
//!
//! Stands in for the paper's FlowNet2-s baseline in the Fig 14 comparison.
//! FlowNet2-s is a *learned dense flow network*; its role in the paper's
//! experiment is "an expensive method that produces a dense, globally
//! smooth, high-quality field". Horn–Schunck [23] is the classical
//! variational method with exactly those properties (global smoothness
//! regularisation, dense output, iterative and costly), making it the
//! closest reproducible substitute without ImageNet-scale training
//! (DESIGN.md §2 records the substitution).

use crate::field::{MotionVector, VectorField};
use crate::{MotionEstimator, MotionResult};
use eva2_tensor::GrayImage;

/// Horn–Schunck estimator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HornSchunck {
    /// Smoothness weight α (larger = smoother field).
    pub alpha: f32,
    /// Jacobi iterations.
    pub iterations: usize,
    /// Pyramid levels for handling larger motion.
    pub levels: usize,
}

impl Default for HornSchunck {
    fn default() -> Self {
        Self {
            alpha: 8.0,
            iterations: 120,
            levels: 3,
        }
    }
}

fn downsample(img: &GrayImage) -> GrayImage {
    let h = (img.height() / 2).max(1);
    let w = (img.width() / 2).max(1);
    GrayImage::from_fn(h, w, |y, x| {
        let mut sum = 0u32;
        for dy in 0..2 {
            for dx in 0..2 {
                sum += img.get_clamped((2 * y + dy) as isize, (2 * x + dx) as isize) as u32;
            }
        }
        (sum / 4) as u8
    })
}

fn sample(img: &GrayImage, y: f32, x: f32) -> f32 {
    let y0 = y.floor();
    let x0 = x.floor();
    let v = y - y0;
    let u = x - x0;
    let y0 = y0 as isize;
    let x0 = x0 as isize;
    let p00 = img.get_clamped(y0, x0) as f32;
    let p01 = img.get_clamped(y0, x0 + 1) as f32;
    let p10 = img.get_clamped(y0 + 1, x0) as f32;
    let p11 = img.get_clamped(y0 + 1, x0 + 1) as f32;
    p00 * (1.0 - u) * (1.0 - v) + p01 * u * (1.0 - v) + p10 * (1.0 - u) * v + p11 * u * v
}

impl HornSchunck {
    /// One pyramid level of Horn–Schunck, warping `key` by the initial
    /// field (gather convention) and solving for the residual flow.
    fn solve_level(
        &self,
        key: &GrayImage,
        new: &GrayImage,
        field: &mut VectorField,
        ops: &mut u64,
    ) {
        let h = new.height();
        let w = new.width();
        // Warp the key frame toward the new frame using the current field.
        let warped: Vec<f32> = (0..h * w)
            .map(|i| {
                let y = i / w;
                let x = i % w;
                let d = field.get(y, x);
                sample(key, y as f32 + d.dy, x as f32 + d.dx)
            })
            .collect();
        *ops += (h * w * 8) as u64;
        // Gradients of the warped key frame and the temporal difference.
        let mut ix = vec![0.0f32; h * w];
        let mut iy = vec![0.0f32; h * w];
        let mut it = vec![0.0f32; h * w];
        let at = |v: &Vec<f32>, y: isize, x: isize| {
            let y = y.clamp(0, h as isize - 1) as usize;
            let x = x.clamp(0, w as isize - 1) as usize;
            v[y * w + x]
        };
        for y in 0..h {
            for x in 0..w {
                let yi = y as isize;
                let xi = x as isize;
                ix[y * w + x] = (at(&warped, yi, xi + 1) - at(&warped, yi, xi - 1)) / 2.0;
                iy[y * w + x] = (at(&warped, yi + 1, xi) - at(&warped, yi - 1, xi)) / 2.0;
                it[y * w + x] = warped[y * w + x] - new.get(y, x) as f32;
            }
        }
        *ops += (h * w * 5) as u64;
        // Jacobi iterations for the residual flow (du, dv).
        let mut du = vec![0.0f32; h * w];
        let mut dv = vec![0.0f32; h * w];
        let alpha2 = self.alpha * self.alpha;
        for _ in 0..self.iterations {
            let mut ndu = vec![0.0f32; h * w];
            let mut ndv = vec![0.0f32; h * w];
            for y in 0..h {
                for x in 0..w {
                    let yi = y as isize;
                    let xi = x as isize;
                    // 4-neighbour average.
                    let ubar = (at(&du, yi - 1, xi)
                        + at(&du, yi + 1, xi)
                        + at(&du, yi, xi - 1)
                        + at(&du, yi, xi + 1))
                        / 4.0;
                    let vbar = (at(&dv, yi - 1, xi)
                        + at(&dv, yi + 1, xi)
                        + at(&dv, yi, xi - 1)
                        + at(&dv, yi, xi + 1))
                        / 4.0;
                    let i = y * w + x;
                    let num = ix[i] * ubar + iy[i] * vbar + it[i];
                    let den = alpha2 + ix[i] * ix[i] + iy[i] * iy[i];
                    ndu[i] = ubar - ix[i] * num / den;
                    ndv[i] = vbar - iy[i] * num / den;
                }
            }
            du = ndu;
            dv = ndv;
            *ops += (h * w * 14) as u64;
        }
        // du/dv describe motion of the warped key toward new in *scatter*
        // sense for the intensity constancy I_w(p) + Ix·u + Iy·v = J(p);
        // solving that equation, the corrected gather displacement adds
        // (v, u) to the key-frame sampling position.
        for y in 0..h {
            for x in 0..w {
                let d = field.get(y, x);
                field.set(
                    y,
                    x,
                    MotionVector::new(d.dy + dv[y * w + x], d.dx + du[y * w + x]),
                );
            }
        }
    }

    /// Runs pyramidal Horn–Schunck, producing a dense per-pixel field.
    pub fn run(&self, key: &GrayImage, new: &GrayImage) -> MotionResult {
        assert_eq!(
            (key.height(), key.width()),
            (new.height(), new.width()),
            "frame size mismatch"
        );
        let mut keys = vec![key.clone()];
        let mut news = vec![new.clone()];
        for _ in 1..self.levels.max(1) {
            keys.push(downsample(keys.last().expect("level")));
            news.push(downsample(news.last().expect("level")));
        }
        let top = keys.len() - 1;
        let mut field = VectorField::zeros(keys[top].height(), keys[top].width(), 1);
        let mut ops = 0u64;
        for level in (0..=top).rev() {
            if level != top {
                let prev = field;
                let h = keys[level].height();
                let w = keys[level].width();
                field = VectorField::from_fn(h, w, 1, |y, x| {
                    prev.get(
                        (y / 2).min(prev.grid_h() - 1),
                        (x / 2).min(prev.grid_w() - 1),
                    )
                    .scaled(2.0)
                });
            }
            self.solve_level(&keys[level], &news[level], &mut field, &mut ops);
        }
        MotionResult {
            field,
            ops,
            total_error: None,
        }
    }
}

impl MotionEstimator for HornSchunck {
    fn name(&self) -> &str {
        "DenseFlow (Horn-Schunck, FlowNet2-s stand-in)"
    }

    fn estimate(&self, key: &GrayImage, new: &GrayImage) -> MotionResult {
        self.run(key, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_texture(h: usize, w: usize) -> GrayImage {
        GrayImage::from_fn(h, w, |y, x| {
            let v = (y as f32 * 0.31).sin()
                + (x as f32 * 0.23).cos()
                + ((2 * y + x) as f32 * 0.11).sin();
            (127.0 + v * 40.0) as u8
        })
    }

    fn fast() -> HornSchunck {
        HornSchunck {
            alpha: 8.0,
            iterations: 40,
            levels: 3,
        }
    }

    #[test]
    fn zero_motion_on_identical_frames() {
        let img = smooth_texture(32, 32);
        let r = fast().run(&img, &img);
        assert!(r.field.magnitude_mean() < 0.05);
    }

    #[test]
    fn recovers_translation_direction() {
        let key = smooth_texture(48, 48);
        let new = key.translate(2, 3, 128);
        let r = fast().run(&key, &new);
        let mut sum = (0.0f32, 0.0f32);
        let mut n = 0;
        for y in 12..36 {
            for x in 12..36 {
                let v = r.field.get(y, x);
                sum.0 += v.dy;
                sum.1 += v.dx;
                n += 1;
            }
        }
        let mean = (sum.0 / n as f32, sum.1 / n as f32);
        // Gather convention: expected ≈ (-2, -3). Allow generous tolerance —
        // HS underestimates magnitudes with strong smoothing.
        assert!(mean.0 < -0.8, "dy mean {mean:?}");
        assert!(mean.1 < -1.2, "dx mean {mean:?}");
    }

    #[test]
    fn field_is_smooth() {
        // The variational regulariser keeps neighbouring vectors close.
        let key = smooth_texture(40, 40);
        let new = key.translate(1, 1, 128);
        let r = fast().run(&key, &new);
        let mut jump_sum = 0.0f32;
        let mut n = 0;
        for y in 5..34 {
            for x in 5..34 {
                let a = r.field.get(y, x);
                let b = r.field.get(y, x + 1);
                jump_sum += (a.dy - b.dy).abs() + (a.dx - b.dx).abs();
                n += 1;
            }
        }
        let mean_jump = jump_sum / n as f32;
        assert!(
            mean_jump < 0.5,
            "mean field jump {mean_jump} too large for HS"
        );
    }

    #[test]
    fn is_more_expensive_than_block_matching() {
        // Fig 14's premise: the dense baseline costs far more than RFBME.
        use crate::rfbme::{RfGeometry, Rfbme, SearchParams};
        let key = smooth_texture(48, 48);
        let new = key.translate(1, 0, 128);
        let hs = fast().run(&key, &new);
        let rfbme = Rfbme::new(
            RfGeometry {
                size: 8,
                stride: 4,
                padding: 0,
            },
            SearchParams { radius: 4, step: 1 },
        )
        .estimate(&key, &new);
        assert!(
            hs.ops > rfbme.ops() * 5,
            "HS {} should dwarf RFBME {}",
            hs.ops,
            rfbme.ops()
        );
    }

    #[test]
    fn dense_output_dimensions() {
        let img = smooth_texture(20, 28);
        let r = fast().run(&img, &img);
        assert_eq!((r.field.grid_h(), r.field.grid_w()), (20, 28));
        assert_eq!(r.field.cell(), 1);
    }
}
