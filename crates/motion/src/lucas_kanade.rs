//! Pyramidal Lucas–Kanade optical flow.
//!
//! The classic iterative registration technique of Lucas & Kanade [22],
//! used as a pixel-level baseline in the paper's Fig 14 comparison. This
//! implementation uses a small image pyramid with iterative refinement per
//! level, producing a dense (`cell = 1`) vector field that the harness
//! averages down to receptive-field granularity ("we take the average vector
//! within each receptive field", §IV-E2).

use crate::field::{MotionVector, VectorField};
use crate::{MotionEstimator, MotionResult};
use eva2_tensor::GrayImage;

/// Lucas–Kanade estimator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LucasKanade {
    /// Half-width of the integration window (window side = `2w + 1`).
    pub window: usize,
    /// Pyramid levels (1 = single scale). Each level halves resolution.
    pub levels: usize,
    /// Newton iterations per level.
    pub iterations: usize,
}

impl Default for LucasKanade {
    fn default() -> Self {
        Self {
            window: 3,
            levels: 3,
            iterations: 3,
        }
    }
}

/// Box-filter 2× downsampling.
fn downsample(img: &GrayImage) -> GrayImage {
    let h = (img.height() / 2).max(1);
    let w = (img.width() / 2).max(1);
    GrayImage::from_fn(h, w, |y, x| {
        let mut sum = 0u32;
        for dy in 0..2 {
            for dx in 0..2 {
                sum += img.get_clamped((2 * y + dy) as isize, (2 * x + dx) as isize) as u32;
            }
        }
        (sum / 4) as u8
    })
}

/// Bilinear sample of a row-major `f32` grid with border clamping.
fn sample_f32(data: &[f32], h: usize, w: usize, y: f32, x: f32) -> f32 {
    let at = |yy: isize, xx: isize| {
        let yy = yy.clamp(0, h as isize - 1) as usize;
        let xx = xx.clamp(0, w as isize - 1) as usize;
        data[yy * w + xx]
    };
    let y0 = y.floor();
    let x0 = x.floor();
    let v = y - y0;
    let u = x - x0;
    let y0 = y0 as isize;
    let x0 = x0 as isize;
    at(y0, x0) * (1.0 - u) * (1.0 - v)
        + at(y0, x0 + 1) * u * (1.0 - v)
        + at(y0 + 1, x0) * (1.0 - u) * v
        + at(y0 + 1, x0 + 1) * u * v
}

/// Bilinear sample with border clamping, `f32` output.
fn sample(img: &GrayImage, y: f32, x: f32) -> f32 {
    let y0 = y.floor();
    let x0 = x.floor();
    let v = y - y0;
    let u = x - x0;
    let y0 = y0 as isize;
    let x0 = x0 as isize;
    let p00 = img.get_clamped(y0, x0) as f32;
    let p01 = img.get_clamped(y0, x0 + 1) as f32;
    let p10 = img.get_clamped(y0 + 1, x0) as f32;
    let p11 = img.get_clamped(y0 + 1, x0 + 1) as f32;
    p00 * (1.0 - u) * (1.0 - v) + p01 * u * (1.0 - v) + p10 * (1.0 - u) * v + p11 * u * v
}

impl LucasKanade {
    /// Estimates dense flow at one pyramid level, refining `init` (a field
    /// at this level's resolution). Returns the updated field and op count.
    fn refine_level(
        &self,
        key: &GrayImage,
        new: &GrayImage,
        init: &mut VectorField,
        ops: &mut u64,
    ) {
        let h = new.height();
        let w = new.width();
        let wr = self.window as isize;
        // Spatial gradients of the key frame (central differences).
        let mut gx = vec![0.0f32; h * w];
        let mut gy = vec![0.0f32; h * w];
        for y in 0..h {
            for x in 0..w {
                let yi = y as isize;
                let xi = x as isize;
                gx[y * w + x] =
                    (key.get_clamped(yi, xi + 1) as f32 - key.get_clamped(yi, xi - 1) as f32) / 2.0;
                gy[y * w + x] =
                    (key.get_clamped(yi + 1, xi) as f32 - key.get_clamped(yi - 1, xi) as f32) / 2.0;
            }
        }
        *ops += (h * w * 4) as u64;
        for y in 0..h {
            for x in 0..w {
                let mut d = init.get(y, x);
                for _ in 0..self.iterations {
                    // Accumulate the structure tensor and mismatch vector
                    // over the window.
                    let (mut a11, mut a12, mut a22) = (0.0f32, 0.0f32, 0.0f32);
                    let (mut b1, mut b2) = (0.0f32, 0.0f32);
                    for oy in -wr..=wr {
                        for ox in -wr..=wr {
                            let py = y as isize + oy;
                            let px = x as isize + ox;
                            // Forward-additive LK: gradients are sampled at
                            // the *warped* key-frame position p + d, which
                            // keeps the linearisation valid for the large
                            // initial displacements the pyramid hands down.
                            let ix = sample_f32(&gx, h, w, py as f32 + d.dy, px as f32 + d.dx);
                            let iy = sample_f32(&gy, h, w, py as f32 + d.dy, px as f32 + d.dx);
                            // Gather convention: new[p] ≈ key[p + d].
                            let diff = sample(key, py as f32 + d.dy, px as f32 + d.dx)
                                - new.get_clamped(py, px) as f32;
                            a11 += ix * ix;
                            a12 += ix * iy;
                            a22 += iy * iy;
                            b1 += ix * diff;
                            b2 += iy * diff;
                        }
                    }
                    let win = (2 * wr + 1) * (2 * wr + 1);
                    *ops += 8 * win as u64;
                    let det = a11 * a22 - a12 * a12;
                    if det.abs() < 1e-4 {
                        break; // untextured window: keep current estimate
                    }
                    let ddx = -(a22 * b1 - a12 * b2) / det;
                    let ddy = -(-a12 * b1 + a11 * b2) / det;
                    d = MotionVector::new(d.dy + ddy, d.dx + ddx);
                    if ddx.abs() < 0.01 && ddy.abs() < 0.01 {
                        break;
                    }
                }
                init.set(y, x, d);
            }
        }
    }

    /// Runs pyramidal LK, returning a dense per-pixel field.
    pub fn run(&self, key: &GrayImage, new: &GrayImage) -> MotionResult {
        assert_eq!(
            (key.height(), key.width()),
            (new.height(), new.width()),
            "frame size mismatch"
        );
        // Build pyramids (level 0 = full resolution).
        let mut keys = vec![key.clone()];
        let mut news = vec![new.clone()];
        for _ in 1..self.levels.max(1) {
            keys.push(downsample(keys.last().expect("level")));
            news.push(downsample(news.last().expect("level")));
        }
        let mut ops = 0u64;
        // Coarse-to-fine.
        let top = keys.len() - 1;
        let mut field = VectorField::zeros(keys[top].height(), keys[top].width(), 1);
        for level in (0..=top).rev() {
            if level != top {
                // Upsample the previous level's field (×2 in grid and
                // magnitude).
                let prev = field;
                let h = keys[level].height();
                let w = keys[level].width();
                field = VectorField::from_fn(h, w, 1, |y, x| {
                    let v = prev.get(
                        (y / 2).min(prev.grid_h() - 1),
                        (x / 2).min(prev.grid_w() - 1),
                    );
                    v.scaled(2.0)
                });
            }
            self.refine_level(&keys[level], &news[level], &mut field, &mut ops);
        }
        MotionResult {
            field,
            ops,
            total_error: None,
        }
    }
}

impl MotionEstimator for LucasKanade {
    fn name(&self) -> &str {
        "Lucas-Kanade"
    }

    fn estimate(&self, key: &GrayImage, new: &GrayImage) -> MotionResult {
        self.run(key, new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_texture(h: usize, w: usize) -> GrayImage {
        GrayImage::from_fn(h, w, |y, x| {
            let v =
                (y as f32 * 0.35).sin() + (x as f32 * 0.27).cos() + ((y + x) as f32 * 0.15).sin();
            (127.0 + v * 40.0) as u8
        })
    }

    #[test]
    fn zero_motion_on_identical_frames() {
        let img = smooth_texture(32, 32);
        let lk = LucasKanade::default();
        let r = lk.run(&img, &img);
        assert!(
            r.field.magnitude_mean() < 0.05,
            "mean {}",
            r.field.magnitude_mean()
        );
    }

    #[test]
    fn recovers_small_translation() {
        let key = smooth_texture(48, 48);
        let new = key.translate(1, 2, 128);
        let lk = LucasKanade::default();
        let r = lk.run(&key, &new);
        // Interior mean should be near the gather vector (-1, -2).
        let mut sum = (0.0f32, 0.0f32);
        let mut n = 0;
        for y in 8..40 {
            for x in 8..40 {
                let v = r.field.get(y, x);
                sum.0 += v.dy;
                sum.1 += v.dx;
                n += 1;
            }
        }
        let mean = (sum.0 / n as f32, sum.1 / n as f32);
        assert!(
            (mean.0 + 1.0).abs() < 0.5 && (mean.1 + 2.0).abs() < 0.5,
            "mean flow {mean:?} expected ≈ (-1, -2)"
        );
    }

    #[test]
    fn pyramid_handles_larger_motion_than_single_scale() {
        let key = smooth_texture(64, 64);
        let new = key.translate(0, 6, 128);
        let single = LucasKanade {
            window: 3,
            levels: 1,
            iterations: 3,
        };
        let pyramid = LucasKanade {
            window: 3,
            levels: 3,
            iterations: 3,
        };
        let err = |r: &MotionResult| {
            let mut e = 0.0f32;
            let mut n = 0;
            for y in 16..48 {
                for x in 16..48 {
                    let v = r.field.get(y, x);
                    e += (v.dy - 0.0).abs() + (v.dx + 6.0).abs();
                    n += 1;
                }
            }
            e / n as f32
        };
        let es = err(&single.run(&key, &new));
        let ep = err(&pyramid.run(&key, &new));
        assert!(ep < es, "pyramid {ep} should beat single {es}");
    }

    #[test]
    fn field_is_dense() {
        let img = smooth_texture(24, 24);
        let r = LucasKanade::default().run(&img, &img);
        assert_eq!(r.field.grid_h(), 24);
        assert_eq!(r.field.grid_w(), 24);
        assert_eq!(r.field.cell(), 1);
    }

    #[test]
    fn ops_counted() {
        let img = smooth_texture(16, 16);
        let r = LucasKanade::default().run(&img, &img);
        assert!(r.ops > 0);
        assert_eq!(r.total_error, None);
    }

    #[test]
    fn downsample_halves_dimensions() {
        let img = smooth_texture(32, 20);
        let d = downsample(&img);
        assert_eq!((d.height(), d.width()), (16, 10));
    }
}
