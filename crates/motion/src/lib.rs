//! Motion estimation for activation motion compensation.
//!
//! "Motion estimation is the problem of computing a vector field describing
//! the visual displacement between two input frames" (§II-C1 of the EVA²
//! paper). This crate implements the paper's new algorithm and every baseline
//! its evaluation compares against:
//!
//! * [`rfbme`] — **receptive field block motion estimation**, the paper's
//!   contribution (§III-A), structured exactly like the hardware: a
//!   [`rfbme::DiffTileProducer`] computing tile-level absolute differences
//!   and a [`rfbme::DiffTileConsumer`] aggregating them into receptive-field
//!   differences with rolling add/subtract reuse (Fig 8).
//! * [`block`] — classic block-matching searches (exhaustive, three-step,
//!   diamond) from the video-codec literature the paper cites [19, 20].
//! * [`lucas_kanade`] — the classic sparse-to-dense optical flow baseline of
//!   Fig 14.
//! * [`precomputed`] — codec-supplied motion vectors (the paper's §VI
//!   future-work direction), replayed through the same interface.
//! * [`hornschunck`] — dense variational optical flow, standing in for the
//!   FlowNet2-s learned-flow baseline of Fig 14 (see DESIGN.md §2 for the
//!   substitution argument).
//!
//! Every estimator reports an arithmetic **operation count** so the
//! first-order efficiency model of §IV-A can be evaluated empirically.
//!
//! # Example
//!
//! ```
//! use eva2_motion::rfbme::{Rfbme, RfGeometry, SearchParams};
//! use eva2_tensor::GrayImage;
//!
//! let key = GrayImage::from_fn(32, 32, |y, x| ((y * 7 + x * 5) % 251) as u8);
//! let new = key.translate(0, 2, 0); // pan right by 2 pixels
//! let rf = RfGeometry { size: 8, stride: 4, padding: 0 };
//! let rfbme = Rfbme::new(rf, SearchParams { radius: 4, step: 1 });
//! let result = rfbme.estimate(&key, &new);
//! // The dominant vector points 2 pixels left in the key frame... i.e. the
//! // block now at x was at x - 2... sign convention: pred[p] = key[p + v].
//! let v = result.field.get(3, 3);
//! assert_eq!((v.dy, v.dx), (0.0, -2.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod block;
pub mod field;
pub mod hornschunck;
pub mod lucas_kanade;
pub mod precomputed;
pub mod rfbme;
pub mod sad;

pub use field::{MotionVector, VectorField};
pub use rfbme::{RfGeometry, Rfbme, RfbmeScratch, SearchParams, SearchStats};

use eva2_tensor::GrayImage;

/// A motion-estimation outcome: the vector field plus instrumentation.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionResult {
    /// Estimated displacement field. `field.get(gy, gx)` is the motion of
    /// the cell whose top-left pixel is `(gy * cell, gx * cell)`; the sign
    /// convention is *gather*: the content now at `p` came from `p + v` in
    /// the key frame.
    pub field: VectorField,
    /// Total arithmetic operations performed (adds/mults), for the §IV-A
    /// first-order model.
    pub ops: u64,
    /// Aggregate matching error (sum of per-block minimum SADs) when the
    /// estimator is block-based; `None` for optical-flow methods. This is
    /// the signal the paper's *pixel compensation error* key-frame policy
    /// consumes (§II-C4).
    pub total_error: Option<u64>,
}

/// Common interface over all motion estimators, used by the Fig 14 harness.
pub trait MotionEstimator {
    /// Human-readable name for reports (e.g. `RFBME`, `Lucas-Kanade`).
    fn name(&self) -> &str;

    /// Estimates motion from `key` (reference) to `new` (current frame).
    fn estimate(&self, key: &GrayImage, new: &GrayImage) -> MotionResult;
}
