//! Property tests for the RFBME fast path: the two-level best-first search
//! must return, for every receptive field, a motion vector whose SAD *cost*
//! equals the exhaustive search's minimum — and, against the in-tree
//! reference model, the exact same *vectors* (the lexicographic
//! `(error, |offset|², row-major index)` tie-break contract). The level-1
//! bounds must be admissible (≤ the true SAD) on every window geometry,
//! including ragged ones.

use eva2_motion::rfbme::{RfGeometry, Rfbme, RfbmeResult, SearchParams};
use eva2_motion::sad::{
    sad_lower_bound, sad_lower_bound_cols, sad_lower_bound_rows, sad_window, IntegralImage,
};
use eva2_tensor::GrayImage;
use proptest::prelude::*;

/// Tile index range `[t0, t1)` of whole tiles covered by receptive field
/// `a` along one axis — reimplemented independently of the library (same
/// rule: partial tiles are ignored, §III-A).
fn tile_range(rf: RfGeometry, a: usize, tiles: usize) -> (usize, usize) {
    let s = rf.stride as isize;
    let origin = a as isize * s - rf.padding as isize;
    let end = origin + rf.size as isize;
    let t0 = origin.div_euclid(s) + if origin.rem_euclid(s) != 0 { 1 } else { 0 };
    let t1 = end.div_euclid(s);
    (
        (t0.max(0) as usize).min(tiles),
        (t1.max(0) as usize).min(tiles),
    )
}

/// Exhaustive per-receptive-field minimum SAD, straight from the paper's
/// definition with no reuse, no bounds, no early exit: for every offset,
/// sum the SADs of every whole tile the field covers; take the minimum over
/// offsets whose windows stay fully in bounds.
fn exhaustive_min_errors(
    rf: RfGeometry,
    params: SearchParams,
    key: &GrayImage,
    new: &GrayImage,
) -> Vec<u32> {
    let s = rf.stride.max(1);
    let (h, w) = (new.height(), new.width());
    let (tiles_y, tiles_x) = (h / s, w / s);
    let grid_h = rf.grid_len(h);
    let grid_w = rf.grid_len(w);
    let axis = params.offsets();
    let mut errors = Vec::with_capacity(grid_h * grid_w);
    for ay in 0..grid_h {
        for ax in 0..grid_w {
            let (ty0, ty1) = tile_range(rf, ay, tiles_y);
            let (tx0, tx1) = tile_range(rf, ax, tiles_x);
            let mut best = u32::MAX;
            if ty0 < ty1 && tx0 < tx1 {
                for &dy in &axis {
                    for &dx in &axis {
                        let mut sum = 0u64;
                        let mut valid = true;
                        'tiles: for ty in ty0..ty1 {
                            for tx in tx0..tx1 {
                                let ky = (ty * s) as isize + dy;
                                let kx = (tx * s) as isize + dx;
                                if ky < 0
                                    || kx < 0
                                    || ky + s as isize > h as isize
                                    || kx + s as isize > w as isize
                                {
                                    valid = false;
                                    break 'tiles;
                                }
                                sum += sad_window(
                                    new,
                                    key,
                                    (ty * s, tx * s),
                                    (ky as usize, kx as usize),
                                    s,
                                    s,
                                ) as u64;
                            }
                        }
                        if valid {
                            best = best.min(sum.min(u32::MAX as u64 - 1) as u32);
                        }
                    }
                }
            }
            // Fields with no valid offset report zero error (no evidence).
            errors.push(if best == u32::MAX { 0 } else { best });
        }
    }
    errors
}

/// Asserts the returned vectors *achieve* the returned errors: recompute
/// each field's SAD at its reported vector and compare. This is what makes
/// "ties may differ in vector, never in cost" checkable — whatever vector
/// the search picked must cost exactly the reported (minimal) error.
fn assert_vectors_achieve_errors(
    rf: RfGeometry,
    key: &GrayImage,
    new: &GrayImage,
    result: &RfbmeResult,
) {
    let s = rf.stride.max(1);
    let (h, w) = (new.height(), new.width());
    let (tiles_y, tiles_x) = (h / s, w / s);
    for gy in 0..result.field.grid_h() {
        for gx in 0..result.field.grid_w() {
            let err = result.errors[gy * result.field.grid_w() + gx];
            let v = result.field.get(gy, gx);
            let (dy, dx) = (v.dy as isize, v.dx as isize);
            let (ty0, ty1) = tile_range(rf, gy, tiles_y);
            let (tx0, tx1) = tile_range(rf, gx, tiles_x);
            if ty0 >= ty1 || tx0 >= tx1 {
                assert_eq!(err, 0, "empty field ({gy},{gx}) must report zero");
                continue;
            }
            let mut sum = 0u64;
            let mut valid = true;
            for ty in ty0..ty1 {
                for tx in tx0..tx1 {
                    let ky = (ty * s) as isize + dy;
                    let kx = (tx * s) as isize + dx;
                    if ky < 0
                        || kx < 0
                        || ky + s as isize > h as isize
                        || kx + s as isize > w as isize
                    {
                        valid = false;
                    } else {
                        sum += sad_window(
                            new,
                            key,
                            (ty * s, tx * s),
                            (ky as usize, kx as usize),
                            s,
                            s,
                        ) as u64;
                    }
                }
            }
            if valid {
                assert_eq!(
                    sum.min(u32::MAX as u64 - 1) as u32,
                    err,
                    "field ({gy},{gx}): reported vector does not achieve reported error"
                );
            } else {
                // Only the zero vector of a never-valid field may be out of
                // bounds, and those fields report zero error.
                assert_eq!((dy, dx), (0, 0), "invalid vector at ({gy},{gx})");
                assert_eq!(err, 0);
            }
        }
    }
}

fn frame_strategy(h: usize, w: usize) -> impl Strategy<Value = GrayImage> {
    proptest::collection::vec(0u8..=255, h * w).prop_map(move |v| GrayImage::from_vec(h, w, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn early_exit_search_cost_equals_exhaustive(
        key in frame_strategy(24, 24),
        noise_seed in 0u64..1000,
        dy in -3isize..=3,
        dx in -3isize..=3,
        radius in 1usize..=4,
        step in 1usize..=2,
    ) {
        // A translated + lightly corrupted frame: realistic motion with
        // occlusion-like disturbances that create SAD ties and near-ties.
        let mut new = key.translate(dy, dx, 77);
        let mut state = noise_seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for _ in 0..24 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let y = (state >> 33) as usize % 24;
            let x = (state >> 13) as usize % 24;
            let v = (state >> 5) as u8;
            new.set(y, x, v);
        }
        let rf = RfGeometry { size: 8, stride: 4, padding: 2 };
        let params = SearchParams { radius, step };
        let rfbme = Rfbme::new(rf, params);
        let fast = rfbme.estimate(&key, &new);
        let exhaustive = exhaustive_min_errors(rf, params, &key, &new);
        prop_assert_eq!(&fast.errors, &exhaustive, "per-field minimum SAD costs differ");
        assert_vectors_achieve_errors(rf, &key, &new, &fast);
        // All three in-tree implementations agree wholesale — vectors
        // included (the best-first search reproduces the reference's
        // tie-breaking exactly, under any visit order).
        let reference = rfbme.estimate_reference(&key, &new);
        prop_assert_eq!(&fast.errors, &reference.errors);
        prop_assert_eq!(fast.total_error, reference.total_error);
        prop_assert_eq!(fast.total_pixels, reference.total_pixels);
        prop_assert_eq!(&fast.field, &reference.field, "vector fields differ");
        let onelevel = rfbme.estimate_onelevel(&key, &new);
        prop_assert_eq!(&onelevel.errors, &reference.errors);
        prop_assert_eq!(&onelevel.field, &reference.field);
        // The pruning counters partition the candidates.
        let s = fast.search;
        prop_assert_eq!(
            s.candidates,
            s.rejected_level0 + s.rejected_level1 + s.refined
        );
    }

    #[test]
    fn level1_bounds_admissible_on_every_window_geometry(
        key in frame_strategy(21, 19),
        noise_seed in 0u64..1000,
        ny in 0usize..10,
        nx in 0usize..9,
        ky in 0usize..10,
        kx in 0usize..9,
        h in 1usize..=11,
        w in 1usize..=10,
    ) {
        // Arbitrary (including ragged, non-square, 1-wide/1-high) windows:
        // level-0 ≤ level-1 rows/cols ≤ true SAD, always.
        let mut state = noise_seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut new = key.clone();
        for _ in 0..40 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let y = (state >> 33) as usize % 21;
            let x = (state >> 13) as usize % 19;
            new.set(y, x, (state >> 5) as u8);
        }
        let sat_new = IntegralImage::new(&new);
        let sat_key = IntegralImage::new(&key);
        let na = (ny, nx);
        let ka = (ky, kx);
        prop_assume!(ny + h <= 21 && ky + h <= 21 && nx + w <= 19 && kx + w <= 19);
        let l0 = sad_lower_bound(&sat_new, &sat_key, na, ka, h, w);
        let rows = sad_lower_bound_rows(&sat_new, &sat_key, na, ka, h, w);
        let cols = sad_lower_bound_cols(&sat_new, &sat_key, na, ka, h, w);
        let sad = sad_window(&new, &key, na, ka, h, w) as u64;
        prop_assert!(l0 <= rows, "rows bound must dominate level 0");
        prop_assert!(l0 <= cols, "cols bound must dominate level 0");
        prop_assert!(rows <= sad, "rows bound {} > sad {}", rows, sad);
        prop_assert!(cols <= sad, "cols bound {} > sad {}", cols, sad);
    }

    #[test]
    fn high_motion_and_ragged_geometry_match_reference(
        key in frame_strategy(26, 22),
        dy in -9isize..=9,
        dx in -9isize..=9,
        size in 6usize..=14,
        stride in 3usize..=6,
        padding in 0usize..=4,
    ) {
        // Large motion (up to the window edge and beyond) over frames that
        // are NOT multiples of the stride — tile grids with leftover pixels
        // and clipped receptive fields at every border.
        let new = key.translate(dy, dx, 201);
        let rf = RfGeometry { size, stride, padding };
        let rfbme = Rfbme::new(rf, SearchParams { radius: 7, step: 1 });
        let fast = rfbme.estimate(&key, &new);
        let reference = rfbme.estimate_reference(&key, &new);
        prop_assert_eq!(&fast.errors, &reference.errors);
        prop_assert_eq!(fast.total_error, reference.total_error);
        prop_assert_eq!(fast.total_pixels, reference.total_pixels);
        prop_assert_eq!(&fast.field, &reference.field, "vector fields differ");
    }

    #[test]
    fn flat_frames_maximise_ties_but_never_change_cost(
        level_a in 0u8..=255,
        level_b in 0u8..=255,
        radius in 1usize..=3,
    ) {
        // Constant frames make *every* in-bounds offset an exact tie — the
        // adversarial case for tie-sensitive pruning.
        let key = GrayImage::filled(20, 20, level_a);
        let new = GrayImage::filled(20, 20, level_b);
        let rf = RfGeometry { size: 8, stride: 4, padding: 0 };
        let params = SearchParams { radius, step: 1 };
        let rfbme = Rfbme::new(rf, params);
        let fast = rfbme.estimate(&key, &new);
        let exhaustive = exhaustive_min_errors(rf, params, &key, &new);
        prop_assert_eq!(&fast.errors, &exhaustive);
        assert_vectors_achieve_errors(rf, &key, &new, &fast);
        // All-ties is the adversarial case for tie-sensitive pruning: the
        // kept vectors must still match the reference exactly.
        let reference = rfbme.estimate_reference(&key, &new);
        prop_assert_eq!(&fast.field, &reference.field, "tie-break divergence");
    }
}

#[test]
fn panning_scene_recovers_translation_with_exhaustive_cost() {
    // Deterministic panning case: an 8-frame rightward pan at 2 px/frame.
    // Every frame's estimate must (a) cost exactly the exhaustive minimum
    // and (b) point the interior vectors at the true motion.
    let textured = |shift: usize| {
        GrayImage::from_fn(48, 48, |y, x| {
            let xs = x + shift;
            (((y * 13 + xs * 29) ^ (y * xs / 5)) % 251) as u8
        })
    };
    let rf = RfGeometry {
        size: 16,
        stride: 8,
        padding: 0,
    };
    let params = SearchParams { radius: 6, step: 1 };
    let rfbme = Rfbme::new(rf, params);
    for t in 1..8usize {
        let key = textured(0);
        let new = textured(2 * t);
        if 2 * t > params.radius {
            break; // beyond the search window the estimate is unconstrained
        }
        let fast = rfbme.estimate(&key, &new);
        let exhaustive = exhaustive_min_errors(rf, params, &key, &new);
        assert_eq!(fast.errors, exhaustive, "pan {t}");
        assert_vectors_achieve_errors(rf, &key, &new, &fast);
        // textured(x + shift) slides the pattern left, so the gather
        // convention ("content at p came from p + v") gives v = +shift.
        let expect = 2.0 * t as f32;
        let mut hits = 0;
        let mut total = 0;
        // Skip the leftmost and rightmost columns: their rightward-offset
        // windows leave the frame, so the true offset is not searchable.
        for gy in 0..fast.field.grid_h() {
            for gx in 1..fast.field.grid_w() - 1 {
                total += 1;
                let v = fast.field.get(gy, gx);
                if v.dy == 0.0 && v.dx == expect {
                    hits += 1;
                }
            }
        }
        assert!(
            hits * 10 >= total * 8,
            "pan {t}: only {hits}/{total} fields found ({expect})"
        );
    }
}
