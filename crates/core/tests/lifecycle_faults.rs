//! Serving-lifecycle fault injection: the engine must deliver a correct
//! frame or a typed error under every scripted fault — never a panic, and
//! never a corrupted neighbour stream.
//!
//! Faulty inputs come from `eva2_video::faults`, which is deterministic
//! per `(seed, t)`: every scenario here replays bit-identically, which is
//! what lets the eviction/rehydration checks compare damaged streams
//! against fresh sessions frame by frame.

use eva2_cnn::zoo;
use eva2_core::error::AmcError;
use eva2_core::executor::{AmcConfig, AmcFrameResult};
use eva2_core::policy::PolicyConfig;
use eva2_core::serve::{Engine, EngineLimits, FrameOutcome, StreamSession};
use eva2_tensor::GrayImage;
use eva2_video::faults::{FaultKind, FaultScript, FaultyScene};
use eva2_video::scene::{Scene, SceneConfig};
use std::sync::Arc;

const TICKS: usize = 20;

fn scene(seed: u64) -> Scene {
    Scene::new(SceneConfig::detection(48, 48), seed)
}

/// CI hook: `EVA2_SERVE_WORKERS=N` re-runs this whole suite through the
/// threaded engine (a forced worker count, cf. `gemm_nn_threads`, so it
/// exercises the fan-out even on a single-CPU container). Outcomes are
/// bit-identical for any worker count, so every assertion holds unchanged.
fn workers_from_env(mut limits: EngineLimits) -> EngineLimits {
    if let Ok(n) = std::env::var("EVA2_SERVE_WORKERS") {
        limits.worker_threads = n
            .parse()
            .expect("EVA2_SERVE_WORKERS must be a thread count");
    }
    limits
}

fn engine(limits: EngineLimits) -> Engine {
    let net = Arc::new(zoo::tiny_fasterm(3).network);
    Engine::with_limits(net, AmcConfig::default(), workers_from_env(limits)).expect("valid config")
}

fn assert_result_eq(a: &AmcFrameResult, b: &AmcFrameResult, label: &str) {
    assert_eq!(a.is_key, b.is_key, "{label}: kind");
    assert_eq!(
        a.output.as_slice(),
        b.output.as_slice(),
        "{label}: output bits"
    );
    assert_eq!(a.macs_executed, b.macs_executed, "{label}: MACs");
    assert_eq!(a.rfbme_ops, b.rfbme_ops, "{label}: RFBME ops");
    assert_eq!(a.compression, b.compression, "{label}: compression");
}

/// The flagship property: a storm of dropped, corrupted, saturated,
/// resized, and cut frames across several streams, through an engine with
/// real backpressure and a residual confidence bound, produces only
/// correct frames or documented typed errors — and the engine keeps
/// serving afterwards.
#[test]
fn fault_storm_yields_correct_frames_or_typed_errors() {
    const STREAMS: usize = 4;
    let limits = EngineLimits {
        max_frames_per_tick: 3,
        max_key_frames_per_tick: 2,
        ..EngineLimits::unlimited()
    };
    let net = Arc::new(zoo::tiny_fasterm(3).network);
    let config = AmcConfig {
        max_residual_error: 8.0,
        ..AmcConfig::default()
    };
    let mut engine =
        Engine::with_limits(net, config, workers_from_env(limits)).expect("valid config");
    let mut sessions: Vec<StreamSession> = (0..STREAMS)
        .map(|_| engine.open_session().expect("capacity"))
        .collect();
    let mut streams: Vec<FaultyScene> = (0..STREAMS)
        .map(|s| {
            FaultyScene::new(
                scene(21 + s as u64),
                FaultScript::generate(100 + s as u64, TICKS, 0.35),
            )
        })
        .collect();

    let mut delivered = [0usize; STREAMS];
    let mut served = [0usize; STREAMS];
    for _ in 0..TICKS {
        let mut frames: Vec<Option<GrayImage>> = Vec::new();
        for stream in streams.iter_mut() {
            frames.push(stream.next_event().frame.map(|f| f.image));
        }
        let jobs = sessions
            .iter_mut()
            .zip(frames.iter())
            .filter_map(|(session, frame)| frame.as_ref().map(|f| (session, f)));
        let mut live = Vec::new();
        for (s, f) in frames.iter().enumerate() {
            if f.is_some() {
                delivered[s] += 1;
                live.push(s);
            }
        }
        for (&s, outcome) in live.iter().zip(engine.process_batch(jobs)) {
            match outcome {
                FrameOutcome::Predicted { frame, stats }
                | FrameOutcome::Key { frame, stats }
                | FrameOutcome::ForcedKey { frame, stats, .. } => {
                    served[s] += 1;
                    assert!(frame.output.as_slice().iter().all(|v| v.is_finite()));
                    assert_eq!(stats.frames, 1, "one frame's delta per outcome");
                }
                // The documented shed/reject set; anything else (or a
                // panic, which the harness would surface) fails the test.
                FrameOutcome::Shed(AmcError::BudgetExceeded { .. }) => {}
                FrameOutcome::Rejected(AmcError::FrameGeometryMismatch {
                    expected_height: 48,
                    expected_width: 48,
                    got_height: 24,
                    got_width: 24,
                }) => {}
                other => panic!("undocumented failure: {other:?}"),
            }
        }
    }
    for s in 0..STREAMS {
        assert!(served[s] > 0, "stream {s} starved");
        assert!(served[s] <= delivered[s]);
        assert_eq!(
            sessions[s].stats().frames,
            served[s],
            "stream {s}: only served frames are counted"
        );
    }
    // The engine is still healthy: a clean frame on every stream works.
    let clean = scene(99).render(0).image;
    for session in sessions.iter_mut() {
        engine
            .process(session, &clean)
            .expect("engine still serves");
    }
}

#[test]
fn resolution_change_is_a_typed_geometry_error() {
    let mut engine = engine(EngineLimits::unlimited());
    let mut session = engine.open_session().unwrap();
    let script = FaultScript::new(0, vec![(2, FaultKind::Downscale)]);
    let mut stream = FaultyScene::new(scene(5), script);
    for t in 0..4 {
        let frame = stream.next_event().frame.expect("nothing dropped").image;
        let result = engine.process(&mut session, &frame);
        if t == 2 {
            assert!(
                matches!(
                    result,
                    FrameOutcome::Rejected(AmcError::FrameGeometryMismatch {
                        expected_height: 48,
                        got_height: 24,
                        ..
                    })
                ),
                "t=2: {result:?}"
            );
        } else {
            result.expect("native-resolution frames serve normally");
        }
    }
    assert_eq!(
        session.stats().frames,
        3,
        "the rejected frame left no trace"
    );
}

/// Graceful degradation (§III-C): a hard scene cut that the key-frame
/// policy would happily predict through is caught by the residual
/// confidence bound and degraded to a key frame.
#[test]
fn scene_cut_is_degraded_to_a_forced_key_frame() {
    let net = Arc::new(zoo::tiny_fasterm(3).network);
    let config = AmcConfig {
        // A policy that never volunteers a key frame after the first...
        policy: PolicyConfig::BlockError {
            threshold: f32::INFINITY,
            max_gap: 1000,
        },
        // ...and a bound that rejects unexplained residuals.
        max_residual_error: 0.5,
        ..AmcConfig::default()
    };
    let mut engine = Engine::new(net, config).expect("valid config");
    let mut session = engine.open_session().unwrap();
    let cut_t = 4usize;
    let script = FaultScript::new(2, vec![(cut_t, FaultKind::SceneCut)]);
    let mut stream = FaultyScene::new(scene(13), script);
    for t in 0..8 {
        let frame = stream.next_event().frame.unwrap().image;
        let outcome = engine.process(&mut session, &frame);
        if t == cut_t {
            assert!(
                matches!(outcome, FrameOutcome::ForcedKey { .. }),
                "the cut frame must not be warped from stale state: {outcome:?}"
            );
        }
        outcome.expect("admitted");
    }
    assert!(
        session.stats().forced_keys >= 1,
        "the confidence bound, not the policy, spent the key: {:?}",
        session.stats()
    );
}

/// Transport loss: dropped frames simply widen the inter-frame gap. The
/// session serves every delivered frame and counts nothing for the holes.
#[test]
fn dropped_frames_widen_gaps_without_errors() {
    let mut engine = engine(EngineLimits::unlimited());
    let mut session = engine.open_session().unwrap();
    let script = FaultScript::new(
        3,
        vec![
            (1, FaultKind::DropFrame),
            (2, FaultKind::DropFrame),
            (5, FaultKind::DropFrame),
        ],
    );
    let mut stream = FaultyScene::new(scene(17), script);
    let mut delivered = 0;
    for _ in 0..8 {
        let Some(frame) = stream.next_event().frame else {
            continue;
        };
        delivered += 1;
        engine
            .process(&mut session, &frame.image)
            .expect("delivered frames all serve");
    }
    assert_eq!(delivered, 5);
    assert_eq!(session.stats().frames, 5);
}

/// Soft eviction mid-damaged-stream: the rehydrated session is
/// bit-identical, frame for frame and in its statistics, to a session
/// opened fresh at the eviction point — even while the stream is being
/// corrupted and cut.
#[test]
fn evicted_session_rehydrates_bit_identically_under_faults() {
    let mut engine = engine(EngineLimits::unlimited());
    let mut session = engine.open_session().unwrap();
    let script = FaultScript::new(
        7,
        vec![
            (2, FaultKind::Corrupt { fraction: 0.2 }),
            (5, FaultKind::SceneCut),
            (7, FaultKind::Saturate),
        ],
    );
    let mut stream = FaultyScene::new(scene(29), script);
    let frames: Vec<GrayImage> = (0..10)
        .map(|_| stream.next_event().frame.unwrap().image)
        .collect();

    for frame in &frames[..4] {
        engine.process(&mut session, frame).expect("admitted");
    }
    assert!(session.evict_state(), "key state was present");
    let before = session.stats();
    assert_eq!(before.evictions, 1);

    let mut fresh = engine.open_session().unwrap();
    for (t, frame) in frames[4..].iter().enumerate() {
        let a = engine.process(&mut session, frame).expect("admitted");
        let b = engine.process(&mut fresh, frame).expect("admitted");
        if t == 0 {
            assert!(a.is_key, "rehydration re-keys");
        }
        assert_result_eq(&a, &b, &format!("post-eviction frame {t}"));
    }
    assert_eq!(session.stats().delta_since(&before), fresh.stats());
}

#[test]
fn hard_eviction_frees_capacity_and_revokes_admission() {
    let mut engine = engine(EngineLimits {
        max_sessions: 1,
        ..EngineLimits::unlimited()
    });
    let mut session = engine.open_session().unwrap();
    let frame = scene(31).render(0).image;
    engine.process(&mut session, &frame).expect("admitted");
    match engine.open_session() {
        Err(AmcError::EngineAtCapacity { limit: 1 }) => {}
        other => panic!("expected EngineAtCapacity, got {other:?}"),
    }
    engine.evict_session(&mut session).expect("own session");
    assert!(session.is_evicted());
    match engine.process(&mut session, &frame) {
        FrameOutcome::Rejected(AmcError::SessionEvicted { session: id }) => {
            assert_eq!(id, session.id())
        }
        other => panic!("expected SessionEvicted, got {other:?}"),
    }
    // The revoked slot is free for a replacement stream.
    let mut replacement = engine.open_session().expect("slot was freed");
    engine.process(&mut replacement, &frame).expect("admitted");
}

/// `maintain` holds the engine-wide audited footprint under the budget by
/// LRU-evicting stored key state, and the victims rehydrate on their next
/// frame.
#[test]
fn maintain_enforces_total_memory_budget_under_load() {
    // Probe the footprint of a session with and without key state so the
    // budget can be set meaningfully for this network.
    let mut probe_engine = engine(EngineLimits::unlimited());
    let mut probe = probe_engine.open_session().unwrap();
    let base = probe.memory_footprint();
    let frame = scene(37).render(0).image;
    probe_engine.process(&mut probe, &frame).unwrap();
    let with_state = probe.memory_footprint();
    assert!(with_state > base, "key state must be audited");

    // Room for three bare sessions plus between one and two key states.
    let budget = 3 * base + 2 * (with_state - base) - 1;
    let mut engine = engine(EngineLimits {
        max_total_bytes: budget,
        ..EngineLimits::unlimited()
    });
    let mut sessions: Vec<StreamSession> = (0..3).map(|_| engine.open_session().unwrap()).collect();
    let mut scenes: Vec<Scene> = (41..44).map(scene).collect();
    for t in 0..3 {
        let frames: Vec<GrayImage> = scenes.iter_mut().map(|s| s.render(t).image).collect();
        let results = engine.process_batch(sessions.iter_mut().zip(frames.iter()));
        assert!(results.into_iter().all(|r| r.is_served()));
        let evicted = engine.maintain(sessions.iter_mut());
        assert!(
            engine.total_session_bytes() <= budget,
            "tick {t}: audited total {} over budget {budget} after {evicted} evictions",
            engine.total_session_bytes(),
        );
    }
    // LRU under equal recency tie-breaks by id: at least one early session
    // lost its state, and the engine still serves everyone next tick.
    assert!(sessions.iter().any(|s| s.key_image().is_none()));
    let frames: Vec<GrayImage> = scenes.iter_mut().map(|s| s.render(3).image).collect();
    let results = engine.process_batch(sessions.iter_mut().zip(frames.iter()));
    assert!(results.into_iter().all(|r| r.is_served()));
}

/// The engine's aggregate accounting equals the per-session audits.
#[test]
fn engine_accounting_matches_session_audits() {
    let mut engine = engine(EngineLimits::unlimited());
    let mut sessions: Vec<StreamSession> = (0..3).map(|_| engine.open_session().unwrap()).collect();
    let frame = scene(53).render(0).image;
    for session in sessions.iter_mut() {
        engine.process(session, &frame).unwrap();
    }
    let audited: usize = sessions.iter().map(StreamSession::memory_footprint).sum();
    assert_eq!(engine.total_session_bytes(), audited);
    sessions[0].evict_state();
    let audited: usize = sessions.iter().map(StreamSession::memory_footprint).sum();
    assert_eq!(engine.total_session_bytes(), audited);
}
