//! Runtime cross-checks for the static cost model (`eva2-analysis`'s cost
//! pass) and the session memory bound: the analysis numbers are *claims
//! about this engine*, so every claim is pinned against what the engine
//! actually does.
//!
//! - Key-frame and predicted-frame MAC counts must match
//!   [`AmcFrameResult::macs_executed`] **exactly** — to the MAC, for every
//!   zoo network at both paper targets and for randomized architectures.
//! - RFBME ops and warp interpolations must stay under their static bounds.
//! - [`session_memory_bound`] must dominate the audited
//!   [`StreamSession::memory_footprint`] without being uselessly loose
//!   (within 2×).
//! - The SLO capacity planner must reproduce the measured
//!   `BENCH_serve.json` operating point from first principles.

use eva2_cnn::layer::{Conv2d, FullyConnected, MaxPool2d, Relu};
use eva2_cnn::network::Network;
use eva2_cnn::zoo::{self, Workload};
use eva2_core::executor::AmcConfig;
use eva2_core::policy::PolicyConfig;
use eva2_core::serve::{session_memory_bound, Engine, EngineLimits};
use eva2_core::target::TargetSelection;
use eva2_tensor::{GrayImage, Shape3};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// A textured frame with a per-step horizontal pan, sized for `net`'s
/// input, so predicted frames exercise real motion search and warping.
fn panned_frame(net: &Network, t: usize) -> GrayImage {
    let shape = net.input_shape();
    GrayImage::from_fn(shape.height, shape.width, |y, x| {
        let xs = (x + 2 * t) as f32;
        (120.0 + 46.0 * ((y as f32 * 0.27).sin() + (xs * 0.21).cos())) as u8
    })
}

/// A policy that makes frame 0 a key frame and every later frame
/// predicted, so each cost-model figure is observable in isolation.
fn predicted_after_first(target: TargetSelection) -> AmcConfig {
    AmcConfig::builder()
        .target(target)
        .policy(PolicyConfig::StaticRate { period: 1000 })
        .max_residual_error(f32::INFINITY)
        .build()
        .expect("valid config")
}

/// Runs one key frame and `predicted` predicted frames, asserting every
/// static claim against the live engine.
fn check_net_against_cost_model(net: &Network, target: TargetSelection, predicted: usize) {
    let config = predicted_after_first(target);
    let report = config.analyze(net).expect("analyzable network");
    let cost = report
        .cost
        .as_ref()
        .unwrap_or_else(|| panic!("{}: cost model must build", net.name()));

    let mut engine = Engine::new(Arc::new(net.clone()), config).expect("valid engine");
    let mut session = engine.open_session().expect("capacity");

    let key = engine
        .process(&mut session, &panned_frame(net, 0))
        .expect("admitted");
    assert!(key.is_key, "{}: first frame is a key frame", net.name());
    assert_eq!(
        key.macs_executed,
        cost.key_frame_macs,
        "{}: static key-frame MACs must match the engine exactly",
        net.name()
    );

    for t in 1..=predicted {
        let frame = engine
            .process(&mut session, &panned_frame(net, t))
            .expect("admitted");
        assert!(!frame.is_key, "{}: frame {t} is predicted", net.name());
        assert_eq!(
            frame.macs_executed,
            cost.predicted_frame_macs,
            "{}: static predicted-frame MACs must match the engine exactly",
            net.name()
        );
        assert!(
            frame.rfbme_ops <= cost.rfbme_ops_bound,
            "{}: RFBME ops {} exceed static bound {}",
            net.name(),
            frame.rfbme_ops,
            cost.rfbme_ops_bound
        );
    }
    let stats = session.stats();
    assert!(
        stats.warp_interpolations <= predicted as u64 * cost.warp_interpolations_bound,
        "{}: warp interpolations {} exceed {} frames x static bound {}",
        net.name(),
        stats.warp_interpolations,
        predicted,
        cost.warp_interpolations_bound
    );

    let bound = session_memory_bound(net, &engine.config()).expect("boundable");
    let measured = session.memory_footprint();
    assert!(
        bound >= measured,
        "{}: memory bound {bound} must dominate audited footprint {measured}",
        net.name()
    );
    assert!(
        bound <= measured.saturating_mul(2),
        "{}: memory bound {bound} is uselessly loose vs footprint {measured}",
        net.name()
    );
}

#[test]
fn static_costs_match_runtime_for_every_zoo_network_and_target() {
    for workload in Workload::ALL {
        let z = workload.build(0);
        for target in [TargetSelection::Early, TargetSelection::Late] {
            check_net_against_cost_model(&z.network, target, 3);
        }
    }
}

/// Builds a randomized but always-valid zoo-shaped network: `stages`
/// conv/relu/pool stages from `input` pixels, then a hidden FC layer.
fn random_net(input: usize, stages: usize, base_channels: usize, seed: u64) -> Network {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net = Network::new("random", Shape3::new(1, input, input));
    let mut channels = 1usize;
    let mut side = input;
    for s in 0..stages {
        let out = base_channels << s;
        net.push(Box::new(Conv2d::new(
            "conv", channels, out, 3, 1, 1, &mut rng,
        )));
        net.push(Box::new(Relu::new("relu")));
        net.push(Box::new(MaxPool2d::new("pool", 2, 2)));
        channels = out;
        side /= 2;
    }
    net.push(Box::new(FullyConnected::new(
        "fc1",
        channels * side * side,
        16,
        &mut rng,
    )));
    net.push(Box::new(FullyConnected::new("fc2", 16, 8, &mut rng)));
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary architectures and either paper target, the static
    /// model still matches the engine to the MAC and the memory bound
    /// still brackets the audited footprint.
    #[test]
    fn static_costs_match_runtime_for_random_architectures(
        input_pow in 4usize..6,      // 16 or 32 pixels
        stages in 1usize..3,
        base_channels in 2usize..9,
        late in 0usize..2,
        seed in 0u64..1024,
    ) {
        let net = random_net(1 << input_pow, stages, base_channels, seed);
        let target = if late == 1 {
            TargetSelection::Late
        } else {
            TargetSelection::Early
        };
        check_net_against_cost_model(&net, target, 2);
    }
}

/// Pulls `"key": <number>` out of the flat `BENCH_serve.json` without a
/// JSON dependency.
fn bench_field(json: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat).unwrap_or_else(|| panic!("{key} in bench"));
    let rest = &json[at + pat.len()..];
    let end = rest.find([',', '}', '\n']).expect("terminated number");
    rest[..end].trim().parse().expect("numeric bench field")
}

#[test]
fn memory_bound_and_capacity_plan_match_serve_bench() {
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_serve.json"
    ))
    .expect("BENCH_serve.json at repo root");
    let per_session_bytes = bench_field(&json, "per_session_bytes") as usize;
    let slo_ms = bench_field(&json, "slo_ms");
    let streams = bench_field(&json, "streams_per_core_at_slo");

    // The bench serves `tiny_fasterm(0)` under the default config.
    let net = zoo::tiny_fasterm(0).network;
    let config = AmcConfig::default();

    let bound = session_memory_bound(&net, &config).expect("boundable");
    assert!(
        bound >= per_session_bytes,
        "static bound {bound} must dominate the bench's audited {per_session_bytes} B/session"
    );
    assert!(
        bound <= 2 * per_session_bytes,
        "static bound {bound} is uselessly loose vs the bench's {per_session_bytes} B/session"
    );

    // Round trip: the compute rate implied by the bench's measured
    // operating point (64 streams inside the SLO) must plan back to a
    // per-tick frame budget in the same regime — [streams/2, 2*streams].
    let report = config.analyze(&net).expect("analyzable");
    let cost = report.cost.expect("cost model builds");
    let key_gap = 16; // default policy: BlockError { max_gap: 16 }
    let amortized = (cost.key_frame_macs as f64
        + (key_gap - 1) as f64 * cost.predicted_ops_bound as f64)
        / key_gap as f64;
    let implied_gflops = streams * amortized * 2.0 / (slo_ms / 1e3) / 1e9;

    let limits = EngineLimits::builder()
        .derive_from_slo(&net, &config, slo_ms, implied_gflops)
        .expect("plannable")
        .build()
        .expect("valid limits");
    let frames = limits.max_frames_per_tick;
    assert!(
        (streams as usize / 2..=2 * streams as usize).contains(&frames),
        "planned {frames} frames/tick is out of regime vs the bench's {streams} streams"
    );
    assert!(limits.max_key_frames_per_tick <= frames);
    assert!(
        limits.max_total_bytes >= frames * per_session_bytes,
        "total byte budget must cover the planned fleet at the audited footprint"
    );
}
