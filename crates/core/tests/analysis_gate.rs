//! The construction-time verifier gate: `Engine` / `AmcExecutor` /
//! `open_session_with` refuse (network, configuration) pairs that
//! `eva2-analysis` flags with an error-severity diagnostic — so a fault
//! that used to surface as a first-frame panic or a silent Q8.8
//! saturation now surfaces at *construction*, with a stable code.
//!
//! The deliberately broken inputs here mirror the acceptance criteria:
//! a mis-shaped flatten seam (`E-SHAPE-003`), a stride-misaligned RFBME
//! search step (`E-WARP-003`), and Q8.8-overflowing weights on the
//! fixed-point datapath (`E-RANGE-001`).

use eva2_cnn::layer::{Conv2d, FullyConnected, MaxPool2d, Relu};
use eva2_cnn::network::Network;
use eva2_cnn::zoo;
use eva2_core::error::AmcError;
use eva2_core::executor::{AmcConfig, AmcExecutor};
use eva2_core::serve::{Engine, FrameOutcome};
use eva2_core::target::TargetSelection;
use eva2_motion::rfbme::SearchParams;
use eva2_tensor::{GrayImage, Shape3};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// conv → relu → pool → FC whose `in_features` does not match the
/// flattened pool output (2·7·7 = 98, the layer claims 999). Before the
/// static shape pass, this network panicked inside `FullyConnected` on
/// the first submitted frame.
fn misshapen_net() -> Network {
    let mut r = ChaCha8Rng::seed_from_u64(7);
    let mut net = Network::new("misshapen", Shape3::new(1, 16, 16));
    net.push(Box::new(Conv2d::new("conv1", 1, 2, 3, 1, 0, &mut r)))
        .push(Box::new(Relu::new("relu1")))
        .push(Box::new(MaxPool2d::new("pool1", 2, 2)))
        .push(Box::new(FullyConnected::new("fc1", 999, 4, &mut r)));
    net
}

/// conv (all weights 100.0) → relu → pool → FC: interval analysis puts
/// the target activation near ±900, far past Q8.8's ±128.
fn overflowing_net() -> Network {
    let mut r = ChaCha8Rng::seed_from_u64(7);
    let mut conv = Conv2d::new("conv1", 1, 2, 3, 1, 0, &mut r);
    for oc in 0..2 {
        for ky in 0..3 {
            for kx in 0..3 {
                conv.set_weight(oc, 0, ky, kx, 100.0);
            }
        }
    }
    let mut net = Network::new("overflowing", Shape3::new(1, 16, 16));
    net.push(Box::new(conv))
        .push(Box::new(Relu::new("relu1")))
        .push(Box::new(MaxPool2d::new("pool1", 2, 2)))
        .push(Box::new(FullyConnected::new("fc1", 2 * 7 * 7, 4, &mut r)));
    net
}

fn rejected_code(result: Result<impl Sized, AmcError>) -> &'static str {
    match result {
        Err(AmcError::AnalysisRejected { code, .. }) => code,
        Err(other) => panic!("expected AnalysisRejected, got {other}"),
        Ok(_) => panic!("expected AnalysisRejected, got Ok"),
    }
}

#[test]
fn misshapen_network_is_rejected_at_engine_construction() {
    let code = rejected_code(Engine::new(Arc::new(misshapen_net()), AmcConfig::default()));
    assert_eq!(code, "E-SHAPE-003");
}

#[test]
fn misshapen_network_is_rejected_at_executor_construction() {
    let net = misshapen_net();
    let code = rejected_code(AmcExecutor::try_new(&net, AmcConfig::default()));
    assert_eq!(code, "E-SHAPE-003");
}

#[test]
fn strict_session_is_rejected_at_open_not_first_submit() {
    // An engine whose *base* configuration opts out of verification still
    // verifies per-stream configurations at `open_session_with` — the
    // fault surfaces when the session is opened, never at frame time
    // (where it would have been a silent Q8.8 saturation).
    let base = AmcConfig::builder()
        .target(TargetSelection::Early)
        .fixed_point(true)
        .allow_unverified()
        .build()
        .expect("valid config");
    let mut engine = Engine::new(Arc::new(overflowing_net()), base).expect("escape hatch admits");
    let strict = AmcConfig::builder()
        .target(TargetSelection::Early)
        .fixed_point(true)
        .build()
        .expect("valid config");
    assert!(!strict.allow_unverified);
    let code = rejected_code(engine.open_session_with(strict));
    assert_eq!(code, "E-RANGE-001");
}

#[test]
fn stride_misaligned_search_step_is_rejected() {
    // tiny-fasterm's late target has cumulative stride 8; a search step of
    // 16 can only propose motion vectors the warp cannot express.
    let net = Arc::new(zoo::tiny_fasterm(3).network);
    let config = AmcConfig::builder()
        .target(TargetSelection::Late)
        .search(SearchParams {
            radius: 16,
            step: 16,
        })
        .build()
        .expect("valid config");
    let code = rejected_code(Engine::new(net, config));
    assert_eq!(code, "E-WARP-003");
}

#[test]
fn q88_overflow_is_rejected_only_on_the_fixed_point_datapath() {
    let fixed = AmcConfig::builder()
        .target(TargetSelection::Early)
        .fixed_point(true)
        .build()
        .expect("valid config");
    let code = rejected_code(Engine::new(Arc::new(overflowing_net()), fixed));
    assert_eq!(code, "E-RANGE-001");

    // The identical network on the f32 datapath only *warns* — it must
    // still construct and serve.
    let float = AmcConfig::builder()
        .target(TargetSelection::Early)
        .build()
        .expect("valid config");
    assert!(Engine::new(Arc::new(overflowing_net()), float).is_ok());
}

#[test]
fn allow_unverified_escape_hatch_admits_and_serves() {
    let config = AmcConfig::builder()
        .target(TargetSelection::Early)
        .fixed_point(true)
        .allow_unverified()
        .build()
        .expect("valid config");
    let mut engine = Engine::new(Arc::new(overflowing_net()), config).expect("escape hatch admits");
    let mut session = engine.open_session().expect("unverified base admits");
    let frame = GrayImage::from_fn(16, 16, |y, x| ((y * 16 + x) % 251) as u8);
    match engine.process(&mut session, &frame) {
        FrameOutcome::Key { .. } => {}
        other => panic!("expected a key frame from the first submit, got {other:?}"),
    }
}

#[test]
fn fc_before_target_is_refused_at_construction() {
    // conv → FC → relu with the target requested *past* the FC: the prefix
    // would not be translation-equivariant, so no warp can be legal. Target
    // resolution refuses the index before analysis even runs (the analysis
    // crate's own suite pins the `E-WARP-001` code for a forced target).
    let mut r = ChaCha8Rng::seed_from_u64(7);
    let mut net = Network::new("fc-prefix", Shape3::new(1, 8, 8));
    net.push(Box::new(Conv2d::new("conv1", 1, 2, 3, 1, 1, &mut r)))
        .push(Box::new(FullyConnected::new("fc1", 2 * 8 * 8, 4, &mut r)))
        .push(Box::new(Relu::new("relu1")));
    let config = AmcConfig::builder()
        .target(TargetSelection::Index(2))
        .build()
        .expect("valid config");
    match Engine::new(Arc::new(net), config) {
        Err(AmcError::TargetOutsidePrefix { last_spatial, .. }) => assert_eq!(last_spatial, 0),
        other => panic!("expected TargetOutsidePrefix, got {other:?}"),
    }
}

#[test]
fn zoo_networks_construct_clean_under_default_configs() {
    // Acceptance criterion: every zoo network passes analysis clean under
    // the default configurations at both canonical targets.
    for workload in zoo::Workload::ALL {
        let z = workload.build(11);
        for target in [TargetSelection::Early, TargetSelection::Late] {
            let config = AmcConfig::builder()
                .target(target)
                .build()
                .expect("valid config");
            let report = config.analyze(&z.network).expect("target resolves");
            assert!(
                !report.has_errors(),
                "{}/{target:?}:\n{}",
                workload.name(),
                report.render()
            );
            assert!(
                Engine::new(Arc::new(workload.build(11).network), config).is_ok(),
                "{}/{target:?} must construct",
                workload.name()
            );
        }
    }
}
