//! Chaos soak for the serving engine: thousands of load-generator ticks
//! under seeded panic/delay injection, deadline pressure, scripted input
//! corruption, wrong-geometry probes, and forced evictions. Invariants,
//! checked on every tick:
//!
//! 1. The engine never dies: every job resolves to a served frame or a
//!    documented typed error, and the process never aborts.
//! 2. Every served frame is bit-identical to a clean serial oracle fed
//!    exactly the frames the engine actually served for that stream —
//!    contained panics, sheds, and refusals on *other* streams leave no
//!    trace.
//! 3. Quarantine is sticky: a poisoned session keeps refusing with
//!    [`AmcError::SessionPoisoned`] until `evict_state` rehydrates it,
//!    after which it serves bit-identically to a fresh stream.
//! 4. The memory-accounting identity `Engine::total_session_bytes()` ==
//!    Σ `StreamSession::memory_footprint()` holds exactly.
//!
//! Tick count comes from `EVA2_SOAK_TICKS` (CI runs 2000 in release; the
//! local default keeps a debug `cargo test` quick). `EVA2_SERVE_WORKERS`
//! re-runs the whole soak through the threaded engine; outcomes are
//! bit-identical for any worker count, so every assertion holds unchanged.

use eva2_cnn::zoo;
use eva2_core::error::AmcError;
use eva2_core::executor::{AmcConfig, AmcExecutor, AmcFrameResult};
use eva2_core::serve::{Engine, EngineLimits, FakeClock, FrameOutcome, SeededChaos, StreamSession};
use eva2_tensor::GrayImage;
use eva2_video::load::{LoadConfig, LoadGenerator};
use std::sync::Arc;

const STREAMS: usize = 6;
const SIDE: usize = 48;

fn env_usize(key: &str, default: usize) -> usize {
    match std::env::var(key) {
        Ok(v) => v.parse().expect("env var must be a count"),
        Err(_) => default,
    }
}

/// Silences the default panic hook for injected chaos panics (payloads
/// start with `"chaos:"` by contract) so a soak with thousands of
/// contained unwinds doesn't spray backtraces; real panics still print.
fn quiet_chaos_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_string)
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !msg.starts_with("chaos:") {
                prev(info);
            }
        }));
    });
}

fn assert_result_eq(a: &AmcFrameResult, b: &AmcFrameResult, label: &str) {
    assert_eq!(a.is_key, b.is_key, "{label}: kind");
    assert_eq!(
        a.output.as_slice(),
        b.output.as_slice(),
        "{label}: output bits"
    );
    assert_eq!(a.macs_executed, b.macs_executed, "{label}: MACs");
    assert_eq!(a.rfbme_ops, b.rfbme_ops, "{label}: RFBME ops");
    assert_eq!(a.compression, b.compression, "{label}: compression");
}

#[test]
fn chaos_soak_never_dies_and_survivors_match_the_clean_oracle() {
    quiet_chaos_panics();
    let ticks = env_usize("EVA2_SOAK_TICKS", 150);
    let workers = env_usize("EVA2_SERVE_WORKERS", 1);
    let z = zoo::tiny_fasterm(3);
    let net = Arc::new(zoo::tiny_fasterm(3).network);
    let limits = EngineLimits::builder()
        .worker_threads(workers)
        .tick_deadline_ms(3)
        .build()
        .expect("valid limits");
    let mut engine =
        Engine::with_limits(net, AmcConfig::default(), limits).expect("valid engine config");
    // Deadline pressure without wall-clock flakiness: the fake clock only
    // advances when the injector lands a 2 ms delay, so a tick with two or
    // more delays deterministically overruns the 3 ms deadline.
    engine.set_tick_clock(Arc::new(FakeClock::new()));
    // ~6% of jobs panic and ~4% stall, in every phase, pure in
    // (phase, tick, session) — the whole storm replays bit-identically.
    engine.set_failure_injector(Arc::new(SeededChaos::new(0xC0FF_EE00_5EED)));

    let mut sessions: Vec<StreamSession> = (0..STREAMS)
        .map(|_| engine.open_session().expect("capacity"))
        .collect();
    let fresh_oracle =
        || AmcExecutor::try_new(&z.network, AmcConfig::default()).expect("valid config");
    let mut oracles: Vec<AmcExecutor> = (0..STREAMS).map(|_| fresh_oracle()).collect();
    let mut load = LoadGenerator::new(LoadConfig::new(STREAMS, SIDE, SIDE).with_seed(0xBAD_5EED));
    let wrong_geometry = GrayImage::from_fn(SIDE / 2, SIDE / 2, |y, x| ((x + 3 * y) % 251) as u8);

    let mut poisoned = [false; STREAMS];
    let mut served = 0u64;
    let mut panics = 0u64;
    let mut sticky_refusals = 0u64;
    let mut deadline_sheds = 0u64;
    let mut geometry_rejects = 0u64;

    for t in 0..ticks {
        // Scripted faults on top of the chaos injector: periodic sensor
        // white-out (a legal frame both engine and oracle must agree on)
        // and a forced state eviction of a healthy stream (seek/cut).
        let mut arrivals = load.tick();
        arrivals.sort_by_key(|lf| lf.stream);
        let mut frames: Vec<GrayImage> = arrivals.into_iter().map(|lf| lf.image).collect();
        assert_eq!(frames.len(), STREAMS, "tick {t}: one frame per stream");
        if t % 31 == 17 {
            frames[t % STREAMS] = GrayImage::from_fn(SIDE, SIDE, |_, _| 255);
        }
        if t % 53 == 29 {
            let s = (t / 53) % STREAMS;
            if !poisoned[s] {
                sessions[s].evict_state();
                oracles[s] = fresh_oracle();
            }
        }
        let geo_probe = if t % 97 == 41 {
            Some(t % STREAMS)
        } else {
            None
        };
        let submit: Vec<GrayImage> = (0..STREAMS)
            .map(|s| {
                if geo_probe == Some(s) {
                    wrong_geometry.clone()
                } else {
                    frames[s].clone()
                }
            })
            .collect();

        let results = engine.process_batch(sessions.iter_mut().zip(submit.iter()));
        assert_eq!(results.len(), STREAMS, "tick {t}: one outcome per job");
        for (s, outcome) in results.iter().enumerate() {
            match outcome {
                outcome if outcome.is_served() => {
                    assert!(
                        !poisoned[s],
                        "tick {t}: stream {s} served while quarantined"
                    );
                    let want = oracles[s].process(&submit[s]);
                    assert_result_eq(
                        outcome.frame().expect("served"),
                        &want,
                        &format!("tick {t} stream {s}"),
                    );
                    served += 1;
                }
                FrameOutcome::Rejected(AmcError::WorkerPanicked { .. }) => {
                    assert!(
                        sessions[s].is_quarantined(),
                        "tick {t}: contained panic must quarantine stream {s}"
                    );
                    poisoned[s] = true;
                    panics += 1;
                }
                FrameOutcome::Rejected(AmcError::SessionPoisoned { session }) => {
                    assert!(
                        poisoned[s],
                        "tick {t}: SessionPoisoned without a prior contained panic"
                    );
                    assert_eq!(*session, sessions[s].id(), "tick {t}: wrong session id");
                    sticky_refusals += 1;
                    // Quarantine exit: drop the suspect state; the stream
                    // rehydrates through a forced key frame, so its oracle
                    // restarts fresh too.
                    sessions[s].evict_state();
                    assert!(!sessions[s].is_quarantined());
                    poisoned[s] = false;
                    oracles[s] = fresh_oracle();
                }
                FrameOutcome::Rejected(AmcError::FrameGeometryMismatch { .. }) => {
                    assert_eq!(
                        geo_probe,
                        Some(s),
                        "tick {t}: geometry refusal without a probe"
                    );
                    geometry_rejects += 1;
                }
                FrameOutcome::Shed(AmcError::BudgetExceeded {
                    what: "tick deadline",
                    ..
                }) => {
                    deadline_sheds += 1;
                }
                other => panic!("tick {t} stream {s}: undocumented outcome {other:?}"),
            }
        }
        assert_eq!(
            engine.total_session_bytes(),
            sessions
                .iter()
                .map(StreamSession::memory_footprint)
                .sum::<usize>(),
            "tick {t}: memory-accounting identity broke"
        );
    }

    // The storm actually happened, and the health ledger agrees with what
    // the outcomes said.
    let health = engine.health();
    assert_eq!(health.ticks, ticks as u64);
    assert_eq!(health.frames_served, served);
    assert_eq!(health.panics_caught, panics);
    assert_eq!(health.deadline_sheds, deadline_sheds);
    assert!(panics > 0, "chaos injector never landed a panic");
    assert!(
        sticky_refusals > 0,
        "no quarantine survived to the next tick"
    );
    assert!(
        served > ticks as u64,
        "the engine barely served under chaos"
    );
    if ticks >= 150 {
        assert!(
            health.deadline_overruns > 0,
            "injected delays never overran the tick deadline"
        );
        assert!(geometry_rejects > 0, "geometry probes never fired");
    }

    // The engine is still alive and clean after the storm: clear the
    // chaos, rehydrate everything, and every stream must serve again.
    engine.clear_failure_injector();
    for (s, session) in sessions.iter_mut().enumerate() {
        session.evict_state();
        let frame = GrayImage::from_fn(SIDE, SIDE, |y, x| ((x * y + s) % 256) as u8);
        let outcome = engine.process(session, &frame);
        assert!(
            outcome.is_served(),
            "stream {s} failed to recover after the storm: {outcome:?}"
        );
    }
}
