//! Heap audit for the steady-state predicted-frame path, backing the
//! static memory model with allocator-level evidence: once a session is
//! warmed (key state stored, scratch buffers grown to their geometry),
//! serving predicted frames causes **zero net heap growth** and a
//! **constant number of transient allocations per frame** — i.e. every
//! byte the hot loop touches was either pre-sized by the structures
//! [`session_memory_bound`] charges for, or belongs to the returned
//! [`AmcFrameResult`] the caller immediately drops.
//!
//! A counting [`GlobalAlloc`] wrapper around [`System`] observes every
//! allocation in the process, so this file holds exactly ONE `#[test]`
//! function: a second test running concurrently would interleave its
//! allocations into the counters and make the audit flaky by design.

use eva2_cnn::zoo;
use eva2_core::executor::AmcConfig;
use eva2_core::policy::PolicyConfig;
use eva2_core::serve::{Engine, EngineLimits};
use eva2_motion::{RfGeometry, Rfbme, RfbmeScratch, SearchParams};
use eva2_tensor::GrayImage;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Counts allocator calls and tracks live bytes on top of [`System`].
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        LIVE_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static AUDIT: CountingAlloc = CountingAlloc;

fn snapshot() -> (u64, i64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        LIVE_BYTES.load(Ordering::Relaxed),
    )
}

/// A textured 48×48 frame panning 2 px/step, matching the zoo input.
fn frame(t: usize) -> GrayImage {
    GrayImage::from_fn(48, 48, |y, x| {
        let xs = (x + 2 * t) as f32;
        (120.0 + 46.0 * ((y as f32 * 0.27).sin() + (xs * 0.21).cos())) as u8
    })
}

#[test]
fn steady_state_predicted_frames_cause_no_net_heap_growth() {
    // --- Phase 1: engine steady state ------------------------------------
    // StaticRate { period: 1000 } + an unbounded residual gate: frame 0 is
    // the key frame, every following frame takes the predicted path.
    let config = AmcConfig::builder()
        .policy(PolicyConfig::StaticRate { period: 1000 })
        .max_residual_error(f32::INFINITY)
        .build()
        .expect("valid config");
    let net = Arc::new(zoo::tiny_fasterm(0).network);
    let limits = EngineLimits::builder()
        .worker_threads(1) // inline execution: no worker-pool allocations
        .build()
        .expect("valid limits");
    let mut engine = Engine::with_limits(net, config, limits).expect("valid engine");
    let mut session = engine.open_session().expect("capacity");

    // Pre-render every frame so frame construction never pollutes the
    // audited window.
    let frames: Vec<GrayImage> = (0..12).map(frame).collect();

    // Warm-up: the key frame plus enough predicted frames for every lazily
    // grown buffer (RFBME scratch, GEMM packing, decode cache) to reach
    // its high-water mark.
    for f in &frames[..6] {
        let r = engine.process(&mut session, f).expect("admitted");
        assert_eq!(r.is_key, std::ptr::eq(f, &frames[0]));
    }

    let footprint_before = session.memory_footprint();
    // Pre-sized so the audit's own bookkeeping never shows up in the
    // counters it is reading.
    let mut per_frame_allocs = Vec::with_capacity(frames.len());
    let mut per_frame_growth = Vec::with_capacity(frames.len());
    let (_, live_before) = snapshot();
    for f in &frames[6..] {
        let (calls_before, live_frame_before) = snapshot();
        let r = engine.process(&mut session, f).expect("admitted");
        assert!(!r.is_key, "steady-state frames are predicted");
        drop(r);
        let (calls_after, live_frame_after) = snapshot();
        per_frame_allocs.push(calls_after - calls_before);
        per_frame_growth.push(live_frame_after - live_frame_before);
    }
    let (_, live_after) = snapshot();

    assert_eq!(
        live_after - live_before,
        0,
        "steady-state predicted frames must cause zero net heap growth \
         (per-frame allocation counts: {per_frame_allocs:?}, per-frame \
         growth: {per_frame_growth:?})"
    );
    assert!(
        per_frame_allocs.windows(2).all(|w| w[0] == w[1]),
        "per-frame transient allocation count must be constant in steady \
         state, got {per_frame_allocs:?}"
    );
    assert_eq!(
        session.memory_footprint(),
        footprint_before,
        "the audited session footprint must not grow across steady-state \
         predicted frames"
    );

    // --- Phase 2: warmed RFBME allocates only its result ------------------
    // With warm scratch, `estimate_with`'s allocation count equals that of
    // simply cloning its result: the search itself touches no allocator.
    let rfbme = Rfbme::new(
        RfGeometry {
            size: 8,
            stride: 4,
            padding: 0,
        },
        SearchParams { radius: 4, step: 1 },
    );
    let mut scratch = RfbmeScratch::new();
    let key = frame(0);
    let new = frame(1);
    let warmed = rfbme.estimate_with(&key, &new, &mut scratch);

    let (calls_before, live_before) = snapshot();
    let result = rfbme.estimate_with(&key, &new, &mut scratch);
    let (calls_mid, _) = snapshot();
    let cloned = warmed.clone();
    let (calls_after, _) = snapshot();
    let estimate_allocs = calls_mid - calls_before;
    let clone_allocs = calls_after - calls_mid;
    assert_eq!(
        estimate_allocs, clone_allocs,
        "a warmed estimate_with must allocate exactly what its returned \
         result owns — the search itself is allocation-free"
    );
    drop(result);
    drop(cloned);
    let (_, live_end) = snapshot();
    assert_eq!(
        live_end - live_before,
        0,
        "warmed RFBME estimation must cause zero net heap growth"
    );
}
