//! The pipelined executor's contract: over a synthetic 20-frame sequence
//! with pans, a scene cut, and policy-forced key frames, every output
//! tensor, frame kind, and statistic is bit-identical to the serial
//! executor's — threading must be invisible except in wall-clock time.

use eva2_cnn::zoo;
use eva2_core::executor::{AmcConfig, AmcExecutor, WarpMode};
use eva2_core::pipeline::{FrameExecutor, PipelinedExecutor};
use eva2_core::policy::PolicyConfig;
use eva2_tensor::GrayImage;

/// 20 frames: a slow rightward pan, a hard scene cut at frame 10, then a
/// diagonal drift — exercising predicted frames, a forced key frame, and
/// fresh motion state after the cut.
fn sequence() -> Vec<GrayImage> {
    (0..20usize)
        .map(|t| {
            GrayImage::from_fn(48, 48, |y, x| {
                if t < 10 {
                    let xs = (x + t) as f32;
                    (122.0 + 48.0 * ((y as f32 * 0.31).sin() + (xs * 0.21).cos())) as u8
                } else {
                    let s = t - 10;
                    let v = ((y + s) * 17 + (x + 2 * s) * 23) % 200;
                    (28 + v) as u8
                }
            })
        })
        .collect()
}

fn assert_bit_identical(config: AmcConfig, label: &str) {
    let z = zoo::tiny_fasterm(3);
    let frames = sequence();
    let mut serial = AmcExecutor::try_new(&z.network, config).unwrap();
    let mut pipelined = PipelinedExecutor::new(AmcExecutor::try_new(&z.network, config).unwrap());
    let a = FrameExecutor::process_clip(&mut serial, &frames).expect("clean clip serves");
    let b = FrameExecutor::process_clip(&mut pipelined, &frames).expect("clean clip serves");
    assert_eq!(a.len(), 20, "{label}: serial result count");
    assert_eq!(b.len(), 20, "{label}: pipelined result count");
    for (t, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.is_key, y.is_key, "{label}: frame {t} kind");
        assert_eq!(
            x.output.as_slice(),
            y.output.as_slice(),
            "{label}: frame {t} output bits"
        );
        assert_eq!(x.macs_executed, y.macs_executed, "{label}: frame {t} MACs");
        assert_eq!(x.rfbme_ops, y.rfbme_ops, "{label}: frame {t} RFBME ops");
        assert_eq!(
            x.compression, y.compression,
            "{label}: frame {t} compression"
        );
    }
    assert_eq!(
        FrameExecutor::stats(&serial),
        FrameExecutor::stats(&pipelined),
        "{label}: aggregate stats"
    );
    // The sequence must actually exercise both frame kinds for the
    // comparison to mean anything.
    let keys = a.iter().filter(|r| r.is_key).count();
    assert!(
        (2..20).contains(&keys),
        "{label}: degenerate sequence ({keys} keys)"
    );
}

#[test]
fn pipelined_bit_identical_over_20_frames_default_policy() {
    assert_bit_identical(AmcConfig::default(), "default");
}

#[test]
fn pipelined_bit_identical_with_fixed_point_warp() {
    assert_bit_identical(
        AmcConfig {
            fixed_point: true,
            ..Default::default()
        },
        "fixed-point",
    );
}

#[test]
fn pipelined_bit_identical_with_memoize_and_static_rate() {
    assert_bit_identical(
        AmcConfig {
            warp: WarpMode::Memoize,
            policy: PolicyConfig::StaticRate { period: 3 },
            ..Default::default()
        },
        "memoize/static-rate",
    );
}
