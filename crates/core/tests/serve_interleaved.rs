//! The serving engine's contract: N independent streams fed round-robin
//! through one [`Engine`] — with key-frame prefixes batched across streams
//! whenever several streams' key frames coincide, and every per-stream
//! phase optionally fanned out over a worker pool — produce outputs,
//! decisions, and statistics **bit-identical** to N independent serial
//! [`AmcExecutor`] runs. Batching and threading must be invisible except
//! in wall-clock time (the cross-stream analogue of
//! `pipeline_bitident.rs`).
//!
//! Worker counts here are *forced* ([`EngineLimits::worker_threads`], cf.
//! the GEMM `gemm_nn_threads` hook), so the fan-out code path is exercised
//! even on a single-CPU container.

use eva2_cnn::zoo;
use eva2_core::error::AmcError;
use eva2_core::executor::{AmcConfig, AmcExecutor, AmcFrameResult, WarpMode};
use eva2_core::policy::PolicyConfig;
use eva2_core::serve::{
    Engine, EngineLimits, EnginePhase, FailureAction, FailureInjector, FrameOutcome,
};
use eva2_tensor::GrayImage;
use eva2_video::faults::{FaultScript, FaultyScene};
use eva2_video::scene::{Scene, SceneConfig};
use proptest::prelude::*;
use std::sync::Arc;

const STREAMS: usize = 3;
const FRAMES: usize = 14;

/// Stream `s`, frame `t`: each stream pans at its own speed and hard-cuts
/// at a different time, so key frames arrive decorrelated across streams —
/// every batch mixes key and predicted frames at some point.
fn stream_frame(s: usize, t: usize) -> GrayImage {
    let cut = 5 + 3 * s;
    GrayImage::from_fn(48, 48, |y, x| {
        if t < cut {
            let xs = (x + t * (s + 1)) as f32;
            (120.0 + 46.0 * ((y as f32 * (0.27 + 0.02 * s as f32)).sin() + (xs * 0.21).cos())) as u8
        } else {
            let d = t - cut;
            let v = ((y + d + 7 * s) * 17 + (x + 2 * d) * 23) % 200;
            (30 + v) as u8
        }
    })
}

fn engine_with(config: AmcConfig, workers: usize) -> Engine {
    let net = Arc::new(zoo::tiny_fasterm(3).network);
    let limits = EngineLimits::builder()
        .worker_threads(workers)
        .build()
        .expect("valid limits");
    Engine::with_limits(net, config, limits).expect("valid engine config")
}

fn assert_result_eq(a: &AmcFrameResult, b: &AmcFrameResult, label: &str) {
    assert_eq!(a.is_key, b.is_key, "{label}: kind");
    assert_eq!(
        a.output.as_slice(),
        b.output.as_slice(),
        "{label}: output bits"
    );
    assert_eq!(a.macs_executed, b.macs_executed, "{label}: MACs");
    assert_eq!(a.rfbme_ops, b.rfbme_ops, "{label}: RFBME ops");
    assert_eq!(a.compression, b.compression, "{label}: compression");
}

/// Two engines must agree on the *whole* outcome: the same variant, the
/// same served bits and per-frame stats delta, or the same typed error.
fn assert_outcome_eq(a: &FrameOutcome, b: &FrameOutcome, label: &str) {
    match (a, b) {
        (
            FrameOutcome::Predicted {
                frame: fa,
                stats: sa,
            },
            FrameOutcome::Predicted {
                frame: fb,
                stats: sb,
            },
        )
        | (
            FrameOutcome::Key {
                frame: fa,
                stats: sa,
            },
            FrameOutcome::Key {
                frame: fb,
                stats: sb,
            },
        ) => {
            assert_result_eq(fa, fb, label);
            assert_eq!(sa, sb, "{label}: stats delta");
        }
        (
            FrameOutcome::ForcedKey {
                residual: ra,
                frame: fa,
                stats: sa,
            },
            FrameOutcome::ForcedKey {
                residual: rb,
                frame: fb,
                stats: sb,
            },
        ) => {
            assert_eq!(ra.to_bits(), rb.to_bits(), "{label}: forced residual");
            assert_result_eq(fa, fb, label);
            assert_eq!(sa, sb, "{label}: stats delta");
        }
        (FrameOutcome::Shed(ea), FrameOutcome::Shed(eb))
        | (FrameOutcome::Rejected(ea), FrameOutcome::Rejected(eb)) => {
            assert_eq!(ea, eb, "{label}: error");
        }
        (a, b) => panic!("{label}: outcome variants differ: {a:?} vs {b:?}"),
    }
}

/// Round-robin N sessions through one engine (batched submission, `workers`
/// forced worker threads), compare against N fresh serial executors frame
/// by frame.
fn assert_interleaved_bit_identical(config: AmcConfig, workers: usize, label: &str) {
    let z = zoo::tiny_fasterm(3);
    let mut engine = engine_with(config, workers);
    let mut sessions: Vec<_> = (0..STREAMS)
        .map(|_| {
            engine
                .open_session()
                .expect("unlimited engine has capacity")
        })
        .collect();
    let mut serials: Vec<AmcExecutor> = (0..STREAMS)
        .map(|_| AmcExecutor::try_new(&z.network, config).expect("valid config"))
        .collect();

    let mut batched_keys = 0usize;
    for t in 0..FRAMES {
        let frames: Vec<GrayImage> = (0..STREAMS).map(|s| stream_frame(s, t)).collect();
        // One round: every stream submits its next frame in one batch.
        let results: Vec<AmcFrameResult> = engine
            .process_batch(sessions.iter_mut().zip(frames.iter()))
            .into_iter()
            .map(|r| r.expect("unlimited engine admits every frame"))
            .collect();
        let keys = results.iter().filter(|r| r.is_key).count();
        if keys > 1 {
            batched_keys += 1;
        }
        for (s, r) in results.iter().enumerate() {
            let want = serials[s].process(&frames[s]);
            assert_result_eq(r, &want, &format!("{label}: stream {s} frame {t}"));
        }
    }
    // A batch of one (still the batched prefix code path) and a serial
    // `Engine::process` submission must both match too.
    for (s, (session, serial)) in sessions.iter_mut().zip(&mut serials).enumerate() {
        let frame = stream_frame(s, FRAMES);
        let r = engine
            .process_batch([(&mut *session, &frame)])
            .remove(0)
            .expect("admitted");
        let want = serial.process(&frame);
        assert_result_eq(&r, &want, &format!("{label}: stream {s} batch-of-one"));
        let frame = stream_frame(s, FRAMES + 1);
        let r = engine.process(session, &frame).expect("admitted");
        let want = serial.process(&frame);
        assert_result_eq(&r, &want, &format!("{label}: stream {s} single-submit"));
    }

    for (s, (session, serial)) in sessions.iter().zip(&serials).enumerate() {
        assert_eq!(
            session.stats(),
            serial.stats(),
            "{label}: stream {s} aggregate stats"
        );
        let keys = session.stats().key_frames;
        assert!(
            (2..FRAMES).contains(&keys),
            "{label}: stream {s} degenerate ({keys} keys)"
        );
    }
    // The scenario must actually exercise cross-stream batching: at least
    // one round (the first, if nothing else) ran >1 key frame per batch.
    assert!(
        batched_keys >= 1,
        "{label}: no round ever batched multiple key frames"
    );
}

/// Worker counts to pin: inline (1), fewer workers than streams (2), and
/// more workers than streams (5, so some workers idle every phase).
const WORKER_COUNTS: [usize; 3] = [1, 2, 5];

#[test]
fn interleaved_streams_bit_identical_default_policy() {
    for workers in WORKER_COUNTS {
        assert_interleaved_bit_identical(
            AmcConfig::default(),
            workers,
            &format!("default/{workers}w"),
        );
    }
}

#[test]
fn interleaved_streams_bit_identical_fixed_point() {
    for workers in WORKER_COUNTS {
        assert_interleaved_bit_identical(
            AmcConfig {
                fixed_point: true,
                ..Default::default()
            },
            workers,
            &format!("fixed-point/{workers}w"),
        );
    }
}

#[test]
fn interleaved_streams_bit_identical_memoize_static_rate() {
    for workers in WORKER_COUNTS {
        assert_interleaved_bit_identical(
            AmcConfig {
                warp: WarpMode::Memoize,
                policy: PolicyConfig::StaticRate { period: 3 },
                ..Default::default()
            },
            workers,
            &format!("memoize/static-rate/{workers}w"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Evicting a session's state and rehydrating is bit-identical to a
    /// fresh session replaying from the eviction point — outputs, MACs,
    /// and the full statistics delta — for every shipped datapath
    /// (float warp, fixed point, memoize) and any worker count.
    #[test]
    fn eviction_rehydration_bit_identical(
        cfg_idx in 0usize..3,
        evict_after in 1usize..4,
        tail in 2usize..5,
        stream in 0usize..STREAMS,
        workers in 1usize..5,
    ) {
        let configs = [
            AmcConfig::default(),
            AmcConfig {
                fixed_point: true,
                ..Default::default()
            },
            AmcConfig {
                warp: WarpMode::Memoize,
                policy: PolicyConfig::StaticRate { period: 3 },
                ..Default::default()
            },
        ];
        let config = configs[cfg_idx];
        let mut engine = engine_with(config, workers);
        let mut session = engine.open_session().expect("capacity");
        for t in 0..evict_after {
            engine
                .process(&mut session, &stream_frame(stream, t))
                .expect("admitted");
        }
        prop_assert!(session.evict_state(), "state was present to evict");
        let before = session.stats();
        let mut fresh = engine.open_session().expect("capacity");
        for t in evict_after..evict_after + tail {
            let frame = stream_frame(stream, t);
            let r_old = engine.process(&mut session, &frame).expect("admitted");
            let r_new = engine.process(&mut fresh, &frame).expect("admitted");
            if t == evict_after {
                prop_assert!(r_old.is_key, "rehydration forces a key frame");
            }
            assert_result_eq(&r_old, &r_new, &format!("rehydrated vs fresh, frame {t}"));
        }
        prop_assert_eq!(session.stats().delta_since(&before), fresh.stats());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Backpressure shedding never corrupts admitted streams: every
    /// admitted frame is bit-identical to a serial executor fed only the
    /// admitted frames, and every shed frame leaves its session's
    /// statistics (and therefore its state machine) untouched — for any
    /// worker count (shedding happens in the serial admission walk, so
    /// speculative worker RFBME must leave no trace on shed frames).
    #[test]
    fn shedding_never_corrupts_admitted_sessions(
        frame_budget in 1usize..STREAMS + 1,
        key_budget in 1usize..3,
        workers in 1usize..5,
    ) {
        let z = zoo::tiny_fasterm(3);
        let net = Arc::new(zoo::tiny_fasterm(3).network);
        let limits = EngineLimits::builder()
            .max_frames_per_tick(frame_budget)
            .max_key_frames_per_tick(key_budget)
            .worker_threads(workers)
            .build()
            .expect("valid limits");
        let mut engine =
            Engine::with_limits(net, AmcConfig::default(), limits).expect("valid limits");
        let mut sessions: Vec<_> = (0..STREAMS)
            .map(|_| engine.open_session().expect("capacity"))
            .collect();
        let mut serials: Vec<AmcExecutor> = (0..STREAMS)
            .map(|_| AmcExecutor::try_new(&z.network, AmcConfig::default()).expect("valid"))
            .collect();
        let mut shed = 0usize;
        for t in 0..8 {
            let frames: Vec<GrayImage> = (0..STREAMS).map(|s| stream_frame(s, t)).collect();
            let stats_before: Vec<_> = sessions.iter().map(|s| s.stats()).collect();
            let results = engine.process_batch(sessions.iter_mut().zip(frames.iter()));
            for (s, r) in results.iter().enumerate() {
                match r {
                    outcome if outcome.is_served() => {
                        let want = serials[s].process(&frames[s]);
                        assert_result_eq(
                            outcome.frame().expect("served"),
                            &want,
                            &format!("admitted stream {s} frame {t}"),
                        );
                    }
                    FrameOutcome::Shed(AmcError::BudgetExceeded { .. }) => {
                        shed += 1;
                        prop_assert_eq!(
                            sessions[s].stats(),
                            stats_before[s],
                            "shed frame mutated stream {}",
                            s
                        );
                    }
                    other => prop_assert!(false, "unexpected outcome: {other:?}"),
                }
            }
        }
        if frame_budget < STREAMS {
            prop_assert!(shed > 0, "scenario never exercised frame shedding");
        }
        for (s, (session, serial)) in sessions.iter().zip(&serials).enumerate() {
            prop_assert_eq!(
                session.stats(),
                serial.stats(),
                "stream {} aggregate stats",
                s
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The full threaded-vs-inline storm: faulty decorrelated streams
    /// (random drops, corruption, saturation, downscales, and scene cuts
    /// from `eva2_video::faults`), tight random budgets, and a mid-storm
    /// eviction — an N-worker engine and a 1-worker engine must emit the
    /// *same outcome sequence to the bit*: served frames, stats deltas,
    /// shed/rejected errors, everything.
    #[test]
    fn threaded_engine_matches_inline_engine_under_fault_storms(
        workers in 2usize..6,
        seed in 0u64..512,
        frame_budget in 2usize..5,
        key_budget in 1usize..3,
    ) {
        const TICKS: usize = 12;
        let config = AmcConfig {
            max_residual_error: 8.0,
            ..AmcConfig::default()
        };
        let mk = |workers: usize| {
            let net = Arc::new(zoo::tiny_fasterm(3).network);
            let limits = EngineLimits::builder()
                .max_frames_per_tick(frame_budget)
                .max_key_frames_per_tick(key_budget)
                .worker_threads(workers)
                .build()
                .expect("valid limits");
            Engine::with_limits(net, config, limits).expect("valid engine config")
        };
        let mut threaded = mk(workers);
        let mut inline = mk(1);
        let mut threaded_sessions: Vec<_> = (0..STREAMS)
            .map(|_| threaded.open_session().expect("capacity"))
            .collect();
        let mut inline_sessions: Vec<_> = (0..STREAMS)
            .map(|_| inline.open_session().expect("capacity"))
            .collect();
        // Deterministic per (seed, t): both engines see identical storms.
        let mut streams: Vec<FaultyScene> = (0..STREAMS)
            .map(|s| {
                FaultyScene::new(
                    Scene::new(SceneConfig::detection(48, 48), seed + s as u64),
                    FaultScript::generate(seed + 100 + s as u64, TICKS, 0.35),
                )
            })
            .collect();
        for t in 0..TICKS {
            if t == TICKS / 2 {
                // Mid-storm eviction in both engines: rehydration under
                // faults must also be scheduling-independent.
                threaded_sessions[1].evict_state();
                inline_sessions[1].evict_state();
            }
            let frames: Vec<Option<GrayImage>> = streams
                .iter_mut()
                .map(|s| s.next_event().frame.map(|f| f.image))
                .collect();
            let threaded_results = threaded.process_batch(
                threaded_sessions
                    .iter_mut()
                    .zip(frames.iter())
                    .filter_map(|(session, f)| f.as_ref().map(|f| (session, f))),
            );
            let inline_results = inline.process_batch(
                inline_sessions
                    .iter_mut()
                    .zip(frames.iter())
                    .filter_map(|(session, f)| f.as_ref().map(|f| (session, f))),
            );
            prop_assert_eq!(threaded_results.len(), inline_results.len());
            for (j, (a, b)) in threaded_results.iter().zip(&inline_results).enumerate() {
                assert_outcome_eq(a, b, &format!("storm tick {t} job {j} ({workers}w vs 1w)"));
            }
        }
        for (s, (a, b)) in threaded_sessions.iter().zip(&inline_sessions).enumerate() {
            prop_assert_eq!(a.stats(), b.stats(), "stream {} final stats", s);
            prop_assert_eq!(
                a.memory_footprint(),
                b.memory_footprint(),
                "stream {} audited footprint",
                s
            );
        }
    }
}

/// Silences the default panic hook for injected chaos panics (payloads
/// start with `"chaos:"` by contract) so contained-panic cases don't spray
/// backtrace noise; real panics still print.
fn quiet_chaos_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_string)
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !msg.starts_with("chaos:") {
                prev(info);
            }
        }));
    });
}

/// Injector that panics every time `session` reaches `phase`.
struct PanicOn {
    phase: EnginePhase,
    session: u64,
}

impl FailureInjector for PanicOn {
    fn action(&self, phase: EnginePhase, _tick: u64, session: u64) -> FailureAction {
        if phase == self.phase && session == self.session {
            FailureAction::Panic
        } else {
            FailureAction::None
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The poisoned extension of the evicted≡fresh property: a session
    /// quarantined by a contained panic (in any phase), once evicted and
    /// rehydrated, serves bit-identically to a fresh session on the same
    /// frames — outputs, MACs, and the full statistics delta — across
    /// random configs and the inline (1) and pooled (3) engines.
    #[test]
    fn quarantined_session_rehydrates_bit_identical_to_fresh(
        cfg_idx in 0usize..3,
        phase_idx in 0usize..3,
        warm in 1usize..4,
        tail in 2usize..5,
        stream in 0usize..STREAMS,
        pooled in 0usize..2,
    ) {
        quiet_chaos_panics();
        let configs = [
            AmcConfig::default(),
            AmcConfig {
                fixed_point: true,
                ..Default::default()
            },
            AmcConfig {
                warp: WarpMode::Memoize,
                policy: PolicyConfig::StaticRate { period: 3 },
                ..Default::default()
            },
        ];
        // Prefix is exercised in the soak (it needs a key frame to land
        // exactly on the panic tick); these three fire deterministically
        // once key state exists.
        let phases = [
            (EnginePhase::Estimate, "estimate"),
            (EnginePhase::Admit, "admit"),
            (EnginePhase::Complete, "complete"),
        ];
        let (phase, phase_name) = phases[phase_idx];
        let workers = if pooled == 1 { 3 } else { 1 };
        let mut engine = engine_with(configs[cfg_idx], workers);
        let mut session = engine.open_session().expect("capacity");
        for t in 0..warm {
            engine
                .process(&mut session, &stream_frame(stream, t))
                .expect("admitted");
        }
        engine.set_failure_injector(std::sync::Arc::new(PanicOn {
            phase,
            session: session.id(),
        }));
        match engine.process(&mut session, &stream_frame(stream, warm)) {
            FrameOutcome::Rejected(AmcError::WorkerPanicked { phase: got, .. }) => {
                prop_assert_eq!(got, phase_name);
            }
            other => prop_assert!(false, "expected a contained panic, got {:?}", other),
        }
        prop_assert!(session.is_quarantined());
        // Quarantine is sticky: the next submission is screened out before
        // any phase runs (the injector never even sees the job).
        match engine.process(&mut session, &stream_frame(stream, warm)) {
            FrameOutcome::Rejected(AmcError::SessionPoisoned { session: id }) => {
                prop_assert_eq!(id, session.id());
            }
            other => prop_assert!(false, "expected SessionPoisoned, got {:?}", other),
        }
        // Recovery: eviction drops the suspect state and ends quarantine;
        // from there the stream is indistinguishable from a fresh session.
        engine.clear_failure_injector();
        prop_assert!(session.evict_state(), "state was present to evict");
        prop_assert!(!session.is_quarantined());
        let before = session.stats();
        let mut fresh = engine.open_session().expect("capacity");
        for t in warm..warm + tail {
            let frame = stream_frame(stream, t);
            let r_old = engine.process(&mut session, &frame).expect("admitted");
            let r_new = engine.process(&mut fresh, &frame).expect("admitted");
            if t == warm {
                prop_assert!(r_old.is_key, "rehydration forces a key frame");
            }
            assert_result_eq(&r_old, &r_new, &format!("rehydrated vs fresh, frame {t}"));
        }
        prop_assert_eq!(session.stats().delta_since(&before), fresh.stats());
    }
}

#[test]
fn heterogeneous_sessions_match_their_serial_counterparts() {
    // Streams with different per-session configs (policy, warp mode,
    // fixed point) share one engine — and a worker pool — and still match
    // their own serial executors exactly.
    let z = zoo::tiny_fasterm(5);
    let net = Arc::new(zoo::tiny_fasterm(5).network);
    let configs = [
        AmcConfig::default(),
        AmcConfig {
            warp: WarpMode::Memoize,
            policy: PolicyConfig::StaticRate { period: 2 },
            ..Default::default()
        },
        AmcConfig {
            fixed_point: true,
            policy: PolicyConfig::BlockError {
                threshold: 1.0,
                max_gap: 4,
            },
            ..Default::default()
        },
    ];
    let limits = EngineLimits::builder()
        .worker_threads(3)
        .build()
        .expect("valid limits");
    let mut engine =
        Engine::with_limits(net, AmcConfig::default(), limits).expect("valid engine config");
    let mut sessions: Vec<_> = configs
        .iter()
        .map(|c| engine.open_session_with(*c).expect("same target"))
        .collect();
    let mut serials: Vec<AmcExecutor> = configs
        .iter()
        .map(|c| AmcExecutor::try_new(&z.network, *c).expect("valid config"))
        .collect();
    for t in 0..10 {
        let frames: Vec<GrayImage> = (0..configs.len()).map(|s| stream_frame(s, t)).collect();
        let results = engine.process_batch(sessions.iter_mut().zip(frames.iter()));
        for (s, r) in results.iter().enumerate() {
            let r = r.frame().expect("unlimited engine admits every frame");
            let want = serials[s].process(&frames[s]);
            assert_result_eq(r, &want, &format!("hetero stream {s} frame {t}"));
        }
    }
    for (session, serial) in sessions.iter().zip(&serials) {
        assert_eq!(session.stats(), serial.stats(), "hetero aggregate stats");
    }
}
