//! Compressed activation storage: run-length encoding and the sparsity
//! decoder lanes.
//!
//! "EVA² uses run-length encoding (RLE) for activations. RLE is critical to
//! enabling on-chip activation storage: for Faster16, for example, sparse
//! storage reduces memory requirements by more than 80%" (§III-B). Values
//! are 16-bit fixed point; zeros are elided and represented as a *zero gap*
//! before each stored value.
//!
//! [`SparsityDecoderLane`] and [`LaneGroup`] model the warp engine's load
//! path (Fig 10): four lanes stream four neighbouring activation values and
//! a min unit lets all four skip their shared zeros in a single step.

use eva2_tensor::{Fixed, Shape3, SparseActivation, Tensor3};
use serde::{Deserialize, Serialize};

/// Maximum zero gap representable in one RLE entry. Longer runs insert
/// explicit zero-value entries, mirroring a fixed-width gap field in
/// hardware.
pub const MAX_ZERO_GAP: u16 = 255;

/// One run-length entry: `zero_gap` zeros followed by `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RleEntry {
    /// Number of zeros preceding `value` in the stream.
    pub zero_gap: u16,
    /// The non-zero activation value (Q8.8 bits). May be zero only for
    /// gap-overflow placeholder entries.
    pub value: i16,
}

/// A run-length-encoded activation tensor in Q8.8 fixed point.
///
/// Channels are encoded independently (the decoder lanes walk one channel at
/// a time). Trailing zeros in a channel are implicit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RleActivation {
    shape: Shape3,
    channels: Vec<Vec<RleEntry>>,
}

impl RleActivation {
    /// Encodes a tensor, zeroing values with `|v| <= threshold` first
    /// (the paper's near-zero suppression, §II-C2) and quantizing to Q8.8.
    pub fn encode(t: &Tensor3, threshold: f32) -> Self {
        let shape = t.shape();
        let mut channels = Vec::with_capacity(shape.channels);
        for c in 0..shape.channels {
            let mut entries = Vec::new();
            let mut gap: u32 = 0;
            for &v in t.channel(c) {
                let q = if v.abs() <= threshold {
                    Fixed::ZERO
                } else {
                    Fixed::from_f32(v)
                };
                if q.is_zero() {
                    gap += 1;
                    continue;
                }
                // A placeholder entry stands for MAX_ZERO_GAP skipped zeros
                // *plus its own zero value*, i.e. MAX_ZERO_GAP + 1 positions.
                while gap > MAX_ZERO_GAP as u32 {
                    entries.push(RleEntry {
                        zero_gap: MAX_ZERO_GAP,
                        value: 0,
                    });
                    gap -= MAX_ZERO_GAP as u32 + 1;
                }
                entries.push(RleEntry {
                    zero_gap: gap as u16,
                    value: q.to_bits(),
                });
                gap = 0;
            }
            channels.push(entries);
        }
        Self { shape, channels }
    }

    /// Decodes back to a dense tensor (values on the Q8.8 grid).
    pub fn decode(&self) -> Tensor3 {
        let mut t = Tensor3::zeros(self.shape);
        for (c, entries) in self.channels.iter().enumerate() {
            let plane = t.channel_mut(c);
            let mut pos = 0usize;
            for e in entries {
                pos += e.zero_gap as usize;
                if e.value != 0 {
                    plane[pos] = Fixed::from_bits(e.value).to_f32();
                    pos += 1;
                } else {
                    // Gap-overflow placeholder occupies no value slot beyond
                    // its zeros... except the placeholder itself stands for
                    // a zero value.
                    pos += 1;
                }
            }
        }
        t
    }

    /// The decoded tensor shape.
    pub fn shape(&self) -> Shape3 {
        self.shape
    }

    /// Encoded size in bytes (each entry is 16-bit gap + 16-bit value in
    /// this model; the RTL packs tighter but ratios are what matter).
    pub fn encoded_bytes(&self) -> usize {
        self.channels.iter().map(|c| c.len() * 4).sum()
    }

    /// Dense 16-bit storage size in bytes.
    pub fn dense_bytes(&self) -> usize {
        self.shape.len() * 2
    }

    /// Bytes of heap memory this store holds (allocated capacities,
    /// including the per-channel vector headers) — distinct from
    /// [`RleActivation::encoded_bytes`], which models the hardware's
    /// packed stream; this audits the *host* allocation the serving
    /// engine's per-session memory budget is charged for.
    pub fn heap_bytes(&self) -> usize {
        self.channels.capacity() * std::mem::size_of::<Vec<RleEntry>>()
            + self
                .channels
                .iter()
                .map(|c| c.capacity() * std::mem::size_of::<RleEntry>())
                .sum::<usize>()
    }

    /// Compression ratio: `1 - encoded/dense` (the paper reports 80–87% for
    /// its detection networks).
    pub fn compression(&self) -> f32 {
        1.0 - self.encoded_bytes() as f32 / self.dense_bytes().max(1) as f32
    }

    /// The run-length stream of channel `c` (for the decoder lanes).
    pub fn channel_stream(&self, c: usize) -> &[RleEntry] {
        &self.channels[c]
    }

    /// Converts to the non-zero `(position, value)` view the sparse-aware
    /// CNN suffix consumes, **without densifying**: each lane's zero gaps
    /// are walked exactly once, so the cost is `O(entries)` rather than
    /// `O(dense size)`. Gap-overflow placeholders contribute positions but
    /// no values.
    pub fn to_sparse(&self) -> SparseActivation {
        let channels = self
            .channels
            .iter()
            .map(|entries| {
                let mut pos = 0u32;
                let mut out = Vec::with_capacity(entries.len());
                for e in entries {
                    pos += e.zero_gap as u32;
                    if e.value != 0 {
                        out.push((pos, Fixed::from_bits(e.value).to_f32()));
                    }
                    pos += 1;
                }
                out
            })
            .collect();
        SparseActivation::from_channels(self.shape, channels)
    }
}

/// One sparsity decoder lane (Fig 10): streams a channel's RLE entries and
/// exposes the current zero gap, decrementing as the min unit skips.
#[derive(Debug, Clone)]
pub struct SparsityDecoderLane {
    entries: Vec<RleEntry>,
    next: usize,
    /// Zeros remaining before the current value becomes visible.
    zero_gap: u32,
    /// Current value register (valid when `zero_gap == 0`).
    value: Fixed,
    /// Stream exhausted: produce zeros forever.
    drained: bool,
}

impl SparsityDecoderLane {
    /// Creates a lane over an entry stream.
    pub fn new(entries: &[RleEntry]) -> Self {
        let mut lane = Self {
            entries: entries.to_vec(),
            next: 0,
            zero_gap: 0,
            value: Fixed::ZERO,
            drained: false,
        };
        lane.load_next();
        lane
    }

    fn load_next(&mut self) {
        if self.next < self.entries.len() {
            let e = self.entries[self.next];
            self.next += 1;
            self.zero_gap = e.zero_gap as u32;
            self.value = Fixed::from_bits(e.value);
        } else {
            self.drained = true;
            self.zero_gap = u32::MAX; // infinite zeros
            self.value = Fixed::ZERO;
        }
    }

    /// The lane's current zero gap (distance to its next non-zero value).
    pub fn zero_gap(&self) -> u32 {
        self.zero_gap
    }

    /// Advances the lane by `skip` positions (the min-unit broadcast), then
    /// returns the value visible at the new position: the register when the
    /// gap reached zero, otherwise zero.
    ///
    /// After producing a real value the lane dequeues its next entry.
    pub fn advance(&mut self, skip: u32) -> Fixed {
        if self.drained {
            return Fixed::ZERO;
        }
        debug_assert!(skip <= self.zero_gap, "min unit may not overshoot a lane");
        self.zero_gap -= skip;
        if self.zero_gap == 0 {
            let v = self.value;
            self.load_next();
            v
        } else {
            // Consume one zero position.
            self.zero_gap -= 1;
            Fixed::ZERO
        }
    }
}

/// Four decoder lanes with a min unit, producing aligned groups of four
/// values per step while skipping shared zero runs (Fig 10).
#[derive(Debug, Clone)]
pub struct LaneGroup {
    lanes: [SparsityDecoderLane; 4],
    /// Positions consumed so far.
    pub position: u64,
    /// Steps (cycles) executed — the quantity reduced by zero skipping:
    /// "the warp engine skips over zero entries when performing
    /// interpolation, reducing the motion compensation cost proportionally
    /// to the activations' sparsity" (§V).
    pub cycles: u64,
}

impl LaneGroup {
    /// Creates a group over four entry streams.
    pub fn new(streams: [&[RleEntry]; 4]) -> Self {
        Self {
            lanes: [
                SparsityDecoderLane::new(streams[0]),
                SparsityDecoderLane::new(streams[1]),
                SparsityDecoderLane::new(streams[2]),
                SparsityDecoderLane::new(streams[3]),
            ],
            position: 0,
            cycles: 0,
        }
    }

    /// Produces the next group of four values, skipping positions where all
    /// four lanes are zero. Returns `None` when every lane is drained.
    ///
    /// The returned tuple is `(values, positions_skipped)`.
    pub fn next_group(&mut self) -> Option<([Fixed; 4], u32)> {
        let min_gap = self
            .lanes
            .iter()
            .map(|l| l.zero_gap())
            .min()
            .expect("4 lanes");
        if min_gap == u32::MAX {
            return None; // all drained
        }
        let vals = [
            self.lanes[0].advance(min_gap),
            self.lanes[1].advance(min_gap),
            self.lanes[2].advance(min_gap),
            self.lanes[3].advance(min_gap),
        ];
        self.position += min_gap as u64 + 1;
        self.cycles += 1;
        Some((vals, min_gap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_tensor() -> Tensor3 {
        Tensor3::from_fn(Shape3::new(2, 4, 4), |c, y, x| {
            if (y * 4 + x + c) % 5 == 0 {
                (1 + y + x) as f32 * 0.5
            } else {
                0.0
            }
        })
    }

    #[test]
    fn roundtrip_is_exact_on_q88_grid() {
        let t = sparse_tensor();
        let rle = RleActivation::encode(&t, 0.0);
        assert_eq!(rle.decode(), t);
    }

    #[test]
    fn threshold_zeroes_small_values() {
        let t = Tensor3::from_vec(Shape3::new(1, 1, 4), vec![0.001, 0.5, -0.002, -0.8]);
        let rle = RleActivation::encode(&t, 0.01);
        let d = rle.decode();
        assert_eq!(d.as_slice()[0], 0.0);
        assert_eq!(d.as_slice()[2], 0.0);
        assert_eq!(d.as_slice()[1], 0.5);
    }

    #[test]
    fn sparse_data_compresses_dramatically() {
        // 95% zeros → compression must exceed the paper's 80% claim.
        let t = Tensor3::from_fn(Shape3::new(4, 16, 16), |_, y, x| {
            if (y * 16 + x) % 20 == 0 {
                1.5
            } else {
                0.0
            }
        });
        let rle = RleActivation::encode(&t, 0.0);
        assert!(
            rle.compression() > 0.8,
            "compression {} too low",
            rle.compression()
        );
        assert_eq!(rle.decode(), t);
    }

    #[test]
    fn dense_data_does_not_compress() {
        let t = Tensor3::filled(Shape3::new(1, 8, 8), 1.0);
        let rle = RleActivation::encode(&t, 0.0);
        assert!(rle.compression() <= 0.0);
        assert_eq!(rle.decode(), t);
    }

    #[test]
    fn long_zero_runs_use_placeholders() {
        let mut t = Tensor3::zeros(Shape3::new(1, 20, 20)); // 400 zeros
        t.set(0, 19, 19, 2.0);
        let rle = RleActivation::encode(&t, 0.0);
        // 399 zeros before the value: one placeholder (255) + entry (144).
        assert_eq!(rle.channel_stream(0).len(), 2);
        assert_eq!(rle.decode(), t);
    }

    #[test]
    fn all_zero_channel_is_empty() {
        let t = Tensor3::zeros(Shape3::new(2, 4, 4));
        let rle = RleActivation::encode(&t, 0.0);
        assert_eq!(rle.channel_stream(0).len(), 0);
        assert_eq!(rle.encoded_bytes(), 0);
        assert_eq!(rle.decode(), t);
    }

    #[test]
    fn negative_values_roundtrip() {
        let t = Tensor3::from_vec(Shape3::new(1, 1, 3), vec![-1.5, 0.0, -0.25]);
        let rle = RleActivation::encode(&t, 0.0);
        assert_eq!(rle.decode(), t);
    }

    #[test]
    fn quantization_respects_q88() {
        let t = Tensor3::from_vec(Shape3::new(1, 1, 2), vec![0.126, 1.0 / 3.0]);
        let d = RleActivation::encode(&t, 0.0).decode();
        assert_eq!(d.as_slice()[0], Fixed::from_f32(0.126).to_f32());
        assert_eq!(d.as_slice()[1], Fixed::from_f32(1.0 / 3.0).to_f32());
    }

    // ------------------------------------------------------------------
    // Decoder lanes
    // ------------------------------------------------------------------

    fn stream_of(vals: &[f32]) -> Vec<RleEntry> {
        let t = Tensor3::from_vec(Shape3::new(1, 1, vals.len()), vals.to_vec());
        RleActivation::encode(&t, 0.0).channel_stream(0).to_vec()
    }

    /// Decodes a full stream through a single lane, checking it reproduces
    /// the dense sequence.
    fn drain_lane(vals: &[f32]) -> Vec<f32> {
        let entries = stream_of(vals);
        let mut lane = SparsityDecoderLane::new(&entries);
        (0..vals.len()).map(|_| lane.advance(0).to_f32()).collect()
    }

    #[test]
    fn single_lane_reproduces_sequence() {
        let vals = [0.0, 0.0, 1.5, 0.0, -2.0, 0.0, 0.0, 3.0];
        assert_eq!(drain_lane(&vals), vals.to_vec());
    }

    #[test]
    fn lane_group_skips_shared_zeros() {
        // Four identical streams with a long shared zero prefix: the min
        // unit should jump it in one step.
        let vals = [0.0, 0.0, 0.0, 0.0, 0.0, 4.0, 0.0, 2.0];
        let entries = stream_of(&vals);
        let mut group = LaneGroup::new([&entries, &entries, &entries, &entries]);
        let (v, skipped) = group.next_group().expect("value");
        assert_eq!(skipped, 5);
        assert!(v.iter().all(|x| x.to_f32() == 4.0));
        let (v2, _) = group.next_group().expect("value");
        assert!(v2.iter().all(|x| x.to_f32() == 2.0));
        assert!(group.next_group().is_none());
        // Two cycles for eight positions: 4x fewer than dense iteration.
        assert_eq!(group.cycles, 2);
    }

    #[test]
    fn lane_group_handles_misaligned_zeros() {
        let a = stream_of(&[1.0, 0.0, 0.0, 0.0]);
        let b = stream_of(&[0.0, 2.0, 0.0, 0.0]);
        let c = stream_of(&[0.0, 0.0, 3.0, 0.0]);
        let d = stream_of(&[0.0, 0.0, 0.0, 4.0]);
        let mut group = LaneGroup::new([&a, &b, &c, &d]);
        let mut decoded = Vec::new();
        while let Some((v, _)) = group.next_group() {
            decoded.push([v[0].to_f32(), v[1].to_f32(), v[2].to_f32(), v[3].to_f32()]);
        }
        assert_eq!(
            decoded,
            vec![
                [1.0, 0.0, 0.0, 0.0],
                [0.0, 2.0, 0.0, 0.0],
                [0.0, 0.0, 3.0, 0.0],
                [0.0, 0.0, 0.0, 4.0],
            ]
        );
        // No shared zeros → no skipping, 4 cycles.
        assert_eq!(group.cycles, 4);
    }

    #[test]
    fn lane_group_sparser_streams_take_fewer_cycles() {
        let sparse = stream_of(
            &[0.0; 64]
                .iter()
                .enumerate()
                .map(|(i, _)| if i == 60 { 1.0 } else { 0.0 })
                .collect::<Vec<_>>(),
        );
        let mut group = LaneGroup::new([&sparse, &sparse, &sparse, &sparse]);
        let mut n = 0;
        while group.next_group().is_some() {
            n += 1;
        }
        assert_eq!(n, 1, "single shared value needs a single cycle");
        assert_eq!(group.cycles, 1);
    }

    #[test]
    fn drained_group_returns_none_immediately_for_empty_streams() {
        let empty: Vec<RleEntry> = Vec::new();
        let mut group = LaneGroup::new([&empty, &empty, &empty, &empty]);
        assert!(group.next_group().is_none());
        assert_eq!(group.cycles, 0);
    }
}
