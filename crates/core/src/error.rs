//! Typed errors for AMC configuration and serving.
//!
//! Everything fallible in the public execution API — target-layer
//! resolution, configuration validation, session management — reports an
//! [`AmcError`] instead of the stringly-typed `Result<_, String>` the
//! original executor used, so callers can match on the failure instead of
//! parsing prose.

use std::error::Error;
use std::fmt;

/// Why an AMC configuration or serving operation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AmcError {
    /// The network has no spatial prefix to split (its first layer is
    /// already non-spatial), so no target layer exists.
    NoSpatialPrefix {
        /// Name of the offending network.
        network: String,
    },
    /// `TargetSelection::Early` was requested but the network has no
    /// pooling layer.
    NoPoolingLayer {
        /// Name of the offending network.
        network: String,
    },
    /// An explicit `TargetSelection::Index` lies outside the spatial
    /// prefix.
    TargetOutsidePrefix {
        /// The requested layer index.
        index: usize,
        /// The last spatial layer — the largest valid target.
        last_spatial: usize,
    },
    /// A configuration field failed validation (builder or constructor).
    InvalidConfig {
        /// Which invariant was violated.
        reason: &'static str,
    },
    /// A session was opened with a configuration that resolves to a
    /// different target layer than its engine's, so its key-frame state
    /// could not share the engine's batched prefix.
    SessionTargetMismatch {
        /// The engine's resolved target layer.
        engine: usize,
        /// The session configuration's resolved target layer.
        session: usize,
    },
}

impl fmt::Display for AmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmcError::NoSpatialPrefix { network } => {
                write!(f, "{network}: network has no spatial prefix")
            }
            AmcError::NoPoolingLayer { network } => {
                write!(
                    f,
                    "{network}: network has no pooling layer for an early target"
                )
            }
            AmcError::TargetOutsidePrefix {
                index,
                last_spatial,
            } => write!(
                f,
                "layer {index} is outside the spatial prefix (last spatial layer is {last_spatial})"
            ),
            AmcError::InvalidConfig { reason } => write!(f, "invalid AMC configuration: {reason}"),
            AmcError::SessionTargetMismatch { engine, session } => write!(
                f,
                "session target layer {session} does not match engine target layer {engine}"
            ),
        }
    }
}

impl Error for AmcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AmcError::TargetOutsidePrefix {
            index: 99,
            last_spatial: 7,
        };
        let s = e.to_string();
        assert!(s.contains("99") && s.contains('7'), "{s}");
        assert!(AmcError::InvalidConfig {
            reason: "search step must be at least 1"
        }
        .to_string()
        .contains("search step"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error<E: Error>(_: &E) {}
        takes_error(&AmcError::NoSpatialPrefix {
            network: "net".into(),
        });
    }
}
