//! Typed errors for AMC configuration and serving.
//!
//! Everything fallible in the public execution API — target-layer
//! resolution, configuration validation, session management — reports an
//! [`AmcError`] instead of the stringly-typed `Result<_, String>` the
//! original executor used, so callers can match on the failure instead of
//! parsing prose.

use std::error::Error;
use std::fmt;

/// Why an AMC configuration or serving operation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AmcError {
    /// The network has no spatial prefix to split (its first layer is
    /// already non-spatial), so no target layer exists.
    NoSpatialPrefix {
        /// Name of the offending network.
        network: String,
    },
    /// `TargetSelection::Early` was requested but the network has no
    /// pooling layer.
    NoPoolingLayer {
        /// Name of the offending network.
        network: String,
    },
    /// An explicit `TargetSelection::Index` lies outside the spatial
    /// prefix.
    TargetOutsidePrefix {
        /// The requested layer index.
        index: usize,
        /// The last spatial layer — the largest valid target.
        last_spatial: usize,
    },
    /// A configuration field failed validation (builder or constructor).
    InvalidConfig {
        /// Which invariant was violated.
        reason: &'static str,
    },
    /// A session was opened with a configuration that resolves to a
    /// different target layer than its engine's, so its key-frame state
    /// could not share the engine's batched prefix.
    SessionTargetMismatch {
        /// The engine's resolved target layer.
        engine: usize,
        /// The session configuration's resolved target layer.
        session: usize,
    },
    /// A session was submitted to an engine that did not open it. Running
    /// one engine's key-frame state against another engine's network would
    /// silently produce garbage, so the submission is refused instead.
    EngineMismatch {
        /// Id of the offending session (unique per opening engine).
        session: u64,
    },
    /// `Engine::open_session*` was refused because the engine already holds
    /// its configured maximum number of live sessions
    /// (`EngineLimits::max_sessions`). Close or evict a session first.
    EngineAtCapacity {
        /// The configured session limit.
        limit: usize,
    },
    /// A submitted frame was shed by admission control: serving it would
    /// exceed a per-tick budget (`EngineLimits::max_frames_per_tick` or
    /// `max_keys_per_tick`). The session is untouched — resubmitting the
    /// frame on a later tick is safe and will produce the same result it
    /// would have produced now.
    BudgetExceeded {
        /// Which budget was exhausted (`"frames per tick"` /
        /// `"key frames per tick"`).
        what: &'static str,
        /// The configured budget.
        budget: usize,
    },
    /// The session was evicted by the engine (admission revoked) and can no
    /// longer submit frames; open a fresh session to resume the stream.
    SessionEvicted {
        /// Id of the evicted session.
        session: u64,
    },
    /// A submitted frame's dimensions do not match the geometry the
    /// serving network expects. The expected geometry is the network's input
    /// shape, so it cannot be changed mid-stream; a renegotiated source
    /// must rescale frames (or be served by an engine built for the new
    /// resolution).
    FrameGeometryMismatch {
        /// Height the network was built for.
        expected_height: usize,
        /// Width the network was built for.
        expected_width: usize,
        /// Height of the submitted frame.
        got_height: usize,
        /// Width of the submitted frame.
        got_width: usize,
    },
    /// An internal serving invariant was violated. This is a bug report,
    /// not an operational condition — but a serving process must not be
    /// killed by one bad stream, so it surfaces as a typed error instead
    /// of a panic.
    Internal {
        /// Which invariant was violated.
        what: &'static str,
    },
    /// A worker panicked while executing one frame's job. The panic was
    /// contained at the job boundary (`serve`'s containment seam), so it
    /// cost exactly one frame: the rest of the tick completed as if the
    /// panicking job had never been submitted. Because the panic may have
    /// left the owning session's state half-mutated, that session is
    /// quarantined — see [`AmcError::SessionPoisoned`].
    WorkerPanicked {
        /// Which serving phase the panic escaped from (`"estimate"`,
        /// `"admit"`, `"prefix"`, or `"complete"`).
        phase: &'static str,
        /// The panic payload, when it was a string (the common
        /// `panic!("...")` case); a placeholder otherwise.
        payload: String,
    },
    /// The session is quarantined: a previous frame's job panicked while
    /// holding this session's state, so the state cannot be trusted. Every
    /// submission is refused with this error until the session is evicted
    /// (`StreamSession::evict_state`), which drops the suspect state and
    /// lets the next frame rehydrate it through the forced-key seam —
    /// bit-identical to a fresh session from there on.
    SessionPoisoned {
        /// Id of the quarantined session.
        session: u64,
    },
    /// The static verifier (`eva2-analysis`) found an error-severity
    /// diagnostic for this (network, configuration) pair: a shape that
    /// cannot propagate, a prefix that is not warp-legal, or a Q8.8 range
    /// that will saturate. Construction is refused so the fault surfaces
    /// here — with a stable diagnostic code — instead of as a panic or a
    /// silent saturation on the first frame. Escape hatch for experiments:
    /// `AmcConfig::builder().allow_unverified()`.
    AnalysisRejected {
        /// Stable diagnostic code (e.g. `E-SHAPE-003`); see the
        /// `eva2-analysis` crate docs for the reference table.
        code: &'static str,
        /// The offending layer, when the finding anchors to one.
        layer: Option<usize>,
        /// Human-readable explanation from the analysis report.
        message: String,
    },
}

impl fmt::Display for AmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmcError::NoSpatialPrefix { network } => {
                write!(f, "{network}: network has no spatial prefix")
            }
            AmcError::NoPoolingLayer { network } => {
                write!(
                    f,
                    "{network}: network has no pooling layer for an early target"
                )
            }
            AmcError::TargetOutsidePrefix {
                index,
                last_spatial,
            } => write!(
                f,
                "layer {index} is outside the spatial prefix (last spatial layer is {last_spatial})"
            ),
            AmcError::InvalidConfig { reason } => write!(f, "invalid AMC configuration: {reason}"),
            AmcError::SessionTargetMismatch { engine, session } => write!(
                f,
                "session target layer {session} does not match engine target layer {engine}"
            ),
            AmcError::EngineMismatch { session } => {
                write!(f, "session {session} was opened by a different engine")
            }
            AmcError::EngineAtCapacity { limit } => write!(
                f,
                "engine is at its session capacity ({limit} live sessions)"
            ),
            AmcError::BudgetExceeded { what, budget } => write!(
                f,
                "frame shed by admission control: {what} budget ({budget}) exhausted this tick"
            ),
            AmcError::SessionEvicted { session } => write!(
                f,
                "session {session} was evicted by the engine; open a fresh session"
            ),
            AmcError::FrameGeometryMismatch {
                expected_height,
                expected_width,
                got_height,
                got_width,
            } => write!(
                f,
                "frame geometry {got_height}x{got_width} does not match the network's \
                 input geometry {expected_height}x{expected_width} (rescale the frame \
                 or serve it from an engine built for that resolution)"
            ),
            AmcError::Internal { what } => {
                write!(f, "internal serving invariant violated: {what}")
            }
            AmcError::WorkerPanicked { phase, payload } => write!(
                f,
                "worker panicked in the {phase} phase (contained; this frame only): {payload}"
            ),
            AmcError::SessionPoisoned { session } => write!(
                f,
                "session {session} is quarantined after a contained panic; \
                 evict its state to recover through a fresh key frame"
            ),
            AmcError::AnalysisRejected {
                code,
                layer,
                message,
            } => {
                write!(f, "rejected by static analysis [{code}]: {message}")?;
                if let Some(i) = layer {
                    write!(f, " (layer {i})")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for AmcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AmcError::TargetOutsidePrefix {
            index: 99,
            last_spatial: 7,
        };
        let s = e.to_string();
        assert!(s.contains("99") && s.contains('7'), "{s}");
        assert!(AmcError::InvalidConfig {
            reason: "search step must be at least 1"
        }
        .to_string()
        .contains("search step"));
    }

    #[test]
    fn lifecycle_variants_display_is_informative() {
        assert!(AmcError::EngineAtCapacity { limit: 3 }
            .to_string()
            .contains('3'));
        let shed = AmcError::BudgetExceeded {
            what: "key frames per tick",
            budget: 2,
        }
        .to_string();
        assert!(
            shed.contains("key frames per tick") && shed.contains('2'),
            "{shed}"
        );
        assert!(AmcError::SessionEvicted { session: 9 }
            .to_string()
            .contains('9'));
        assert!(AmcError::EngineMismatch { session: 4 }
            .to_string()
            .contains("different engine"));
        let geom = AmcError::FrameGeometryMismatch {
            expected_height: 48,
            expected_width: 48,
            got_height: 24,
            got_width: 24,
        }
        .to_string();
        assert!(geom.contains("48x48") && geom.contains("24x24"), "{geom}");
        assert!(AmcError::Internal {
            what: "one prefix activation per key frame"
        }
        .to_string()
        .contains("invariant"));
    }

    #[test]
    fn containment_variants_display_is_informative() {
        let p = AmcError::WorkerPanicked {
            phase: "prefix",
            payload: "index out of bounds".into(),
        }
        .to_string();
        assert!(
            p.contains("prefix") && p.contains("index out of bounds") && p.contains("contained"),
            "{p}"
        );
        let q = AmcError::SessionPoisoned { session: 12 }.to_string();
        assert!(q.contains("12") && q.contains("quarantined"), "{q}");
    }

    #[test]
    fn implements_std_error() {
        fn takes_error<E: Error>(_: &E) {}
        takes_error(&AmcError::NoSpatialPrefix {
            network: "net".into(),
        });
    }
}
