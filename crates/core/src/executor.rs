//! The AMC execution pipeline (Fig 1 / Fig 6 of the paper).
//!
//! [`AmcExecutor`] plays the role of the EVA² unit in front of the layer
//! accelerators: it holds the two pixel buffers (the stored key frame and
//! the current frame), runs RFBME, consults the key-frame choice module, and
//! either (a) forwards pixels to the full CNN and refreshes the sparse key
//! activation buffer, or (b) warps the stored activation and invokes only
//! the CNN suffix.

use crate::error::AmcError;
use crate::policy::{FrameKind, FrameMetrics, PolicyConfig};
use crate::serve::SessionCore;
use crate::sparse::RleActivation;
use crate::target::TargetSelection;
use crate::warp::WarpStats;
use eva2_cnn::network::Network;
use eva2_motion::rfbme::{RfGeometry, Rfbme, RfbmeResult, SearchParams};
use eva2_tensor::{GemmScratch, GrayImage, Tensor3};
use serde::{Deserialize, Serialize};

/// How predicted frames update the stored activation (§IV-E1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarpMode {
    /// Full activation motion compensation (detection networks).
    MotionCompensate {
        /// Interpolation used for fractional destinations.
        bilinear: bool,
    },
    /// Reuse the stored activation unchanged — "simple memoization", which
    /// the paper found *better* for translation-insensitive classification
    /// (AlexNet): warping "can even degrade them by introducing noise".
    Memoize,
}

impl Default for WarpMode {
    fn default() -> Self {
        WarpMode::MotionCompensate { bilinear: true }
    }
}

/// Configuration for an [`AmcExecutor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmcConfig {
    /// Which layer ends the CNN prefix.
    pub target: TargetSelection,
    /// Warp vs memoize on predicted frames.
    pub warp: WarpMode,
    /// RFBME search window.
    pub search: SearchParams,
    /// Key-frame policy.
    pub policy: PolicyConfig,
    /// Use the bit-accurate Q8.8 warp datapath instead of the `f32`
    /// reference.
    pub fixed_point: bool,
    /// Near-zero suppression threshold for the sparse activation store.
    pub sparsity_threshold: f32,
    /// Confidence bound on the RFBME residual: when a frame the policy
    /// decided *predicted* carries a per-pixel block error above this, the
    /// match did not explain the frame (occlusion, corruption, a tolerated
    /// cut) and warping would propagate garbage — the frame is degraded to
    /// a key frame instead (§III-C), counted in
    /// [`ExecStats::forced_keys`]. The default (`f32::INFINITY`) disables
    /// the bound.
    pub max_residual_error: f32,
    /// Skip the static verifier at engine/executor/session construction.
    ///
    /// By default every construction runs the `eva2-analysis` pass
    /// pipeline over the (network, config) pair and refuses error-severity
    /// findings with [`AmcError::AnalysisRejected`]. Setting this flag —
    /// normally through [`AmcConfigBuilder::allow_unverified`] — admits
    /// the pair anyway, for experiments that knowingly run outside the
    /// verified envelope (e.g. probing Q8.8 saturation behaviour).
    pub allow_unverified: bool,
}

impl Default for AmcConfig {
    fn default() -> Self {
        Self {
            target: TargetSelection::Late,
            warp: WarpMode::default(),
            search: SearchParams { radius: 8, step: 1 },
            policy: PolicyConfig::BlockError {
                threshold: 3.0,
                max_gap: 16,
            },
            fixed_point: false,
            sparsity_threshold: 1.0 / 256.0,
            max_residual_error: f32::INFINITY,
            allow_unverified: false,
        }
    }
}

impl AmcConfig {
    /// Starts a validating builder pre-loaded with the defaults.
    pub fn builder() -> AmcConfigBuilder {
        AmcConfigBuilder {
            config: Self::default(),
        }
    }

    /// Checks every network-independent invariant of the configuration.
    /// (Target resolution is network-dependent and checked at
    /// executor/engine construction.)
    ///
    /// # Errors
    ///
    /// Returns [`AmcError::InvalidConfig`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), AmcError> {
        let invalid = |reason: &'static str| Err(AmcError::InvalidConfig { reason });
        if self.search.step == 0 {
            return invalid("search step must be at least 1");
        }
        if !self.sparsity_threshold.is_finite() || self.sparsity_threshold < 0.0 {
            return invalid("sparsity threshold must be finite and non-negative");
        }
        if self.max_residual_error.is_nan() || self.max_residual_error < 0.0 {
            return invalid("max residual error must be non-negative (INFINITY disables it)");
        }
        match self.policy {
            PolicyConfig::AlwaysKey => {}
            PolicyConfig::StaticRate { period } => {
                if period == 0 {
                    return invalid("static-rate period must be at least 1");
                }
            }
            PolicyConfig::BlockError { threshold, max_gap }
            | PolicyConfig::MotionMagnitude { threshold, max_gap } => {
                if threshold.is_nan() {
                    return invalid("policy threshold must not be NaN");
                }
                if max_gap == 0 {
                    return invalid("policy max_gap must be at least 1");
                }
            }
        }
        Ok(())
    }

    /// Runs the `eva2-analysis` pass pipeline for this configuration over
    /// `net`: shape inference, warp legality (against this config's search
    /// window), Q8.8 range analysis (against this config's datapath), and
    /// sparsity flow at the resolved target.
    ///
    /// This is the report [`Engine`](crate::serve::Engine) and
    /// [`AmcExecutor`] consult at construction; it is public so tools (the
    /// `analyze_zoo` bin, examples) can print it.
    ///
    /// # Errors
    ///
    /// Returns [`AmcError`] when the target selection cannot be resolved
    /// for `net` — resolution failures precede analysis.
    pub fn analyze(&self, net: &Network) -> Result<eva2_analysis::AnalysisReport, AmcError> {
        let (target, _) = self.target.geometry(net)?;
        Ok(eva2_analysis::analyze(
            net,
            &eva2_analysis::AnalysisOptions {
                target,
                search_radius: self.search.radius,
                search_step: self.search.step,
                fixed_point: self.fixed_point,
                // Frames enter through `GrayImage::to_tensor`: u8 / 255.
                input_range: (0.0, 1.0),
            },
        ))
    }

    /// The construction-time gate: refuses error-severity analysis
    /// findings unless [`AmcConfig::allow_unverified`] is set. `target`
    /// must already be resolved (callers need it anyway).
    pub(crate) fn verify_resolved(&self, net: &Network, target: usize) -> Result<(), AmcError> {
        if self.allow_unverified {
            return Ok(());
        }
        let report = eva2_analysis::analyze(
            net,
            &eva2_analysis::AnalysisOptions {
                target,
                search_radius: self.search.radius,
                search_step: self.search.step,
                fixed_point: self.fixed_point,
                input_range: (0.0, 1.0),
            },
        );
        match report.first_error() {
            Some(d) => Err(AmcError::AnalysisRejected {
                code: d.code.as_str(),
                layer: d.layer,
                message: d.message.clone(),
            }),
            None => Ok(()),
        }
    }
}

/// Builder for [`AmcConfig`] whose [`AmcConfigBuilder::build`] validates
/// the result — the non-panicking construction path
/// (`AmcConfig::builder().….build()?`).
#[derive(Debug, Clone)]
#[must_use = "a builder does nothing until `build` is called"]
pub struct AmcConfigBuilder {
    config: AmcConfig,
}

impl AmcConfigBuilder {
    /// Sets the target-layer selection.
    pub fn target(mut self, target: TargetSelection) -> Self {
        self.config.target = target;
        self
    }

    /// Sets the predicted-frame update mode (warp vs memoize).
    pub fn warp(mut self, warp: WarpMode) -> Self {
        self.config.warp = warp;
        self
    }

    /// Sets the RFBME search window.
    pub fn search(mut self, search: SearchParams) -> Self {
        self.config.search = search;
        self
    }

    /// Sets the key-frame policy.
    pub fn policy(mut self, policy: PolicyConfig) -> Self {
        self.config.policy = policy;
        self
    }

    /// Toggles the bit-accurate Q8.8 warp datapath.
    pub fn fixed_point(mut self, fixed_point: bool) -> Self {
        self.config.fixed_point = fixed_point;
        self
    }

    /// Sets the near-zero suppression threshold of the sparse store.
    pub fn sparsity_threshold(mut self, threshold: f32) -> Self {
        self.config.sparsity_threshold = threshold;
        self
    }

    /// Sets the residual-error confidence bound above which a predicted
    /// frame is degraded to a key frame (`f32::INFINITY` disables it).
    pub fn max_residual_error(mut self, bound: f32) -> Self {
        self.config.max_residual_error = bound;
        self
    }

    /// Disables the static verifier at construction time — the escape
    /// hatch for (network, config) pairs the analysis would refuse (see
    /// [`AmcError::AnalysisRejected`]). Use for experiments only; a
    /// serving engine should never need it.
    pub fn allow_unverified(mut self) -> Self {
        self.config.allow_unverified = true;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AmcError::InvalidConfig`] when an invariant is violated —
    /// see [`AmcConfig::validate`].
    pub fn build(self) -> Result<AmcConfig, AmcError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Outcome of processing one frame.
#[derive(Debug, Clone)]
pub struct AmcFrameResult {
    /// The CNN output (suffix output) for this frame.
    pub output: Tensor3,
    /// Whether this frame ran as a key frame.
    pub is_key: bool,
    /// MACs actually executed on the layer accelerators (prefix + suffix
    /// for key frames; suffix only for predicted frames).
    pub macs_executed: u64,
    /// RFBME adds performed (zero on the very first frame).
    pub rfbme_ops: u64,
    /// Warp-engine statistics for predicted frames with motion
    /// compensation.
    pub warp: Option<WarpStats>,
    /// Motion metrics that informed the key-frame decision.
    pub metrics: Option<FrameMetrics>,
    /// Compression achieved by the sparse activation store (key frames).
    pub compression: Option<f32>,
}

/// Aggregate statistics across all processed frames.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecStats {
    /// Frames processed.
    pub frames: usize,
    /// Frames executed as key frames.
    pub key_frames: usize,
    /// Total MACs executed on the layer accelerators.
    pub macs: u64,
    /// Total RFBME operations.
    pub rfbme_ops: u64,
    /// Total RFBME search candidates — valid (offset, receptive field)
    /// pairs the two-level search examined. With the two rejection
    /// counters below, this exposes per-stream search efficiency to
    /// serving deployments: `candidates = level-0 rejects + level-1
    /// rejects + refined`, so the fraction refined is
    /// `1 − (rejects / candidates)`.
    pub rfbme_candidates: u64,
    /// RFBME candidates rejected by the whole-tile (level-0) bound.
    pub rfbme_level0_rejects: u64,
    /// RFBME candidates rejected by the per-row/per-column-strip (level-1)
    /// bound after surviving level 0.
    pub rfbme_level1_rejects: u64,
    /// Total warp interpolations.
    pub warp_interpolations: u64,
    /// Key frames forced by the residual confidence bound
    /// ([`AmcConfig::max_residual_error`]): the policy said *predicted*
    /// but the RFBME match could not explain the frame, so the executor
    /// degraded it to a key frame rather than warp garbage (a subset of
    /// [`ExecStats::key_frames`]).
    pub forced_keys: usize,
    /// Key-state evictions this stream survived (serving-engine memory
    /// management); each one forces the next frame to re-key.
    pub evictions: usize,
}

impl ExecStats {
    /// Fraction of frames that were key frames (the paper's "keys" column).
    pub fn key_fraction(&self) -> f32 {
        if self.frames == 0 {
            0.0
        } else {
            self.key_frames as f32 / self.frames as f32
        }
    }

    /// Field-wise difference from an earlier snapshot of the same stream's
    /// statistics — how the serving engine derives a single frame's stats
    /// delta (every counter is monotonic, so `earlier` is always
    /// pointwise ≤ `self`).
    #[must_use]
    pub fn delta_since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            frames: self.frames - earlier.frames,
            key_frames: self.key_frames - earlier.key_frames,
            macs: self.macs - earlier.macs,
            rfbme_ops: self.rfbme_ops - earlier.rfbme_ops,
            rfbme_candidates: self.rfbme_candidates - earlier.rfbme_candidates,
            rfbme_level0_rejects: self.rfbme_level0_rejects - earlier.rfbme_level0_rejects,
            rfbme_level1_rejects: self.rfbme_level1_rejects - earlier.rfbme_level1_rejects,
            warp_interpolations: self.warp_interpolations - earlier.warp_interpolations,
            forced_keys: self.forced_keys - earlier.forced_keys,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

/// The AMC executor: EVA² in front of a CNN, serving one stream.
///
/// This is a thin single-stream wrapper over the same per-session state
/// machine the serving engine runs (see [`crate::serve`]): one
/// [`SessionCore`] plus a borrowed network and a private GEMM scratch.
/// Outputs, decisions, and statistics are bit-identical to a one-session
/// [`crate::serve::Engine`] — multi-stream callers should use the engine
/// directly and gain cross-stream key-frame batching.
pub struct AmcExecutor<'n> {
    net: &'n Network,
    core: SessionCore,
    /// Reusable im2col/GEMM buffers: steady-state frame processing performs
    /// no per-frame convolution-engine allocation.
    scratch: GemmScratch,
}

impl<'n> std::fmt::Debug for AmcExecutor<'n> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AmcExecutor(net={}, target={}, rf={:?}, policy={})",
            self.net.name(),
            self.core.target(),
            self.core.rf(),
            self.core.policy_name()
        )
    }
}

impl<'n> AmcExecutor<'n> {
    /// Creates an executor over `net` with the given configuration.
    ///
    /// (The panicking `AmcExecutor::new` constructor is gone; construct
    /// configurations through [`AmcConfig::builder`] and handle the typed
    /// error here.)
    ///
    /// # Errors
    ///
    /// Returns [`AmcError`] when the configuration fails validation
    /// ([`AmcError::InvalidConfig`]) or its target selection cannot be
    /// resolved for `net` (see [`TargetSelection::resolve`]).
    pub fn try_new(net: &'n Network, config: AmcConfig) -> Result<Self, AmcError> {
        Ok(Self {
            net,
            core: SessionCore::new(net, &config)?,
            scratch: GemmScratch::new(),
        })
    }

    /// The resolved target layer index.
    pub fn target(&self) -> usize {
        self.core.target()
    }

    /// The receptive-field geometry RFBME matches at.
    pub fn rf_geometry(&self) -> RfGeometry {
        self.core.rf()
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> ExecStats {
        self.core.stats()
    }

    /// MACs of the skipped prefix (key-frame-only work).
    pub fn prefix_macs(&self) -> u64 {
        self.core.prefix_macs()
    }

    /// MACs of a full CNN pass.
    pub fn total_macs(&self) -> u64 {
        self.core.total_macs()
    }

    /// Drops stored state, forcing the next frame to be a key frame.
    pub fn reset(&mut self) {
        self.core.reset()
    }

    /// The compressed key activation currently buffered, if any — the
    /// contents of the hardware's sparse key-frame activation buffer.
    pub fn key_activation(&self) -> Option<&RleActivation> {
        self.core.key_activation()
    }

    /// The stored key-frame pixel buffer, if any — the reference input
    /// every RFBME estimate is computed against.
    pub fn key_image(&self) -> Option<&GrayImage> {
        self.core.key_image()
    }

    /// The RFBME estimator this executor runs (copied by the pipelined
    /// executor's worker thread so both compute bit-identical estimates).
    pub fn rfbme(&self) -> Rfbme {
        self.core.rfbme()
    }

    /// Processes one frame through AMC.
    ///
    /// # Panics
    ///
    /// Panics when the frame is rejected with a typed error — today only
    /// [`AmcError::FrameGeometryMismatch`], a frame whose resolution
    /// differs from the stored key frame's. Use
    /// [`AmcExecutor::try_process`] to handle rejection instead.
    pub fn process(&mut self, image: &GrayImage) -> AmcFrameResult {
        self.try_process(image)
            .unwrap_or_else(|e| panic!("AMC rejected the frame: {e}"))
    }

    /// [`AmcExecutor::process`] returning frame rejection as a typed
    /// [`AmcError`] instead of panicking — the serving-grade entry point
    /// (the multi-stream [`crate::serve::Engine`] is fallible throughout).
    pub fn try_process(&mut self, image: &GrayImage) -> Result<AmcFrameResult, AmcError> {
        self.core.process(self.net, &mut self.scratch, image)
    }

    /// Processes one frame with an externally computed motion estimate.
    ///
    /// `motion` must be what [`AmcExecutor::rfbme`] would produce from the
    /// stored key image to `image` (and `None` exactly when no key state is
    /// stored) for results to match [`AmcExecutor::process`]. This is the
    /// entry point for executors that compute motion elsewhere — the
    /// pipelined executor's worker thread, or replayed codec vectors.
    ///
    /// # Panics
    ///
    /// Panics when the frame is rejected with a typed error (see
    /// [`AmcExecutor::process`]).
    pub fn process_with_motion(
        &mut self,
        image: &GrayImage,
        motion: Option<RfbmeResult>,
    ) -> AmcFrameResult {
        self.core
            .process_with_motion_hook(self.net, &mut self.scratch, image, motion, |_| {})
            .unwrap_or_else(|e| panic!("AMC rejected the frame: {e}"))
    }

    /// [`AmcExecutor::process_with_motion`] with a hook invoked right after
    /// the key-frame decision, *before* any CNN or warp work. The pipelined
    /// executor uses the hook to dispatch the next frame's motion estimate
    /// (whose reference image is final once the decision is known) so it
    /// overlaps with this frame's execution.
    pub(crate) fn process_with_motion_hook(
        &mut self,
        image: &GrayImage,
        motion: Option<RfbmeResult>,
        after_decision: impl FnOnce(FrameKind),
    ) -> AmcFrameResult {
        self.core
            .process_with_motion_hook(self.net, &mut self.scratch, image, motion, after_decision)
            .unwrap_or_else(|e| panic!("AMC rejected the frame: {e}"))
    }

    /// Convenience: processes a slice of frames, returning per-frame results.
    pub fn process_clip(&mut self, frames: &[GrayImage]) -> Vec<AmcFrameResult> {
        frames.iter().map(|f| self.process(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva2_cnn::zoo;

    fn textured_frame(h: usize, w: usize, shift: usize) -> GrayImage {
        GrayImage::from_fn(h, w, |y, x| {
            // Mix of frequencies: the PI/8 component has period 16 px, so an
            // 8 px pan flips its sign — maximally punishing stale
            // (memoized) activations while stride-aligned warping remains
            // exact.
            let xs = (x + shift) as f32;
            let v = (y as f32 * 0.33).sin()
                + (xs * std::f32::consts::PI / 8.0).cos() * 0.8
                + (xs * 0.21).cos();
            (115.0 + v * 38.0) as u8
        })
    }

    #[test]
    fn first_frame_is_key() {
        let z = zoo::tiny_fasterm(0);
        let mut amc = AmcExecutor::try_new(&z.network, AmcConfig::default()).unwrap();
        let r = amc.process(&textured_frame(48, 48, 0));
        assert!(r.is_key);
        assert_eq!(r.macs_executed, z.network.total_macs());
        assert_eq!(r.rfbme_ops, 0);
        assert!(r.compression.is_some());
    }

    #[test]
    fn static_scene_yields_predicted_frames() {
        let z = zoo::tiny_fasterm(0);
        let mut amc = AmcExecutor::try_new(&z.network, AmcConfig::default()).unwrap();
        let frame = textured_frame(48, 48, 0);
        amc.process(&frame);
        for _ in 0..5 {
            let r = amc.process(&frame);
            assert!(!r.is_key);
            assert!(r.macs_executed < z.network.total_macs() / 2);
        }
        assert_eq!(amc.stats().key_frames, 1);
        assert_eq!(amc.stats().frames, 6);
    }

    #[test]
    fn predicted_frame_on_static_scene_matches_key_output() {
        let z = zoo::tiny_fasterm(1);
        let mut amc = AmcExecutor::try_new(&z.network, AmcConfig::default()).unwrap();
        let frame = textured_frame(48, 48, 0);
        let key = amc.process(&frame);
        let pred = amc.process(&frame);
        assert!(!pred.is_key);
        // Zero motion, zero-field warp: outputs agree to interpolation noise.
        let dist = key.output.rms_distance(&pred.output);
        assert!(dist < 1e-4, "rms {dist}");
    }

    #[test]
    fn scene_cut_forces_key_frame() {
        let z = zoo::tiny_fasterm(0);
        let mut amc = AmcExecutor::try_new(&z.network, AmcConfig::default()).unwrap();
        amc.process(&textured_frame(48, 48, 0));
        // Completely different content (inverted, shifted pattern).
        let cut = GrayImage::from_fn(48, 48, |y, x| ((y * 11 + x * 29) % 255) as u8);
        let r = amc.process(&cut);
        assert!(r.is_key, "a scene cut must trigger a key frame");
    }

    #[test]
    fn max_gap_bounds_prediction_run() {
        let z = zoo::tiny_fasterm(0);
        let cfg = AmcConfig {
            policy: PolicyConfig::BlockError {
                threshold: f32::INFINITY,
                max_gap: 3,
            },
            ..Default::default()
        };
        let mut amc = AmcExecutor::try_new(&z.network, cfg).unwrap();
        let frame = textured_frame(48, 48, 0);
        let kinds: Vec<bool> = (0..8).map(|_| amc.process(&frame).is_key).collect();
        assert_eq!(
            kinds,
            vec![true, false, false, true, false, false, true, false]
        );
    }

    #[test]
    fn memoize_mode_skips_warp() {
        let z = zoo::tiny_alexnet(0);
        let cfg = AmcConfig {
            warp: WarpMode::Memoize,
            ..Default::default()
        };
        let mut amc = AmcExecutor::try_new(&z.network, cfg).unwrap();
        let frame = textured_frame(32, 32, 0);
        amc.process(&frame);
        let r = amc.process(&frame);
        assert!(!r.is_key);
        assert!(r.warp.is_none());
        assert_eq!(amc.stats().warp_interpolations, 0);
    }

    #[test]
    fn panning_scene_with_warp_tracks_translation() {
        // The warp-vs-memoization race is seed-marginal at this tiny scale:
        // measured over seeds 0..16, warp beats memoization by ~15% on
        // average but loses by up to ~30% on individual RNG streams (PR 1
        // reseeded 3→5 to dodge exactly such a loss). A single-seed strict
        // win is therefore a lucky-seed assertion. Instead, assert the
        // *aggregate* margin over a seed basket with explicit tolerances —
        // a property of the warp physics (stride-aligned pan is the regime
        // where warping is near-exact, §II-B, while memoization is off by a
        // whole activation cell) rather than of one weight draw — so the
        // test survives RNG-shim stream changes.

        /// Aggregate RMS error of warping must undercut memoization by at
        /// least this relative margin (measured headroom: ~0.85 vs the 0.98
        /// bound).
        const AGGREGATE_MARGIN: f32 = 0.98;
        /// No single seed may show warping worse than memoization beyond
        /// this factor (measured worst case ~1.30).
        const PER_SEED_BOUND: f32 = 1.5;
        const SEEDS: [u64; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

        let make = |warp| AmcConfig {
            // Force predicted frames so we measure pure warp quality.
            policy: PolicyConfig::BlockError {
                threshold: f32::INFINITY,
                max_gap: 1000,
            },
            warp,
            ..Default::default()
        };
        let f0 = textured_frame(48, 48, 0);
        // A full receptive-field stride of pan (8 px).
        let f1 = textured_frame(48, 48, 8);
        let (mut warp_sum, mut memo_sum) = (0.0f32, 0.0f32);
        for seed in SEEDS {
            let z = zoo::tiny_fasterm(seed);
            let mut amc = AmcExecutor::try_new(&z.network, make(WarpMode::default())).unwrap();
            amc.process(&f0);
            let warped = amc.process(&f1);
            // Ground truth: full CNN on f1.
            let truth_act = z.network.forward_prefix(&f1.to_tensor(), amc.target());
            let truth_out = z.network.forward_suffix(&truth_act, amc.target());
            let with_warp = warped.output.rms_distance(&truth_out);

            // Memoized baseline (no warp) for the same pan.
            let mut amc2 = AmcExecutor::try_new(&z.network, make(WarpMode::Memoize)).unwrap();
            amc2.process(&f0);
            let memo = amc2.process(&f1);
            let with_memo = memo.output.rms_distance(&truth_out);

            assert!(
                with_warp <= with_memo * PER_SEED_BOUND,
                "seed {seed}: warp ({with_warp}) catastrophically worse than \
                 memoization ({with_memo})"
            );
            warp_sum += with_warp;
            memo_sum += with_memo;
        }
        assert!(
            warp_sum <= memo_sum * AGGREGATE_MARGIN,
            "aggregate warp error ({warp_sum}) does not undercut memoization \
             ({memo_sum}) by the required margin over seeds {SEEDS:?}"
        );
    }

    #[test]
    fn fixed_point_path_close_to_float_path() {
        let z = zoo::tiny_fasterm(4);
        let make = |fixed: bool| AmcConfig {
            fixed_point: fixed,
            policy: PolicyConfig::BlockError {
                threshold: f32::INFINITY,
                max_gap: 1000,
            },
            ..Default::default()
        };
        let f0 = textured_frame(48, 48, 0);
        let f1 = textured_frame(48, 48, 1);
        let mut a = AmcExecutor::try_new(&z.network, make(false)).unwrap();
        a.process(&f0);
        let float_out = a.process(&f1).output;
        let mut b = AmcExecutor::try_new(&z.network, make(true)).unwrap();
        b.process(&f0);
        let fixed_out = b.process(&f1).output;
        let dist = float_out.rms_distance(&fixed_out);
        assert!(dist < 0.05, "fixed/float divergence {dist}");
    }

    #[test]
    fn stats_accumulate() {
        let z = zoo::tiny_fasterm(0);
        let mut amc = AmcExecutor::try_new(&z.network, AmcConfig::default()).unwrap();
        let frame = textured_frame(48, 48, 0);
        for _ in 0..4 {
            amc.process(&frame);
        }
        let s = amc.stats();
        assert_eq!(s.frames, 4);
        assert_eq!(s.key_frames, 1);
        assert!((s.key_fraction() - 0.25).abs() < 1e-6);
        assert!(s.rfbme_ops > 0);
        let expected = z.network.total_macs()
            + 3 * (z.network.total_macs() - z.network.prefix_macs(amc.target()));
        assert_eq!(s.macs, expected);
    }

    #[test]
    fn reset_forces_key() {
        let z = zoo::tiny_fasterm(0);
        let mut amc = AmcExecutor::try_new(&z.network, AmcConfig::default()).unwrap();
        let frame = textured_frame(48, 48, 0);
        amc.process(&frame);
        assert!(!amc.process(&frame).is_key);
        amc.reset();
        assert!(amc.process(&frame).is_key);
    }

    #[test]
    fn early_target_skips_less() {
        let z = zoo::tiny_faster16(0);
        let cfg = AmcConfig {
            target: TargetSelection::Early,
            ..Default::default()
        };
        let early = AmcExecutor::try_new(&z.network, cfg).unwrap();
        let late = AmcExecutor::try_new(&z.network, AmcConfig::default()).unwrap();
        assert!(early.prefix_macs() < late.prefix_macs());
        assert_eq!(early.target(), z.early_target);
        assert_eq!(late.target(), z.late_target);
    }

    #[test]
    fn try_process_rejects_geometry_change_with_typed_error() {
        let z = zoo::tiny_fasterm(0);
        let mut amc = AmcExecutor::try_new(&z.network, AmcConfig::default()).unwrap();
        amc.process(&textured_frame(48, 48, 0));
        let err = amc.try_process(&textured_frame(32, 32, 0));
        assert!(
            matches!(
                err,
                Err(AmcError::FrameGeometryMismatch {
                    expected_height: 48,
                    got_height: 32,
                    ..
                })
            ),
            "got {err:?}"
        );
        // The stream is undisturbed and keeps serving at its resolution:
        // an unchanged scene still lands the cheap predicted path.
        assert_eq!(amc.stats().frames, 1);
        assert!(!amc.process(&textured_frame(48, 48, 0)).is_key);
        // The geometry is fixed by the network, so the off-shape frame is
        // rejected even on a fresh stream.
        amc.reset();
        assert!(amc.try_process(&textured_frame(32, 32, 0)).is_err());
        assert!(amc.try_process(&textured_frame(48, 48, 0)).unwrap().is_key);
    }

    #[test]
    fn residual_bound_forces_keys_in_executor_too() {
        let z = zoo::tiny_fasterm(0);
        let cfg = AmcConfig {
            policy: PolicyConfig::BlockError {
                threshold: f32::INFINITY,
                max_gap: 1000,
            },
            max_residual_error: 0.5,
            ..Default::default()
        };
        let mut amc = AmcExecutor::try_new(&z.network, cfg).unwrap();
        amc.process(&textured_frame(48, 48, 0));
        let noise = GrayImage::from_fn(48, 48, |y, x| ((y * 37 + x * 101) % 255) as u8);
        assert!(amc.process(&noise).is_key);
        assert_eq!(amc.stats().forced_keys, 1);
        assert_eq!(amc.stats().key_frames, 2);
    }

    #[test]
    fn try_new_reports_bad_config() {
        let z = zoo::tiny_fasterm(0);
        let cfg = AmcConfig {
            target: TargetSelection::Index(99),
            ..Default::default()
        };
        match AmcExecutor::try_new(&z.network, cfg) {
            Err(AmcError::TargetOutsidePrefix { index: 99, .. }) => {}
            other => panic!("expected TargetOutsidePrefix, got {other:?}"),
        }
    }

    #[test]
    fn builder_roundtrips_and_validates() {
        let built = AmcConfig::builder()
            .target(TargetSelection::Early)
            .warp(WarpMode::Memoize)
            .search(SearchParams { radius: 4, step: 2 })
            .policy(PolicyConfig::StaticRate { period: 3 })
            .fixed_point(true)
            .sparsity_threshold(0.25)
            .max_residual_error(2.5)
            .allow_unverified()
            .build()
            .unwrap();
        assert_eq!(
            built,
            AmcConfig {
                target: TargetSelection::Early,
                warp: WarpMode::Memoize,
                search: SearchParams { radius: 4, step: 2 },
                policy: PolicyConfig::StaticRate { period: 3 },
                fixed_point: true,
                sparsity_threshold: 0.25,
                max_residual_error: 2.5,
                allow_unverified: true,
            }
        );
        assert!(AmcConfig::builder().build().is_ok(), "defaults are valid");
    }

    #[test]
    fn builder_rejects_invalid_fields() {
        let cases = [
            AmcConfig::builder().search(SearchParams { radius: 4, step: 0 }),
            AmcConfig::builder().sparsity_threshold(f32::NAN),
            AmcConfig::builder().sparsity_threshold(-0.5),
            AmcConfig::builder().max_residual_error(f32::NAN),
            AmcConfig::builder().max_residual_error(-1.0),
            AmcConfig::builder().policy(PolicyConfig::StaticRate { period: 0 }),
            AmcConfig::builder().policy(PolicyConfig::BlockError {
                threshold: f32::NAN,
                max_gap: 4,
            }),
            AmcConfig::builder().policy(PolicyConfig::MotionMagnitude {
                threshold: 1.0,
                max_gap: 0,
            }),
        ];
        for builder in cases {
            let err = builder.clone().build();
            assert!(
                matches!(err, Err(AmcError::InvalidConfig { .. })),
                "{builder:?} should be rejected, got {err:?}"
            );
        }
    }
}
