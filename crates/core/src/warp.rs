//! The warp engine: activation warping with bilinear interpolation.
//!
//! "The warp engine's job is to load this neighborhood of activation values
//! from its sparse activation memory, feed them into a bilinear interpolator
//! along with the fractional bits of this motion vector, and send the result
//! to the layer accelerators to compute the CNN suffix" (§III-B, Figs 9–11).
//!
//! Two datapaths are provided:
//!
//! * [`warp_activation`] — the `f32` reference path (used for accuracy
//!   experiments, where datapath quantization would be a confound).
//! * [`warp_activation_fixed`] — a bit-accurate Q8.8 model of the hardware
//!   datapath: activation values and fractional weights are 16-bit fixed
//!   point, products widen and the result shifts back (Fig 11's weighting
//!   units). Tests bound its divergence from the reference by the
//!   quantization step.
//!
//! # The fused warp→sparse seam
//!
//! On the hardware, the warp engine reads from and writes back to the
//! *sparse* activation memory — a dense intermediate never exists. The
//! dense entry points above model only the datapath; the predicted-frame
//! execution path uses their fused companions [`warp_activation_sparse`] /
//! [`warp_activation_fixed_sparse`], which emit the warped activation
//! directly as a [`SparseActivation`]: zero outputs are skipped at
//! generation time instead of being materialised into a tensor and
//! re-scanned by `SparseActivation::from_dense`. The fused functions also
//! hoist the per-position work (source coordinates, interpolation weights)
//! out of the channel loop — every channel of one output position shares
//! the same motion vector, so the weights are computed once instead of
//! `C` times. Entry values and [`WarpStats`] are **bit-identical** to
//! dense-then-extract (same operations in the same order per element;
//! tests pin this), which is what lets `eva2_core::serve` feed the CNN
//! suffix from the fused output without changing a single output bit.

// lint: hot-path

use eva2_motion::field::VectorField;
use eva2_tensor::interp::{sample, Interpolation};
use eva2_tensor::{Fixed, SparseActivation, Tensor3};

/// Statistics from one warp pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarpStats {
    /// Bilinear interpolations performed (one per output activation value).
    pub interpolations: u64,
    /// Interpolations whose entire 2×2 neighbourhood was zero — the loads a
    /// sparsity-aware warp engine skips (§V: cost reduced "proportionally to
    /// the activations' sparsity").
    pub zero_skipped: u64,
    /// Multiply operations in the interpolator datapath (8 per non-skipped
    /// interpolation: four weighting units of two multiplies each, Fig 11).
    pub mults: u64,
}

/// Warps a stored key-frame activation by a motion vector field.
///
/// `field` must have one vector per activation cell (its grid equals the
/// activation's spatial extent); vectors are in **pixel units** and are
/// scaled to activation units by dividing by `rf_stride` (§II-B: a distance
/// `d` in the input is `d/s` in the output). The gather convention applies:
/// `out[c, ay, ax] = key[c, ay + v.dy/s, ax + v.dx/s]`, interpolated.
///
/// # Panics
///
/// Panics when the field's grid does not match the activation's spatial
/// dimensions.
pub fn warp_activation(
    key: &Tensor3,
    field: &VectorField,
    rf_stride: usize,
    method: Interpolation,
) -> (Tensor3, WarpStats) {
    let shape = key.shape();
    assert_eq!(
        (field.grid_h(), field.grid_w()),
        (shape.height, shape.width),
        "vector field grid must match activation spatial dims"
    );
    let s = rf_stride.max(1) as f32;
    let mut stats = WarpStats::default();
    let out = Tensor3::from_fn(shape, |c, ay, ax| {
        let v = field.get(ay, ax);
        let sy = ay as f32 + v.dy / s;
        let sx = ax as f32 + v.dx / s;
        stats.interpolations += 1;
        let val = sample(key, method, c, sy, sx);
        if val == 0.0 {
            stats.zero_skipped += 1;
        } else {
            stats.mults += 8;
        }
        val
    });
    (out, stats)
}

/// The Q8.8 bilinear interpolator of Fig 11, bit-accurately.
///
/// Computes `p00·(1−u)(1−v) + p01·u(1−v) + p10·(1−u)v + p11·uv` where `u`
/// and `v` are the fractional bits of the motion vector, using widening
/// multiplies and a final shift back to 16 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BilinearInterpolator {
    /// Horizontal fraction `u` in Q8.8.
    pub u: Fixed,
    /// Vertical fraction `v` in Q8.8.
    pub v: Fixed,
}

impl BilinearInterpolator {
    /// Creates an interpolator from fractional offsets in `[0, 1)`.
    pub fn new(u: f32, v: f32) -> Self {
        Self {
            u: Fixed::from_f32(u),
            v: Fixed::from_f32(v),
        }
    }

    /// The four corner weights `[(1−u)(1−v), u(1−v), (1−u)v, uv]` in Q8.8,
    /// computed exactly as the weighting units do (two multiplies each).
    ///
    /// Weights depend only on the motion vector's fractional bits, so one
    /// output position's weights serve every channel — the fused sparse
    /// warp computes them once per position and applies them with
    /// [`BilinearInterpolator::apply`].
    pub fn weights(&self) -> [Fixed; 4] {
        let one = Fixed::ONE;
        let inv_u = one - self.u;
        let inv_v = one - self.v;
        [
            inv_u.wrapping_mul_shift(inv_v),
            self.u.wrapping_mul_shift(inv_v),
            inv_u.wrapping_mul_shift(self.v),
            self.u.wrapping_mul_shift(self.v),
        ]
    }

    /// Applies precomputed corner [`BilinearInterpolator::weights`] to one
    /// 2×2 neighbourhood — the shared tail of the interpolator, with the
    /// exact operation order of the hardware adder tree.
    pub fn apply(weights: [Fixed; 4], p: [Fixed; 4]) -> Fixed {
        p[0].wrapping_mul_shift(weights[0])
            .saturating_add(p[1].wrapping_mul_shift(weights[1]))
            .saturating_add(p[2].wrapping_mul_shift(weights[2]))
            .saturating_add(p[3].wrapping_mul_shift(weights[3]))
    }

    /// Interpolates one 2×2 neighbourhood `[p00, p01, p10, p11]`
    /// (`p01` = one step in +x, `p10` = one step in +y).
    pub fn interpolate(&self, p: [Fixed; 4]) -> Fixed {
        Self::apply(self.weights(), p)
    }
}

/// Warps using the bit-accurate Q8.8 datapath. The key activation is
/// quantized to Q8.8 on load (it is stored that way in the sparse activation
/// memory), the interpolator runs in fixed point, and results are returned
/// dequantized.
pub fn warp_activation_fixed(
    key: &Tensor3,
    field: &VectorField,
    rf_stride: usize,
) -> (Tensor3, WarpStats) {
    let shape = key.shape();
    assert_eq!(
        (field.grid_h(), field.grid_w()),
        (shape.height, shape.width),
        "vector field grid must match activation spatial dims"
    );
    let s = rf_stride.max(1) as f32;
    let mut stats = WarpStats::default();
    let out = Tensor3::from_fn(shape, |c, ay, ax| {
        let vec = field.get(ay, ax);
        let sy = ay as f32 + vec.dy / s;
        let sx = ax as f32 + vec.dx / s;
        let y0 = sy.floor();
        let x0 = sx.floor();
        let interp = BilinearInterpolator::new(sx - x0, sy - y0);
        let y0 = y0 as isize;
        let x0 = x0 as isize;
        let load = |yy: isize, xx: isize| Fixed::from_f32(key.get_padded(c, yy, xx));
        let p = [
            load(y0, x0),
            load(y0, x0 + 1),
            load(y0 + 1, x0),
            load(y0 + 1, x0 + 1),
        ];
        stats.interpolations += 1;
        if p.iter().all(|v| v.is_zero()) {
            stats.zero_skipped += 1;
            return 0.0;
        }
        stats.mults += 8;
        interp.interpolate(p).to_f32()
    });
    (out, stats)
}

/// [`warp_activation`] fused with sparse extraction: warps straight into a
/// [`SparseActivation`], skipping zero outputs at generation time instead
/// of materialising and re-scanning a dense tensor.
///
/// Entries and statistics are bit-identical to
/// `SparseActivation::from_dense(&warp_activation(..).0, 0.0)` — see the
/// [module docs](self) for the fusion argument.
///
/// # Panics
///
/// Panics when the field's grid does not match the activation's spatial
/// dimensions.
pub fn warp_activation_sparse(
    key: &Tensor3,
    field: &VectorField,
    rf_stride: usize,
    method: Interpolation,
) -> (SparseActivation, WarpStats) {
    let shape = key.shape();
    assert_eq!(
        (field.grid_h(), field.grid_w()),
        (shape.height, shape.width),
        "vector field grid must match activation spatial dims"
    );
    let s = rf_stride.max(1) as f32;
    let mut stats = WarpStats::default();
    // Pre-size each channel to its dense plane: entry counts are bounded
    // by it, so pushes never reallocate mid-warp.
    let mut channels: Vec<Vec<(u32, f32)>> = (0..shape.channels)
        .map(|_| Vec::with_capacity(shape.plane_len()))
        .collect();
    for ay in 0..shape.height {
        for ax in 0..shape.width {
            // Per-position work hoisted out of the channel loop: all
            // channels share this position's motion vector.
            let v = field.get(ay, ax);
            let sy = ay as f32 + v.dy / s;
            let sx = ax as f32 + v.dx / s;
            let pos = (ay * shape.width + ax) as u32;
            for (c, entries) in channels.iter_mut().enumerate() {
                stats.interpolations += 1;
                let val = sample(key, method, c, sy, sx);
                if val == 0.0 {
                    stats.zero_skipped += 1;
                } else {
                    stats.mults += 8;
                }
                // Same survivor predicate as `from_dense(.., 0.0)` (which
                // also drops NaN and −0.0).
                if val.abs() > 0.0 {
                    entries.push((pos, val));
                }
            }
        }
    }
    (SparseActivation::from_channels(shape, channels), stats)
}

/// [`warp_activation_fixed`] fused with sparse extraction — the Q8.8
/// companion of [`warp_activation_sparse`], and the predicted-frame
/// production path of `eva2_core::serve` in fixed-point mode.
///
/// The interpolator weights are computed once per output position
/// ([`BilinearInterpolator::weights`]) and applied per channel, which is
/// both the hardware's structure (one warp request covers a 2×2
/// neighbourhood across channels) and a C-fold reduction of the
/// coordinate/weight arithmetic. Entries and statistics are bit-identical
/// to `SparseActivation::from_dense(&warp_activation_fixed(..).0, 0.0)`.
///
/// # Panics
///
/// Panics when the field's grid does not match the activation's spatial
/// dimensions.
pub fn warp_activation_fixed_sparse(
    key: &Tensor3,
    field: &VectorField,
    rf_stride: usize,
) -> (SparseActivation, WarpStats) {
    let shape = key.shape();
    assert_eq!(
        (field.grid_h(), field.grid_w()),
        (shape.height, shape.width),
        "vector field grid must match activation spatial dims"
    );
    let s = rf_stride.max(1) as f32;
    let mut stats = WarpStats::default();
    // Pre-size each channel to its dense plane: entry counts are bounded
    // by it, so pushes never reallocate mid-warp.
    let mut channels: Vec<Vec<(u32, f32)>> = (0..shape.channels)
        .map(|_| Vec::with_capacity(shape.plane_len()))
        .collect();
    for ay in 0..shape.height {
        for ax in 0..shape.width {
            let vec = field.get(ay, ax);
            let sy = ay as f32 + vec.dy / s;
            let sx = ax as f32 + vec.dx / s;
            let y0 = sy.floor();
            let x0 = sx.floor();
            let weights = BilinearInterpolator::new(sx - x0, sy - y0).weights();
            let y0 = y0 as isize;
            let x0 = x0 as isize;
            let pos = (ay * shape.width + ax) as u32;
            for (c, entries) in channels.iter_mut().enumerate() {
                let load = |yy: isize, xx: isize| Fixed::from_f32(key.get_padded(c, yy, xx));
                let p = [
                    load(y0, x0),
                    load(y0, x0 + 1),
                    load(y0 + 1, x0),
                    load(y0 + 1, x0 + 1),
                ];
                stats.interpolations += 1;
                if p.iter().all(|v| v.is_zero()) {
                    stats.zero_skipped += 1;
                    continue;
                }
                stats.mults += 8;
                let val = BilinearInterpolator::apply(weights, p).to_f32();
                // Q8.8 truncation can produce an exact zero from nonzero
                // corners; `from_dense` drops those, so the fused path must
                // too.
                if val.abs() > 0.0 {
                    entries.push((pos, val));
                }
            }
        }
    }
    (SparseActivation::from_channels(shape, channels), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva2_motion::field::MotionVector;
    use eva2_tensor::Shape3;

    fn act(h: usize, w: usize) -> Tensor3 {
        Tensor3::from_fn(Shape3::new(2, h, w), |c, y, x| {
            ((c + 1) * (y * w + x)) as f32 * 0.125
        })
    }

    #[test]
    fn zero_field_is_identity() {
        let key = act(6, 6);
        let field = VectorField::zeros(6, 6, 8);
        let (out, stats) = warp_activation(&key, &field, 8, Interpolation::Bilinear);
        assert_eq!(out, key);
        assert_eq!(stats.interpolations, 2 * 36);
    }

    #[test]
    fn integer_motion_translates_exactly() {
        let key = act(6, 6);
        // Pixel motion of one full stride → activation shift of 1.
        let field = VectorField::uniform(6, 6, 8, MotionVector::new(0.0, 8.0));
        let (out, _) = warp_activation(&key, &field, 8, Interpolation::Bilinear);
        for c in 0..2 {
            for y in 0..6 {
                for x in 0..5 {
                    assert_eq!(out.get(c, y, x), key.get(c, y, x + 1));
                }
                // Gather beyond the right edge reads zero padding.
                assert_eq!(out.get(c, y, 5), 0.0);
            }
        }
    }

    #[test]
    fn fractional_motion_interpolates() {
        let key = act(4, 4);
        // Half-stride horizontal motion → sample halfway between columns.
        let field = VectorField::uniform(4, 4, 8, MotionVector::new(0.0, 4.0));
        let (out, _) = warp_activation(&key, &field, 8, Interpolation::Bilinear);
        let expect = (key.get(0, 1, 1) + key.get(0, 1, 2)) / 2.0;
        assert!((out.get(0, 1, 1) - expect).abs() < 1e-6);
    }

    #[test]
    fn nearest_neighbor_snaps() {
        let key = act(4, 4);
        let field = VectorField::uniform(4, 4, 8, MotionVector::new(0.0, 3.0)); // 0.375 act units
        let (out, _) = warp_activation(&key, &field, 8, Interpolation::NearestNeighbor);
        assert_eq!(out.get(0, 1, 1), key.get(0, 1, 1)); // rounds to 0 offset
        let field2 = VectorField::uniform(4, 4, 8, MotionVector::new(0.0, 5.0)); // 0.625
        let (out2, _) = warp_activation(&key, &field2, 8, Interpolation::NearestNeighbor);
        assert_eq!(out2.get(0, 1, 1), key.get(0, 1, 2));
    }

    #[test]
    fn fixed_path_matches_float_within_quantization() {
        let key = act(8, 8);
        let field = VectorField::from_fn(8, 8, 4, |y, x| {
            MotionVector::new(((y % 3) as f32 - 1.0) * 1.5, ((x % 3) as f32 - 1.0) * 2.5)
        });
        let (float_out, _) = warp_activation(&key, &field, 4, Interpolation::Bilinear);
        let (fixed_out, _) = warp_activation_fixed(&key, &field, 4);
        // Q8.8 resolution is 1/256; interpolation of 4 values can lose a few
        // LSBs through weight quantization and truncating multiplies.
        let tol = 6.0 / 256.0 + 1e-4;
        for (a, b) in float_out.iter().zip(fixed_out.iter()) {
            assert!((a - b).abs() <= tol * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn fixed_interpolator_corners_are_exact() {
        let interp = BilinearInterpolator::new(0.0, 0.0);
        let p = [
            Fixed::from_f32(1.0),
            Fixed::from_f32(2.0),
            Fixed::from_f32(3.0),
            Fixed::from_f32(4.0),
        ];
        assert_eq!(interp.interpolate(p).to_f32(), 1.0);
        let interp = BilinearInterpolator::new(1.0, 0.0);
        // u=1 → p01 exactly (1.0 representable in Q8.8).
        assert_eq!(interp.interpolate(p).to_f32(), 2.0);
    }

    #[test]
    fn fixed_interpolator_midpoint() {
        let interp = BilinearInterpolator::new(0.5, 0.5);
        let p = [
            Fixed::from_f32(0.0),
            Fixed::from_f32(1.0),
            Fixed::from_f32(2.0),
            Fixed::from_f32(3.0),
        ];
        let v = interp.interpolate(p).to_f32();
        assert!((v - 1.5).abs() <= 3.0 / 256.0, "midpoint {v}");
    }

    #[test]
    fn zero_neighbourhood_is_skipped() {
        let mut key = Tensor3::zeros(Shape3::new(1, 4, 4));
        key.set(0, 0, 0, 1.0);
        let field = VectorField::zeros(4, 4, 8);
        let (_, stats) = warp_activation_fixed(&key, &field, 8);
        // 16 outputs; the neighbourhoods touching (0,0) are not skipped.
        assert_eq!(stats.interpolations, 16);
        assert!(stats.zero_skipped >= 12, "skipped {}", stats.zero_skipped);
        assert!(stats.mults <= 4 * 8);
    }

    #[test]
    fn stats_mults_count_weighting_units() {
        let key = act(4, 4);
        let field = VectorField::zeros(4, 4, 8);
        let (_, stats) = warp_activation(&key, &field, 8, Interpolation::Bilinear);
        // Only position (c, 0, 0) is zero in this ramp (value 0).
        assert_eq!(stats.mults, (stats.interpolations - stats.zero_skipped) * 8);
    }

    #[test]
    #[should_panic(expected = "vector field grid")]
    fn mismatched_field_panics() {
        let key = act(4, 4);
        let field = VectorField::zeros(3, 3, 8);
        let _ = warp_activation(&key, &field, 8, Interpolation::Bilinear);
    }

    /// A ReLU-like activation (many exact zeros) under a field mixing
    /// integer, fractional, and out-of-bounds motion — the adversarial mix
    /// for the fused zero-skipping.
    fn sparse_key_and_field() -> (Tensor3, VectorField) {
        let key = Tensor3::from_fn(Shape3::new(3, 7, 6), |c, y, x| {
            let v = ((c * 5 + y * 3 + x * 7) % 11) as f32 - 5.0;
            v.max(0.0) * 0.37
        });
        let field = VectorField::from_fn(7, 6, 4, |y, x| {
            MotionVector::new(((y % 5) as f32 - 2.0) * 3.0, ((x % 7) as f32 - 3.0) * 2.5)
        });
        (key, field)
    }

    #[test]
    fn fused_sparse_warp_is_bit_identical_to_dense_then_extract() {
        let (key, field) = sparse_key_and_field();
        for method in [Interpolation::Bilinear, Interpolation::NearestNeighbor] {
            let (dense, dense_stats) = warp_activation(&key, &field, 4, method);
            let expect = eva2_tensor::SparseActivation::from_dense(&dense, 0.0);
            let (fused, fused_stats) = warp_activation_sparse(&key, &field, 4, method);
            assert_eq!(fused, expect, "{method:?}: entries must match exactly");
            assert_eq!(fused_stats, dense_stats, "{method:?}: stats must match");
        }
    }

    #[test]
    fn fused_fixed_sparse_warp_is_bit_identical_to_dense_then_extract() {
        let (key, field) = sparse_key_and_field();
        let (dense, dense_stats) = warp_activation_fixed(&key, &field, 4);
        let expect = eva2_tensor::SparseActivation::from_dense(&dense, 0.0);
        let (fused, fused_stats) = warp_activation_fixed_sparse(&key, &field, 4);
        assert_eq!(fused, expect, "fixed-point entries must match exactly");
        assert_eq!(fused_stats, dense_stats, "fixed-point stats must match");
    }

    #[test]
    fn weights_and_apply_compose_to_interpolate() {
        let interp = BilinearInterpolator::new(0.31, 0.84);
        let p = [
            Fixed::from_f32(1.25),
            Fixed::from_f32(-2.0),
            Fixed::from_f32(0.5),
            Fixed::from_f32(3.75),
        ];
        assert_eq!(
            interp.interpolate(p),
            BilinearInterpolator::apply(interp.weights(), p)
        );
    }

    /// The paper's commutativity claim (Fig 3/4): for stride-aligned global
    /// translation and a conv-only prefix, warping the key activation equals
    /// running the prefix on the translated input.
    #[test]
    fn warp_commutes_with_convolution_for_aligned_motion() {
        use eva2_cnn::layer::{Conv2d, Layer};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let conv = Conv2d::new("c", 1, 3, 3, 1, 1, &mut rng);
        let input = Tensor3::from_fn(Shape3::new(1, 10, 10), |_, y, x| {
            if (3..7).contains(&y) && (3..7).contains(&x) {
                1.0 + (y * x) as f32 * 0.05
            } else {
                0.0
            }
        });
        let key_act = conv.forward(&input);
        let moved = input.translate(0, 2); // content 2 px right
        let moved_act = conv.forward(&moved);
        // Stride 1 conv → rf stride 1; gather vector (0, -2).
        let shape = key_act.shape();
        let field =
            VectorField::uniform(shape.height, shape.width, 1, MotionVector::new(0.0, -2.0));
        let (warped, _) = warp_activation(&key_act, &field, 1, Interpolation::Bilinear);
        // Compare away from frame borders (translation fill effects).
        for c in 0..shape.channels {
            for y in 1..shape.height - 1 {
                for x in 3..shape.width - 1 {
                    let a = warped.get(c, y, x);
                    let b = moved_act.get(c, y, x);
                    assert!(
                        (a - b).abs() < 1e-4,
                        "({c},{y},{x}): warped {a} vs recomputed {b}"
                    );
                }
            }
        }
    }
}
